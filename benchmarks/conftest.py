"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one table or figure from the paper's evaluation
and prints the rows it produced next to the paper's values. Absolute numbers
come from the calibrated performance model (see EXPERIMENTS.md); the
assertions check the *shape* — orderings, ratios, crossovers.

``XAAS_BENCH_SCALE`` (default 0.25) controls the GROMACS source-tree scale
for the pipeline-statistics benchmarks; 1.0 reproduces the paper's absolute
TU counts at ~10x the runtime.

Benchmarks that track a perf trajectory across PRs record a JSON blob via
the ``bench_json`` fixture; each recorded name is written to
``benchmarks/BENCH_<name>.json`` at session end (CI archives them, local
runs leave them for eyeballing).
"""

import json
import os

import pytest

BENCH_SCALE = float(os.environ.get("XAAS_BENCH_SCALE", "0.25"))

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
_BENCH_JSON: dict[str, dict] = {}


@pytest.fixture()
def bench_json():
    """``bench_json(name, payload)`` records one benchmark's machine-
    readable results for the BENCH_<name>.json session artifact."""
    def record(name: str, payload: dict) -> None:
        _BENCH_JSON.setdefault(name, {}).update(payload)
    return record


def pytest_sessionfinish(session, exitstatus):
    for name, payload in _BENCH_JSON.items():
        path = os.path.join(_BENCH_DIR, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

# Tables are both printed (visible with -s) and collected for the terminal
# summary, so `pytest benchmarks/ --benchmark-only` always shows the
# regenerated figures next to pytest-benchmark's timing table.
_TABLES: list[str] = []


def print_table(title: str, header: tuple, rows: list) -> None:
    lines = [f"\n=== {title} ==="]
    widths = [max(len(str(header[i])), *(len(str(r[i])) for r in rows))
              for i in range(len(header))]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*header))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*[str(c) for c in row]))
    text = "\n".join(lines)
    print(text)
    _TABLES.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("regenerated paper tables & figures")
    for text in _TABLES:
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def gromacs_bench_model():
    from repro.apps import gromacs_model
    return gromacs_model(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def gromacs_perf_model():
    """Smaller tree for perf benchmarks (kernels identical at any scale)."""
    from repro.apps import gromacs_model
    return gromacs_model(scale=0.01)
