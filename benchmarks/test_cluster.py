"""Build-farm cluster: multi-worker batch builds vs the single-process path.

Not a paper figure — this benchmarks the ISSUE 4 machinery: a coordinator
sharding one GROMACS batch (preprocess / IR-compile per configuration,
lower per ISA, deploy per system) across worker *processes* that share one
file-backed store must (a) produce byte-identical deployments with zero
duplicate lowerings, (b) beat the single-process path on wall-clock when
there is more than one core to farm out to, and (c) make a warm rerun —
every ISA already lowered in the store — nearly free via store-aware
routing.

``XAAS_BENCH_SCALE`` sizes the GROMACS tree as everywhere else; at 1.0
this is the full-scale sweep the ROADMAP's per-stage sharding item asks
about.
"""

import os
import time

from conftest import BENCH_SCALE, print_table

from repro.apps import five_isa_configs, gromacs_model
from repro.cluster import LocalCluster
from repro.containers import ArtifactCache, BlobStore
from repro.core import build_ir_container, deploy_batch
from repro.discovery import get_system
from repro.store import FileBackend

# An unpinned-SIMD configuration alongside the five pinned ones: deploying
# it selects the ISA per system, so the 5-system batch spans two ISA
# groups (AVX_512 x3, AVX2_256 x2) and the scheduler has real routing to do.
AUTO = {"GMX_SIMD": "AUTO", "GMX_OPENMP": "ON", "GMX_FFT_LIBRARY": "fftw3"}
SYSTEMS = ["ault23", "ault25", "ault01-04", "aurora", "dev-machine"]
WORKERS = 3
#: Workers batch index saves; the single-process path gets the same
#: setting so the comparison isolates scheduling, not index I/O policy.
FLUSH_EVERY = 1024


def _configs():
    return five_isa_configs() + [AUTO]


def _single_process(app, root):
    store = BlobStore(FileBackend(root))
    cache = ArtifactCache(store, flush_every=FLUSH_EVERY)
    result = build_ir_container(app, _configs(), store=store, cache=cache)
    batch = deploy_batch(result, app, AUTO,
                         [get_system(n) for n in SYSTEMS], store, cache=cache)
    return result, batch


def test_cluster_beats_single_process_on_multicore(tmp_path):
    app = gromacs_model(scale=BENCH_SCALE)

    start = time.perf_counter()
    result, batch = _single_process(app, str(tmp_path / "single"))
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with LocalCluster(workers=WORKERS, mode="process",
                      store_dir=str(tmp_path / "farm")) as cluster:
        report = cluster.build("gromacs", SYSTEMS, configs=_configs(),
                               options=AUTO, scale=BENCH_SCALE,
                               job_timeout=1800.0)
    cluster_seconds = time.perf_counter() - start

    cores = os.cpu_count() or 1
    speedup = single_seconds / cluster_seconds
    print_table(
        f"Cluster build: {WORKERS} worker processes vs one process "
        f"({cores} cores, scale {BENCH_SCALE})",
        ("path", "seconds", "lowerings", "duplicates"),
        [("single process", f"{single_seconds:.2f}",
          batch.lowerings_performed, 0),
         (f"cluster ({WORKERS} workers)", f"{cluster_seconds:.2f}",
          report.lowerings_performed, report.duplicate_lowerings),
         ("speedup", f"{speedup:.2f}x", "", "")])

    # Correctness before speed: byte-identical deployments, zero
    # duplicated lowering work across all workers (via store stats).
    reference = {d.system.name: d for d in batch.deployments}
    assert [d["system"] for d in report.deployments] == SYSTEMS
    for dep in report.deployments:
        ref = reference[dep["system"]]
        assert dep["tag"] == ref.tag
        assert dep["image_digest"] == ref.image.digest
    assert report.duplicate_lowerings == 0
    assert report.lowerings_performed == batch.lowerings_performed

    # The farm only wins wall-clock when there are cores to farm out to;
    # a single-core runner still verifies everything above.
    if cores >= 2:
        assert cluster_seconds < single_seconds, (
            f"cluster {cluster_seconds:.2f}s not faster than single "
            f"process {single_seconds:.2f}s on {cores} cores")


def test_store_aware_rerun_is_nearly_free(tmp_path):
    """Second batch against the same store: every ISA routes warm, no
    lower jobs exist, and the wall-clock collapses."""
    app = gromacs_model(scale=BENCH_SCALE)
    del app  # the workers build their own; constructed here only to warm OS caches

    with LocalCluster(workers=2, mode="process",
                      store_dir=str(tmp_path / "farm")) as cluster:
        start = time.perf_counter()
        cold = cluster.build("gromacs", SYSTEMS, configs=_configs(),
                             options=AUTO, scale=BENCH_SCALE,
                             job_timeout=1800.0)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = cluster.build("gromacs", SYSTEMS, configs=_configs(),
                             options=AUTO, scale=BENCH_SCALE,
                             job_timeout=1800.0)
        warm_seconds = time.perf_counter() - start

    print_table(
        "Store-aware routing: cold vs fully-warm cluster batch",
        ("batch", "seconds", "warm ISA groups", "cold ISA groups",
         "lowerings performed"),
        [("cold store", f"{cold_seconds:.2f}", len(cold.warm_groups),
          len(cold.cold_groups), cold.lowerings_performed),
         ("warm store", f"{warm_seconds:.2f}", len(warm.warm_groups),
          len(warm.cold_groups), warm.lowerings_performed)])

    assert cold.cold_groups and not cold.warm_groups
    assert warm.warm_groups and not warm.cold_groups
    assert warm.lowerings_performed == 0
    # No lower job was even submitted on the warm run.
    assert not any("/lower/" in job_id for job_id in warm.jobs)
    assert warm_seconds < cold_seconds
