"""Event emission must be close to free: a warm IR-container build that
also emits structured events may cost at most 5% over the same
fully-instrumented build without them (ISSUE 9 acceptance).

Both sides run with the telemetry registry live — the kill-switch price
is the older telemetry-overhead benchmark's subject — so the delta here
isolates the event-log hot path: one enabled-check, one context-var
read, one lock/append into the bounded ring. The emission density (~10
events per warm build, i.e. per couple of milliseconds) is far above
what the instrumented decision points produce in practice: they fire on
anomalies (lease expiry, requeue, flush retry, autoscale), not per
operation. Interleaved rounds and min-of-N wall clocks keep scheduler
noise out of the comparison.
"""

import time

from conftest import print_table

from repro.apps import lulesh_configs, lulesh_model
from repro.containers import ArtifactCache
from repro.core import build_ir_container
from repro.telemetry import events as _events
from repro.telemetry.events import EventLog
from repro.telemetry.registry import set_enabled

ROUNDS = 7
#: One warm build is ~2ms — too small a quantum for a stable relative
#: comparison, so each timed round amortizes several builds.
BUILDS_PER_ROUND = 5
#: Events emitted alongside each build — well above the handful the real
#: decision points (lease expiry, requeues, autoscale, flush retries)
#: generate per *job*, and jobs run far longer than a warm build.
EVENTS_PER_BUILD = 10
#: Absolute floor under the 5% bound so a single sub-millisecond
#: scheduler hiccup cannot fail the run.
EPSILON_SECONDS = 0.002


def _round_seconds(cache, emit_events: bool) -> float:
    start = time.perf_counter()
    for _ in range(BUILDS_PER_ROUND):
        build_ir_container(lulesh_model(), lulesh_configs(), cache=cache)
        if emit_events:
            for i in range(EVENTS_PER_BUILD):
                _events.emit("info", "bench event", seq=i, stage="warm")
    return (time.perf_counter() - start) / BUILDS_PER_ROUND


def test_event_emission_within_5_percent(bench_json):
    app = lulesh_model()
    configs = lulesh_configs()
    previous_log = _events.set_event_log(EventLog())
    set_enabled(True)
    try:
        # One warm cache per side; rounds interleave the two so
        # environmental noise lands on both instead of biasing whichever
        # ran second.
        cache_with = ArtifactCache()
        build_ir_container(app, configs, cache=cache_with)     # warm it
        cache_without = ArtifactCache()
        build_ir_container(app, configs, cache=cache_without)  # warm it

        times_with, times_without = [], []
        for _ in range(ROUNDS):
            times_with.append(_round_seconds(cache_with, emit_events=True))
            times_without.append(
                _round_seconds(cache_without, emit_events=False))
        instrumented = min(times_with)
        baseline = min(times_without)
        ring = _events.get_event_log()
        emitted = len(ring) + ring.events_dropped
    finally:
        set_enabled(True)
        _events.set_event_log(previous_log)

    assert emitted == ROUNDS * BUILDS_PER_ROUND * EVENTS_PER_BUILD
    overhead = instrumented / baseline - 1.0 if baseline else 0.0
    print_table(f"Event-log overhead (warm LULESH ir-build + "
                f"{EVENTS_PER_BUILD} events/build, min of {ROUNDS} rounds"
                f" x {BUILDS_PER_ROUND} builds)",
                ("events", "seconds", "overhead"),
                [("emitted", f"{instrumented:.4f}", f"{overhead:+.1%}"),
                 ("none", f"{baseline:.4f}", "baseline")])
    bench_json("event_log_overhead", {
        "instrumented_seconds": instrumented,
        "baseline_seconds": baseline,
        "overhead_fraction": overhead,
        "events_per_build": EVENTS_PER_BUILD,
        "rounds": ROUNDS,
    })
    assert instrumented <= baseline * 1.05 + EPSILON_SECONDS, (
        f"event-log overhead {overhead:+.1%} exceeds 5% "
        f"({instrumented:.4f}s vs {baseline:.4f}s)")
