"""Figure 10: performance portability of GROMACS across three systems.

Build strategies compared (per system, tests A and B):
naive build (default CMake: no GPU even with CUDA loaded), native build
(GPU + modules), Spack default (auto OpenBLAS — slower CPU part), Spack
optimized (explicit MKL), XaaS source container (discovery + intersection +
operator preferences). On Aurora: specialized container, XaaS source
(CPU-only without the documented device define), XaaS source + fix, module.

Expected shape: naive >> everything else; XaaS source ~= native/specialized;
Spack default worse than Spack-optimized/XaaS on the CPU side.
"""

from conftest import print_table

from repro.containers import BlobStore
from repro.core import build_source_image, deploy_source_container
from repro.discovery import get_system
from repro.perf import build_app, run_workload


def _strategies_cscs(gm, system):
    """The build strategies on Ault23/Clariden."""
    store = BlobStore()
    sc = build_source_image(gm, store,
                            arch="arm64" if system.architecture == "arm64" else "amd64")
    builds = {}
    # Naive: default CMake command; CUDA module loaded but not enabled;
    # picks up MKL from the modules environment on Intel systems.
    builds["naive"] = build_app(
        gm, {"GMX_SIMD": "AUTO", "GMX_FFT_LIBRARY":
             "mkl" if system.cpu.vendor == "intel" else "fftw3"},
        build_system=system, label="naive")
    # Native: full manual build with GPU.
    builds["native"] = build_app(
        gm, {"GMX_SIMD": "AUTO", "GMX_GPU": "CUDA", "GMX_FFT_LIBRARY":
             "mkl" if system.cpu.vendor == "intel" else "fftw3"},
        build_system=system, label="native")
    # Spack default: GPU + automatically selected OpenBLAS; slower CPU part.
    builds["spack"] = build_app(
        gm, {"GMX_SIMD": "AUTO", "GMX_GPU": "CUDA", "GMX_FFT_LIBRARY": "fftw3"},
        build_system=system, label="spack", blas_library="openblas")
    # Spack optimized: explicit MKL selection.
    builds["spack-opt"] = build_app(
        gm, {"GMX_SIMD": "AUTO", "GMX_GPU": "CUDA", "GMX_FFT_LIBRARY": "mkl"},
        build_system=system, label="spack-opt")
    # XaaS source container: discovery-driven deployment.
    dep = deploy_source_container(
        sc, system, store,
        build_host=None if system.supports_container_build else get_system("dev-machine"))
    builds["xaas-source"] = dep.artifact
    return builds


def _times(builds, system, steps_a, steps_b):
    rows = []
    for name, art in builds.items():
        a = run_workload(art, system, "testA", threads=16, steps=steps_a)
        b = run_workload(art, system, "testB", threads=16, steps=steps_b)
        rows.append((name, a.total_seconds, b.total_seconds, a.gpu_offloaded))
    return rows


def test_fig10_ault23(benchmark, gromacs_perf_model):
    system = get_system("ault23")
    rows = benchmark(lambda: _times(_strategies_cscs(gromacs_perf_model, system),
                                    system, steps_a=20000, steps_b=1000))
    print_table("Fig 10 Ault23 (A 20,000 / B 1,000 steps)",
                ("build", "test A (s)", "test B (s)", "GPU"),
                [(n, f"{a:.1f}", f"{b:.1f}", g) for n, a, b, g in rows])
    by = {n: (a, b) for n, a, b, _ in rows}
    # Naive (no GPU) much slower than every GPU build.
    assert by["naive"][1] > 2 * by["native"][1]
    # XaaS source within 10% of the native build.
    assert abs(by["xaas-source"][1] - by["native"][1]) / by["native"][1] < 0.10
    # Spack default slower than Spack-optimized (the OpenBLAS CPU drag).
    assert by["spack"][1] > by["spack-opt"][1]
    # XaaS at least as good as Spack-optimized.
    assert by["xaas-source"][1] <= by["spack-opt"][1] * 1.05


def test_fig10_clariden(benchmark, gromacs_perf_model):
    system = get_system("clariden")
    rows = benchmark(lambda: _times(_strategies_cscs(gromacs_perf_model, system),
                                    system, steps_a=30000, steps_b=3000))
    print_table("Fig 10 Clariden (A 30,000 / B 3,000 steps)",
                ("build", "test A (s)", "test B (s)", "GPU"),
                [(n, f"{a:.1f}", f"{b:.1f}", g) for n, a, b, g in rows])
    by = {n: (a, b) for n, a, b, _ in rows}
    assert by["naive"][1] > 2 * by["xaas-source"][1]
    assert abs(by["xaas-source"][1] - by["native"][1]) / by["native"][1] < 0.10


def test_fig10_aurora(benchmark, gromacs_perf_model):
    """Aurora: XaaS source is CPU-only without the manual device define."""
    system = get_system("aurora")

    def run():
        store = BlobStore()
        sc = build_source_image(gromacs_perf_model, store)
        builds = {}
        builds["specialized-container"] = build_app(
            gromacs_perf_model,
            {"GMX_SIMD": "AVX_512", "GMX_GPU": "SYCL", "GMX_FFT_LIBRARY": "mkl"},
            label="specialized", containerized=True,
            extra_defines=("-DGMX_GPU_NB_CLUSTER_SIZE=4",))
        dep_plain = deploy_source_container(sc, system, store,
                                            build_host=get_system("dev-machine"))
        builds["xaas-source"] = dep_plain.artifact
        dep_fixed = deploy_source_container(sc, system, store,
                                            build_host=get_system("dev-machine"),
                                            extra_defines=("-DGMX_GPU_NB_CLUSTER_SIZE=4",))
        builds["xaas-source+fix"] = dep_fixed.artifact
        builds["module"] = build_app(
            gromacs_perf_model,
            {"GMX_SIMD": "AVX_512", "GMX_GPU": "SYCL", "GMX_MPI": "ON",
             "GMX_FFT_LIBRARY": "mkl"},
            label="module", extra_defines=("-DGMX_GPU_NB_CLUSTER_SIZE=4",))
        return _times(builds, system, steps_a=20000, steps_b=1000)

    rows = benchmark(run)
    print_table("Fig 10 Aurora (A 20,000 / B 1,000 steps)",
                ("build", "test A (s)", "test B (s)", "GPU"),
                [(n, f"{a:.1f}", f"{b:.1f}", g) for n, a, b, g in rows])
    by = {n: (a, b, g) for n, a, b, g in rows}
    # Without the fix, the source container silently runs CPU-only (Sec 6.3.1).
    assert not by["xaas-source"][2]
    assert by["xaas-source+fix"][2]
    assert by["xaas-source+fix"][1] < by["xaas-source"][1]
    # With the fix, XaaS matches the hand-specialized container within 10%.
    ratio = abs(by["xaas-source+fix"][1] - by["specialized-container"][1]) \
        / by["specialized-container"][1]
    assert ratio < 0.10
