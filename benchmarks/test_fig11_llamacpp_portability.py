"""Figure 11: performance portability of llama.cpp between systems.

Paper (pp512 + tg128, 4-bit 13B): Ault23 naive 26.9s vs specialized/
containers ~2.23s; Aurora 10.78 vs 5.59; Clariden 10.68 vs ~1.16.
Specialized, specialized-container and XaaS source all land together; the
naive build never enables the GPU.
"""

from conftest import print_table

from repro.containers import BlobStore
from repro.core import build_source_image, deploy_source_container
from repro.discovery import get_system
from repro.perf import build_app, run_workload

PAPER = {"ault23": (26.9, 2.24), "aurora": (10.78, 5.59), "clariden": (10.68, 1.16)}
GPU_OPTION = {"ault23": "GGML_CUDA", "clariden": "GGML_CUDA", "aurora": "GGML_SYCL"}


def _bench_total(art, system, threads):
    return sum(run_workload(art, system, w, threads=threads).total_seconds
               for w in ("pp512", "tg128"))


def _run_system(lm, sysname):
    system = get_system(sysname)
    threads = 16 if sysname == "ault23" else 36
    store = BlobStore()
    sc = build_source_image(
        lm, store, arch="arm64" if system.architecture == "arm64" else "amd64")
    naive = build_app(lm, {}, build_system=system, label="naive")
    specialized = build_app(lm, {GPU_OPTION[sysname]: "ON"},
                            build_system=system, label="specialized")
    spec_container = build_app(lm, {GPU_OPTION[sysname]: "ON"},
                               build_system=system, label="spec-container",
                               containerized=True)
    xaas = deploy_source_container(
        sc, system, store,
        selection={GPU_OPTION[sysname]: "ON"},
        build_host=None if system.supports_container_build
        else get_system("dev-machine")).artifact
    return {
        "naive": _bench_total(naive, system, threads),
        "specialized": _bench_total(specialized, system, threads),
        "specialized-container": _bench_total(spec_container, system, threads),
        "xaas-source": _bench_total(xaas, system, threads),
    }


def _check(times, sysname):
    naive_paper, spec_paper = PAPER[sysname]
    print_table(f"Fig 11 {sysname} (pp512+tg128)",
                ("build", "measured (s)", "paper (s)"),
                [("naive", f"{times['naive']:.2f}", naive_paper),
                 ("specialized", f"{times['specialized']:.2f}", spec_paper),
                 ("specialized-container", f"{times['specialized-container']:.2f}", "~"),
                 ("xaas-source", f"{times['xaas-source']:.2f}", "~")])
    # Naive never enables GPU: clearly slower.
    assert times["naive"] > 1.5 * times["specialized"]
    # XaaS source ~= specialized (paper: within measurement noise).
    assert abs(times["xaas-source"] - times["specialized"]) \
        / times["specialized"] < 0.10
    # Container overhead is negligible.
    assert abs(times["specialized-container"] - times["specialized"]) \
        / times["specialized"] < 0.05


def test_fig11_ault23(benchmark):
    from repro.apps import llamacpp_model
    times = benchmark(lambda: _run_system(llamacpp_model(), "ault23"))
    _check(times, "ault23")
    assert 0.7 * PAPER["ault23"][0] < times["naive"] < 1.3 * PAPER["ault23"][0]


def test_fig11_aurora(benchmark):
    from repro.apps import llamacpp_model
    times = benchmark(lambda: _run_system(llamacpp_model(), "aurora"))
    _check(times, "aurora")
    # Aurora's GPU advantage is the smallest of the three systems (paper:
    # 10.78 -> 5.59, under 2x).
    assert times["naive"] / times["specialized"] < 3.5


def test_fig11_clariden(benchmark):
    from repro.apps import llamacpp_model
    times = benchmark(lambda: _run_system(llamacpp_model(), "clariden"))
    _check(times, "clariden")
    # Clariden shows the largest GPU win (paper: ~9x).
    assert times["naive"] / times["specialized"] > 3.0
