"""Figure 12: IR containers on CPU (Ault01-04) and GPU (V100/A100).

Paper, CPU test A (1 core, 200 steps): SSE4.1 38.8, portable 38.6,
AVX2_128 38.6, AVX_256 36.6, AVX2_256 27.9, specialized 24.2, AVX_512 23.5;
CPU test B (36 cores, 200 steps): portable 40.0, SSE4.1 39.6, AVX2_128 39.3,
AVX_256 21.1, AVX2_256 20.4, AVX_512 18.1, specialized 17.9.
GPU: Docker vs XaaS IR within noise (V100 A 18.6 vs 18.4, B 37.1 vs 38.3;
A100 A 18.7 vs 18.5, B 32.1 vs 33.1), with slightly higher I/O for XaaS.

Key claims checked: IR-container deployments match natively specialized
builds; specializing the IR container gives up to ~2x over a portable
(SSE4.1 baseline) container.
"""

from conftest import print_table

from repro.apps import gromacs_model
from repro.containers import BlobStore
from repro.core import build_ir_container, deploy_ir_container
from repro.discovery import get_system
from repro.perf import build_app, run_workload

CPU_LEVELS = ("SSE4.1", "AVX2_128", "AVX_256", "AVX2_256", "AVX_512")


def _cpu_experiment(gm):
    system = get_system("ault01-04")
    store = BlobStore()
    configs = [{"GMX_SIMD": simd, "GMX_OPENMP": "ON", "GMX_FFT_LIBRARY": "fftw3"}
               for simd in CPU_LEVELS]
    container = build_ir_container(gm, configs, store=store)
    rows = {}
    for simd in CPU_LEVELS:
        dep = deploy_ir_container(
            container, gm,
            {"GMX_SIMD": simd, "GMX_OPENMP": "ON", "GMX_FFT_LIBRARY": "fftw3"},
            system, store)
        a = run_workload(dep.artifact, system, "testA", threads=1, steps=200)
        b = run_workload(dep.artifact, system, "testB", threads=36, steps=200)
        rows[simd] = (a.total_seconds, b.total_seconds)
    # Portable container: lowest-common-denominator SSE4.1 binary build.
    portable = build_app(gm, {"GMX_SIMD": "SSE4.1", "GMX_FFT_LIBRARY": "fftw3"},
                         label="portable", containerized=True)
    rows["portable"] = (
        run_workload(portable, system, "testA", threads=1, steps=200).total_seconds,
        run_workload(portable, system, "testB", threads=36, steps=200).total_seconds)
    # Specialized: native clang build at the best ISA.
    specialized = build_app(gm, {"GMX_SIMD": "AVX_512", "GMX_FFT_LIBRARY": "fftw3"},
                            label="specialized")
    rows["specialized"] = (
        run_workload(specialized, system, "testA", threads=1, steps=200).total_seconds,
        run_workload(specialized, system, "testB", threads=36, steps=200).total_seconds)
    return container.stats, rows


def test_fig12_cpu(benchmark, gromacs_perf_model):
    stats, rows = benchmark(lambda: _cpu_experiment(gromacs_perf_model))
    print_table("Fig 12 CPU (Ault01-04; A: 1 core/200 steps, B: 36 cores/200 steps)",
                ("variant", "test A (s)", "test B (s)"),
                [(k, f"{v[0]:.1f}", f"{v[1]:.1f}") for k, v in rows.items()])
    # Monotone along the ISA ladder for both tests.
    for idx in (0, 1):
        ladder = [rows[s][idx] for s in CPU_LEVELS]
        assert ladder == sorted(ladder, reverse=True)
    # Portable ~= the SSE4.1 IR deployment (same ISA, container overhead only).
    assert abs(rows["portable"][0] - rows["SSE4.1"][0]) / rows["SSE4.1"][0] < 0.06
    # IR specialization approaches the native specialized build (paper:
    # AVX_512 IR 23.5 vs specialized 24.2 on test A — within a few percent).
    assert abs(rows["AVX_512"][0] - rows["specialized"][0]) / rows["specialized"][0] < 0.07
    # "up to 2x when compared to a performance-oblivious container"
    assert 1.4 < rows["portable"][1] / rows["AVX_512"][1] < 2.6
    assert stats.validates_hypothesis1()


def _gpu_experiment(gm, sysname):
    system = get_system(sysname)
    store = BlobStore()
    simd = "AVX_512" if sysname == "ault23" else "AVX2_256"
    config = {"GMX_SIMD": simd, "GMX_GPU": "CUDA", "GMX_OPENMP": "ON",
              "GMX_FFT_LIBRARY": "fftw3"}
    container = build_ir_container(gm, [config], store=store)
    dep = deploy_ir_container(container, gm, config, system, store)
    docker = build_app(gm, config, label="docker", containerized=True)
    out = {}
    for label, art in (("docker", docker), ("xaas-ir", dep.artifact)):
        a = run_workload(art, system, "testA", threads=16, steps=20000)
        b = run_workload(art, system, "testB", threads=16, steps=1000)
        out[label] = (a.total_seconds, b.total_seconds, a.io_seconds + b.io_seconds)
    return out


PAPER_GPU = {"ault23": {"docker": (18.6, 37.1), "xaas-ir": (18.4, 38.3)},
             "ault25": {"docker": (18.7, 32.1), "xaas-ir": (18.5, 33.1)}}


def test_fig12_gpu_v100(benchmark, gromacs_perf_model):
    out = benchmark(lambda: _gpu_experiment(gromacs_perf_model, "ault23"))
    _check_gpu(out, "ault23")


def test_fig12_gpu_a100(benchmark, gromacs_perf_model):
    out = benchmark(lambda: _gpu_experiment(gromacs_perf_model, "ault25"))
    _check_gpu(out, "ault25")


def _check_gpu(out, sysname):
    paper = PAPER_GPU[sysname]
    print_table(f"Fig 12 GPU ({sysname}; A 20,000 / B 1,000 steps)",
                ("variant", "A (s)", "B (s)", "paper A", "paper B"),
                [(k, f"{v[0]:.1f}", f"{v[1]:.1f}", paper[k][0], paper[k][1])
                 for k, v in out.items()])
    # XaaS IR within 5% of the Docker specialized container on compute.
    for idx in (0, 1):
        assert abs(out["xaas-ir"][idx] - out["docker"][idx]) / out["docker"][idx] < 0.05
    # Both in the paper's band (within 40% absolute).
    for k in out:
        for idx in (0, 1):
            assert 0.5 * paper[k][idx] < out[k][idx] < 1.6 * paper[k][idx], (k, idx)
