"""Figure 2: impact of vectorization in GROMACS (16 threads, 100 timesteps).

Paper values (I/O excluded) — x86 Intel Xeon Gold 6130:
None 211.9s, SSE2 38.6s, SSE4.1 38.5s, AVX2_128 34.6s, AVX_256 28.1s,
AVX_512 24.2s (-37.4% SSE2->AVX_512 region); ARM NVIDIA GH200:
None 94.8s, SVE 28.2s, NEON_ASIMD 25.3s.
"""

from conftest import print_table

from repro.discovery import get_system
from repro.perf import build_app, run_workload

PAPER_X86 = {"None": 211.9, "SSE2": 38.6, "SSE4.1": 38.5,
             "AVX2_128": 34.6, "AVX_256": 28.1, "AVX_512": 24.2}
PAPER_ARM = {"None": 94.8, "ARM_SVE": 28.2, "ARM_NEON_ASIMD": 25.3}


def _sweep(gm, system, levels):
    out = {}
    for simd in levels:
        art = build_app(gm, {"GMX_SIMD": simd, "GMX_FFT_LIBRARY": "fftw3"},
                        label=simd, build_system=system)
        rep = run_workload(art, system, "fig2", threads=16, steps=100)
        out[simd] = rep.total_seconds - rep.io_seconds  # paper excludes I/O
    return out


def test_fig2_x86(benchmark, gromacs_perf_model):
    system = get_system("ault23")
    times = benchmark(lambda: _sweep(gromacs_perf_model, system, list(PAPER_X86)))
    print_table("Figure 2 (x86, Xeon 6130)", ("SIMD", "paper (s)", "measured (s)"),
                [(k, PAPER_X86[k], f"{times[k]:.1f}") for k in PAPER_X86])
    ordered = [times[k] for k in PAPER_X86]
    assert ordered == sorted(ordered, reverse=True)
    assert times["None"] / times["SSE2"] > 3.5          # the headline cliff
    assert 1.3 < times["SSE2"] / times["AVX_512"] < 2.0  # paper: 1.60


def test_fig2_arm(benchmark, gromacs_perf_model):
    system = get_system("clariden")
    times = benchmark(lambda: _sweep(gromacs_perf_model, system, list(PAPER_ARM)))
    print_table("Figure 2 (ARM, GH200)", ("SIMD", "paper (s)", "measured (s)"),
                [(k, PAPER_ARM[k], f"{times[k]:.1f}") for k in PAPER_ARM])
    assert times["None"] > times["ARM_SVE"] > times["ARM_NEON_ASIMD"]
    assert 2.5 < times["None"] / times["ARM_NEON_ASIMD"] < 5.5  # paper: 3.75
