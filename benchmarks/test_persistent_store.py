"""Persistent artifact store: cold-process warm starts and backend costs.

Not a paper figure — this benchmarks the ISSUE 2 machinery: a file-backed
store must make a *cold process* (fresh BlobStore/ArtifactCache objects,
live objects reconstructed from persisted payloads) nearly as fast as an
in-process warm cache, and far cheaper than recompiling. Also sizes the
raw backend operations so the wire/disk overhead stays visible.
"""

import time

from conftest import print_table

from repro.apps import lulesh_configs, lulesh_model
from repro.containers import ArtifactCache, BlobStore
from repro.core import build_ir_container, deploy_ir_container
from repro.discovery import get_system
from repro.store import FileBackend, MemoryBackend, RemoteBackend, StoreServer
from repro.util.hashing import content_digest

OPTIONS = {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"}


def _build(backend):
    store = BlobStore(backend)
    cache = ArtifactCache(store)
    result = build_ir_container(lulesh_model(), lulesh_configs(),
                                store=store, cache=cache)
    return result, store, cache


def test_cold_process_build_from_file_store(benchmark, tmp_path):
    root = tmp_path / "store"
    start = time.perf_counter()
    cold, _, _ = _build(FileBackend(root))
    cold_seconds = time.perf_counter() - start

    # Every iteration opens fresh backend/store/cache objects: the
    # cold-process path, including index load and parse_module replays.
    warm = benchmark(lambda: _build(FileBackend(root))[0])
    print_table("Cold-process LULESH build from a warm file store",
                ("build", "preprocess ops", "IR compiles"),
                [("first (cold store)", cold.stats.preprocess_ops,
                  cold.stats.ir_compile_ops),
                 ("cold process, warm store", warm.stats.preprocess_ops,
                  warm.stats.ir_compile_ops)])
    assert cold.stats.preprocess_ops > 0
    assert warm.stats.preprocess_ops == 0
    assert warm.stats.ir_compile_ops == 0
    assert warm.image.digest == cold.image.digest
    assert cold_seconds > 0


def test_cold_process_deploy_from_file_store(benchmark, tmp_path):
    root = tmp_path / "store"
    result, store, cache = _build(FileBackend(root))
    system = get_system("ault23")
    deploy_ir_container(result, lulesh_model(), OPTIONS, system, store,
                        cache=cache)  # warm the lower namespace

    def cold_deploy():
        res, st, ca = _build(FileBackend(root))
        before = ca.snapshot().get("lower", (0, 0))
        dep = deploy_ir_container(res, lulesh_model(), OPTIONS, system, st,
                                  cache=ca)
        after = ca.snapshot().get("lower", (0, 0))
        return dep, after[1] - before[1]

    dep, lower_misses = benchmark(cold_deploy)
    print_table("Cold-process deploy (LULESH @ ault23)",
                ("metric", "value"),
                [("lower misses", lower_misses),
                 ("lowered TUs", dep.lowered_count)])
    assert lower_misses == 0


def test_backend_put_get_throughput(benchmark, tmp_path):
    payloads = [(f"blob {i} " * 64).encode() for i in range(64)]
    digests = [content_digest(p) for p in payloads]
    backends = {
        "memory": MemoryBackend(),
        "file": FileBackend(tmp_path / "bench-store"),
    }
    rows = []
    with StoreServer(MemoryBackend()) as server:
        backends["remote"] = RemoteBackend(*server.address)
        for name, backend in backends.items():
            start = time.perf_counter()
            for digest, payload in zip(digests, payloads):
                backend.put(digest, payload)
            put_s = time.perf_counter() - start
            start = time.perf_counter()
            for digest in digests:
                backend.get(digest)
            get_s = time.perf_counter() - start
            rows.append((name, f"{put_s * 1e6 / len(payloads):.0f}",
                         f"{get_s * 1e6 / len(payloads):.0f}"))

        def mixed():
            backend = backends["memory"]
            for digest, payload in zip(digests, payloads):
                backend.put(digest, payload)
                backend.get(digest)

        benchmark(mixed)
    print_table("Backend op cost (64 x ~0.5 KiB blobs)",
                ("backend", "put us/op", "get us/op"), rows)
