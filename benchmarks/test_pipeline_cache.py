"""Staged pipeline engine: artifact-cache reuse and batch-deployment fan-out.

Not a paper figure — this benchmarks the production machinery of ISSUE 1:
a warm :class:`~repro.containers.store.ArtifactCache` must make repeated
IR-container builds (the five-ISA GROMACS sweep, benchmark reruns) skip all
preprocessing and IR compilation, and ``deploy_batch`` must lower each IR
once per ISA group rather than once per system.
"""

import time

from conftest import print_table

from repro.apps import five_isa_configs, lulesh_configs, lulesh_model
from repro.containers import ArtifactCache, BlobStore
from repro.core import build_ir_container, deploy_batch
from repro.discovery import get_system

BATCH_SYSTEMS = ("ault01-04", "ault23", "aurora", "ault25")


def test_warm_rebuild_does_no_compilation(benchmark, gromacs_perf_model):
    configs = five_isa_configs()
    cache = ArtifactCache()
    start = time.perf_counter()
    cold = build_ir_container(gromacs_perf_model, configs, cache=cache)
    cold_seconds = time.perf_counter() - start

    warm = benchmark(lambda: build_ir_container(gromacs_perf_model, configs,
                                                cache=cache))
    print_table("Warm rebuild vs cold (GROMACS 5-ISA sweep)",
                ("build", "preprocess ops", "IR compiles", "seconds"),
                [("cold", cold.stats.preprocess_ops, cold.stats.ir_compile_ops,
                  f"{cold_seconds:.3f}"),
                 ("warm", warm.stats.preprocess_ops, warm.stats.ir_compile_ops,
                  "(see pytest-benchmark)")])
    assert cold.stats.preprocess_ops > 0
    assert warm.stats.preprocess_ops == 0
    assert warm.stats.ir_compile_ops == 0
    assert warm.image.digest == cold.image.digest


def test_batch_deployment_reuses_lowerings(benchmark):
    result = build_ir_container(lulesh_model(), lulesh_configs())
    systems = [get_system(name) for name in BATCH_SYSTEMS]
    options = {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"}

    batch = benchmark(lambda: deploy_batch(result, lulesh_model(), options,
                                           systems, BlobStore()))
    rows = [(g.family, g.simd_name, ", ".join(g.systems)) for g in batch.plan.groups]
    print_table("Batch deployment ISA groups (LULESH)",
                ("family", "ISA", "systems"), rows)
    print_table("Lowered-object reuse",
                ("metric", "count"),
                [("systems deployed", len(batch.deployments)),
                 ("lowerings performed", batch.lowerings_performed),
                 ("lowerings reused", batch.lowerings_reused)])
    assert len(batch.deployments) == len(BATCH_SYSTEMS)
    # One lowering pass per ISA group, cache hits for every further system.
    assert batch.lowerings_reused >= batch.lowerings_performed
    assert {g.simd_name for g in batch.plan.groups} == {"AVX_512", "AVX2_256"}
