"""Retry layer overhead on the fault-free path.

The ISSUE-10 acceptance benchmark: wrapping every store round-trip in
:class:`repro.util.retry.RetryPolicy` must cost nothing measurable when
nothing fails. The same farm-shaped publish/probe/pull workload as the
store I/O benchmark runs through a client with retries pinned off and
through the default retried client against a healthy server; the retried
run must land within 5% of the bare run (a noise floor absorbs the
sub-millisecond cells), and its retry counters must read zero — proof
the fast path never entered the backoff machinery.

Results land in ``benchmarks/BENCH_retry_overhead.json``.
"""

import threading
import time

from repro.store import MemoryBackend, RemoteBackend, StoreServer
from repro.store.remote import DEFAULT_STORE_RETRY
from repro.telemetry import MetricsRegistry
from repro.util.hashing import content_digest
from repro.util.retry import NO_RETRY

from conftest import print_table

CLIENTS = 4
PUTS = 50          # artifacts published per client
PROBES = 80        # existence probes per client
GETS = 12          # peer-blob pulls per client
TRIALS = 5         # best-of, to shave scheduler noise off both modes

#: The acceptance bar, plus an absolute floor so a 2 ms jitter on a
#: 40 ms run cannot fail a policy that provably adds zero wire work.
MAX_OVERHEAD_RATIO = 1.05
NOISE_FLOOR_SECONDS = 0.05


def _farm_workload(host: str, port: int, retry, registry) -> float:
    """CLIENTS concurrent builders publish/probe/pull; returns seconds."""
    barrier = threading.Barrier(CLIENTS)
    errors: list[Exception] = []

    def builder(idx: int) -> None:
        backend = RemoteBackend(host, port, retry=retry, registry=registry)
        try:
            barrier.wait()
            digests = []
            for i in range(PUTS):
                payload = f"client-{idx} artifact-{i} ".encode() * 8
                digest = content_digest(payload)
                backend.put(digest, payload)
                digests.append(digest)
            backend.has_many(digests)
            for i in range(PROBES):
                backend.has(digests[i % len(digests)])
            for i in range(GETS):
                backend.get(digests[i % len(digests)])
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            backend.close()

    start = time.perf_counter()
    threads = [threading.Thread(target=builder, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    assert not errors, errors
    return seconds


def test_retry_layer_is_free_when_nothing_fails(bench_json):
    """DEFAULT_STORE_RETRY vs NO_RETRY on identical healthy-server runs:
    within 5% (best-of-5), and zero retries actually taken."""
    results = {}
    registries = {"no_retry": MetricsRegistry(),
                  "retried": MetricsRegistry()}
    for mode, retry in (("no_retry", NO_RETRY),
                        ("retried", DEFAULT_STORE_RETRY)):
        trials = []
        for _ in range(TRIALS):
            with StoreServer(MemoryBackend()) as server:
                host, port = server.address
                trials.append(_farm_workload(host, port, retry,
                                             registries[mode]))
        results[mode] = {"best": min(trials), "trials": trials}

    retries_taken = sum(
        value for key, value in
        registries["retried"].snapshot()["counters"].items()
        if key.startswith("store.retries"))
    ratio = results["retried"]["best"] / results["no_retry"]["best"]

    print_table(
        "Retry layer overhead: fault-free farm workload "
        f"({CLIENTS} clients, best of {TRIALS})",
        ("mode", "best seconds", "trials"),
        [(mode, f"{run['best']:.3f}",
          " ".join(f"{s:.3f}" for s in run["trials"]))
         for mode, run in results.items()]
        + [("ratio", f"{ratio:.3f}x", f"retries taken: {retries_taken}")])
    bench_json("retry_overhead", {
        "clients": CLIENTS,
        "ops_per_client": PUTS + PROBES + 1 + GETS,
        "trials": TRIALS,
        "no_retry": results["no_retry"],
        "retried": results["retried"],
        "overhead_ratio": ratio,
        "retries_taken": retries_taken,
    })

    # The policy must never fire on a healthy link...
    assert retries_taken == 0
    # ...and must be invisible on the clock: within 5%, or within the
    # absolute noise floor when the whole run is a few dozen ms.
    slack = max(results["no_retry"]["best"] * (MAX_OVERHEAD_RATIO - 1),
                NOISE_FLOOR_SECONDS)
    assert results["retried"]["best"] <= results["no_retry"]["best"] + slack, \
        results
