"""Sec. 6.4 "Configurability and System Dependency": Hypotheses 1 & 2.

Paper (GROMACS, scale 1.0): five ISA builds 8710 TUs -> 2695 IRs (69%);
4 configs with 2 vectorization x CUDA 7052 -> 2694 (76%); OpenMP x MPI
6976 -> 2333 (66.4%); 96% of repeat TUs have incompatible raw flags;
LULESH: 20 TUs -> 14 IRs. The benchmark runs the real pipeline at
XAAS_BENCH_SCALE and checks the reduction percentages, which are
scale-invariant by construction.
"""

from conftest import BENCH_SCALE, print_table

from repro.apps import (
    cuda_vector_configs,
    five_isa_configs,
    lulesh_configs,
    lulesh_model,
    mpi_openmp_configs,
)
from repro.core import build_ir_container

# Targets derive from the paper's reported TU/IR counts. Note: the paper's
# prose calls the CUDA experiment a "76% reduction", but its own counts
# (7052 TUs -> 2694 IRs) give 1 - 2694/7052 = 61.8%; we target the counts
# (see EXPERIMENTS.md).
PAPER = {
    "5-ISA": (8710, 2695, 0.69),
    "CUDA+vec": (7052, 2694, 0.618),
    "MPIxOpenMP": (6976, 2333, 0.664),
}


def _run(app, configs):
    return build_ir_container(app, configs, compile_irs=False).stats


def test_lulesh_20_to_14(benchmark):
    stats = benchmark(lambda: _run(lulesh_model(), lulesh_configs()))
    print_table("LULESH pipeline (Sec. 4.3)",
                ("stage", "count"),
                [("configuration", stats.after_configuration),
                 ("preprocessing", stats.after_preprocessing),
                 ("openmp", stats.after_openmp),
                 ("final IRs", stats.final_irs)])
    assert stats.total_tus == 20
    assert stats.after_configuration == 20
    assert stats.after_preprocessing == 20  # "this step does not change the result"
    assert stats.final_irs == 14
    assert stats.validates_hypothesis1()


def test_gromacs_five_isa(benchmark, gromacs_bench_model):
    stats = benchmark(lambda: _run(gromacs_bench_model, five_isa_configs()))
    _report("5-ISA", stats)
    assert abs(stats.reduction - PAPER["5-ISA"][2]) < 0.06
    assert stats.incompatible_flag_fraction > 0.9  # paper: 96%


def test_gromacs_cuda_vectorization(benchmark, gromacs_bench_model):
    stats = benchmark(lambda: _run(gromacs_bench_model, cuda_vector_configs()))
    _report("CUDA+vec", stats)
    assert abs(stats.reduction - PAPER["CUDA+vec"][2]) < 0.06


def test_gromacs_mpi_openmp(benchmark, gromacs_bench_model):
    stats = benchmark(lambda: _run(gromacs_bench_model, mpi_openmp_configs()))
    _report("MPIxOpenMP", stats)
    assert abs(stats.reduction - PAPER["MPIxOpenMP"][2]) < 0.08


def test_stage_ablation(benchmark, gromacs_bench_model):
    """Per-stage contribution (the DESIGN.md ablation): disabling any stage
    strictly increases the IR count."""
    configs = five_isa_configs()

    def run():
        full = build_ir_container(gromacs_bench_model, configs, compile_irs=False)
        no_vec = build_ir_container(gromacs_bench_model, configs, compile_irs=False,
                                    stages=("preprocess", "openmp"))
        none = build_ir_container(gromacs_bench_model, configs, compile_irs=False,
                                  stages=())
        return full.stats, no_vec.stats, none.stats

    full, no_vec, none = benchmark(run)
    print_table("Stage ablation (5-ISA sweep)",
                ("pipeline", "final IRs", "reduction"),
                [("all stages", full.final_irs, f"{full.reduction:.1%}"),
                 ("no vectorization delay", no_vec.final_irs, f"{no_vec.reduction:.1%}"),
                 ("no dedup at all", none.final_irs, f"{none.reduction:.1%}")])
    assert full.final_irs < no_vec.final_irs <= none.final_irs
    assert none.final_irs == none.total_tus


def test_hypothesis2_system_dependency(benchmark, gromacs_bench_model):
    """|SI| >> |SD|: most files compile to shared IR without knowing the
    system; the system-dependent rest is small (MPI-text-dependent files and
    conditionally-compiled GPU modules)."""
    from repro.buildsys import configure
    from repro.perf import default_build_environment

    def run():
        env = default_build_environment()
        base = configure(gromacs_bench_model.tree,
                         {"GMX_SIMD": "AVX_256", "GMX_FFT_LIBRARY": "fftpack"},
                         env=env, build_dir="/xaas/build")
        mpi = configure(gromacs_bench_model.tree,
                        {"GMX_SIMD": "AVX_256", "GMX_MPI": "ON",
                         "GMX_FFT_LIBRARY": "fftpack"},
                        env=env, build_dir="/xaas/build", name="mpi")
        cuda = configure(gromacs_bench_model.tree,
                         {"GMX_SIMD": "AVX_256", "GMX_GPU": "CUDA",
                          "GMX_FFT_LIBRARY": "fftpack"},
                         env=env, build_dir="/xaas/build", name="cuda")
        base_sources = {c.source for c in base.compile_commands}
        mpi_dep = {s for s in base_sources
                   if "GMX_MPI" in gromacs_bench_model.tree.read(s)}
        conditional = {c.source for c in cuda.compile_commands} - base_sources
        sd = mpi_dep | conditional
        si = base_sources - sd
        return len(si), len(sd)

    si, sd = benchmark(run)
    print_table("Hypothesis 2 (system dependency)",
                ("class", "files", "fraction"),
                [("system-independent (SI)", si, f"{si / (si + sd):.1%}"),
                 ("system-dependent (SD)", sd, f"{sd / (si + sd):.1%}")])
    assert si > 4 * sd  # |SI| >> |SD|


def _report(key, stats):
    paper_tus, paper_irs, paper_red = PAPER[key]
    print_table(f"Sec 6.4 {key} (scale={BENCH_SCALE})",
                ("metric", "paper (scale 1.0)", "measured"),
                [("TUs", paper_tus, stats.total_tus),
                 ("IRs", paper_irs, stats.final_irs),
                 ("reduction (from counts)", f"{paper_red:.1%}", f"{stats.reduction:.1%}"),
                 ("incompatible flags", "96%",
                  f"{stats.incompatible_flag_fraction:.0%}")])
    assert stats.validates_hypothesis1()
