"""Store hot-path I/O: pooled wire sessions and sharded index refs.

The PR-5 acceptance benchmark. A farm-shaped publish/probe workload (N
concurrent builders pushing artifacts into one shared StoreServer, then
probing and pulling their peers' blobs) runs twice — through the
historical one-connection-per-operation client and through the pooled
session client — and must show >=5x fewer TCP connections and lower
wall-clock with pooling. A second workload races two index writers in
*different namespaces* on one FileBackend: the sharded index must finish
with zero CAS retries where the monolithic layout shows contention.

Results land in ``benchmarks/BENCH_store_io.json`` via the conftest hook
so the perf trajectory is tracked from this PR on.
"""

import threading
import time

from repro.containers.store import ArtifactCache, BlobStore
from repro.store import FileBackend, MemoryBackend, RemoteBackend, StoreServer
from repro.util.hashing import content_digest

from conftest import print_table

CLIENTS = 4
PUTS = 60          # artifacts published per client
PROBES = 90        # existence probes per client (scheduler-style)
GETS = 15          # peer-blob pulls per client


def _farm_workload(host: str, port: int, pooled: bool) -> dict:
    """CLIENTS concurrent builders publish/probe/pull against one server.

    Returns per-run counters; the per-op shape is identical across modes
    so the connection counts and wall-clocks are directly comparable.
    """
    barrier = threading.Barrier(CLIENTS)
    errors: list[Exception] = []
    ops = {"puts": 0, "probes": 0, "gets": 0}
    ops_lock = threading.Lock()

    def builder(idx: int) -> None:
        backend = RemoteBackend(host, port, pooled=pooled)
        try:
            barrier.wait()
            digests = []
            for i in range(PUTS):
                payload = f"client-{idx} artifact-{i} ".encode() * 8
                digest = content_digest(payload)
                backend.put(digest, payload)
                digests.append(digest)
            # Scheduler-style probing: one batched probe for the whole
            # warm set, then per-key spot checks (both modes batch the
            # same way — pooling is the only variable).
            backend.has_many(digests)
            for i in range(PROBES):
                backend.has(digests[i % len(digests)])
            for i in range(GETS):
                backend.get(digests[i % len(digests)])
            with ops_lock:
                ops["puts"] += PUTS
                ops["probes"] += PROBES + 1
                ops["gets"] += GETS
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            backend.close()

    start = time.perf_counter()
    threads = [threading.Thread(target=builder, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    assert not errors, errors
    return {"seconds": seconds, **ops}


def test_pooled_sessions_beat_one_shot_connections(bench_json):
    """>=5x fewer TCP connections and lower wall-clock, same workload."""
    results = {}
    for mode, pooled in (("one_shot", False), ("pooled", True)):
        with StoreServer(MemoryBackend()) as server:
            host, port = server.address
            run = _farm_workload(host, port, pooled)
            run["connections"] = server.connections_served
            run["requests"] = server.requests_served
            results[mode] = run

    one_shot, pooled = results["one_shot"], results["pooled"]
    # Identical logical work on both sides.
    assert one_shot["requests"] == pooled["requests"]
    connection_ratio = one_shot["connections"] / max(1, pooled["connections"])
    speedup = one_shot["seconds"] / pooled["seconds"]

    print_table(
        "Store wire I/O: one-shot vs pooled sessions (farm workload, "
        f"{CLIENTS} clients)",
        ("mode", "connections", "requests", "seconds"),
        [(mode, run["connections"], run["requests"],
          f"{run['seconds']:.3f}") for mode, run in results.items()]
        + [("ratio", f"{connection_ratio:.1f}x fewer", "-",
            f"{speedup:.2f}x faster")])
    bench_json("store_io", {"wire": {
        "clients": CLIENTS,
        "ops_per_client": PUTS + PROBES + 1 + GETS,
        "one_shot": one_shot,
        "pooled": pooled,
        "connection_ratio": connection_ratio,
        "speedup": speedup,
    }})

    # The acceptance bar: sessions must collapse connection churn and
    # show up on the clock.
    assert connection_ratio >= 5.0, results
    assert pooled["seconds"] < one_shot["seconds"], results


def test_batched_probe_is_one_round_trip(bench_json):
    """The per-ISA lower-index probe pattern: N has() calls vs one
    has_many() — the wire cost drops from N requests to 1."""
    with StoreServer(MemoryBackend()) as server:
        backend = RemoteBackend(*server.address)
        digests = []
        for i in range(64):
            payload = f"probe-blob-{i}".encode()
            digests.append(content_digest(payload))
            backend.put(digests[-1], payload)
        before = server.requests_served
        for digest in digests:
            backend.has(digest)
        loop_requests = server.requests_served - before
        before = server.requests_served
        assert all(backend.has_many(digests).values())
        batched_requests = server.requests_served - before
        backend.close()

    print_table("Index probe: has() loop vs has_many()",
                ("strategy", "wire requests"),
                [("per-key has()", loop_requests),
                 ("has_many()", batched_requests)])
    bench_json("store_io", {"batched_probe": {
        "digests": len(digests),
        "loop_requests": loop_requests,
        "batched_requests": batched_requests,
    }})
    assert loop_requests == len(digests)
    assert batched_requests == 1


WRITERS = 2
PUBLISHES = 80


def _index_contention(root, sharded: bool) -> dict:
    """WRITERS concurrent publishers, each in its own namespace, each
    flushing the index on every put (flush_every=1) — the worst case for
    index-ref contention."""
    FileBackend(root)  # create the layout once
    caches = [ArtifactCache(BlobStore(FileBackend(root)),
                            sharded_index=sharded)
              for _ in range(WRITERS)]
    barrier = threading.Barrier(WRITERS)
    errors: list[Exception] = []

    def publisher(idx: int) -> None:
        cache = caches[idx]
        namespace = f"namespace-{idx}"
        try:
            barrier.wait()
            for i in range(PUBLISHES):
                cache.put(namespace, {"i": i}, f"payload-{idx}-{i}")
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=publisher, args=(i,))
               for i in range(WRITERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    assert not errors, errors

    # Zero lost writes either way — the CAS merge guarantees it; the
    # shards only change what the guarantee *costs*.
    fresh = ArtifactCache(BlobStore(FileBackend(root)), sharded_index=sharded)
    entries = fresh.entries()
    assert len(entries) == WRITERS * PUBLISHES, len(entries)
    return {"seconds": seconds,
            "cas_retries": sum(c.cas_retries for c in caches)}


def test_sharded_index_eliminates_cross_namespace_cas(tmp_path, bench_json):
    """Cross-namespace publishing: zero CAS retries sharded, >0 on the
    same workload with the monolithic ref."""
    mono = _index_contention(tmp_path / "monolithic", sharded=False)
    sharded = _index_contention(tmp_path / "sharded", sharded=True)

    print_table(
        "Index-ref contention: monolithic vs per-namespace shards "
        f"({WRITERS} writers x {PUBLISHES} publishes, flush_every=1)",
        ("layout", "CAS retries", "seconds"),
        [("monolithic", mono["cas_retries"], f"{mono['seconds']:.3f}"),
         ("sharded", sharded["cas_retries"], f"{sharded['seconds']:.3f}")])
    bench_json("store_io", {"index_contention": {
        "writers": WRITERS,
        "publishes_per_writer": PUBLISHES,
        "monolithic": mono,
        "sharded": sharded,
    }})

    assert sharded["cas_retries"] == 0, sharded
    assert mono["cas_retries"] > 0, \
        "monolithic baseline showed no contention; workload too small"
