"""Store hot-path I/O: pooled sessions, sharded refs, server flavors.

The PR-5 acceptance benchmark plus the ISSUE-6 concurrency sweep. A
farm-shaped publish/probe workload (N concurrent builders pushing
artifacts into one shared StoreServer, then probing and pulling their
peers' blobs) runs twice — through the historical
one-connection-per-operation client and through the pooled session
client — and must show >=5x fewer TCP connections and lower wall-clock
with pooling. A second workload races two index writers in *different
namespaces* on one FileBackend: the sharded index must finish with zero
CAS retries where the monolithic layout shows contention.

The ISSUE-6 sweep then drives {1, 8, 32, 128} concurrent sessions x
{4 KiB, 256 KiB, 4 MiB} blobs against both server flavors (thread-per-
connection vs selectors event loop) so the trajectory of the async
migration is directly comparable run over run, and asserts the async
server's peak resident body stays O(chunk) for streamed multi-MB blobs.

Results land in ``benchmarks/BENCH_store_io.json`` via the conftest hook
so the perf trajectory is tracked from this PR on.
"""

import os
import threading
import time

from repro.containers.store import ArtifactCache, BlobStore
from repro.store import (
    AsyncStoreServer,
    FileBackend,
    MemoryBackend,
    RemoteBackend,
    StoreServer,
)
from repro.store.wire import CHUNK_SIZE
from repro.util.hashing import content_digest

from conftest import print_table

CLIENTS = 4
PUTS = 60          # artifacts published per client
PROBES = 90        # existence probes per client (scheduler-style)
GETS = 15          # peer-blob pulls per client


def _farm_workload(host: str, port: int, pooled: bool) -> dict:
    """CLIENTS concurrent builders publish/probe/pull against one server.

    Returns per-run counters; the per-op shape is identical across modes
    so the connection counts and wall-clocks are directly comparable.
    """
    barrier = threading.Barrier(CLIENTS)
    errors: list[Exception] = []
    ops = {"puts": 0, "probes": 0, "gets": 0}
    ops_lock = threading.Lock()

    def builder(idx: int) -> None:
        backend = RemoteBackend(host, port, pooled=pooled)
        try:
            barrier.wait()
            digests = []
            for i in range(PUTS):
                payload = f"client-{idx} artifact-{i} ".encode() * 8
                digest = content_digest(payload)
                backend.put(digest, payload)
                digests.append(digest)
            # Scheduler-style probing: one batched probe for the whole
            # warm set, then per-key spot checks (both modes batch the
            # same way — pooling is the only variable).
            backend.has_many(digests)
            for i in range(PROBES):
                backend.has(digests[i % len(digests)])
            for i in range(GETS):
                backend.get(digests[i % len(digests)])
            with ops_lock:
                ops["puts"] += PUTS
                ops["probes"] += PROBES + 1
                ops["gets"] += GETS
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            backend.close()

    start = time.perf_counter()
    threads = [threading.Thread(target=builder, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    assert not errors, errors
    return {"seconds": seconds, **ops}


def test_pooled_sessions_beat_one_shot_connections(bench_json):
    """>=5x fewer TCP connections and lower wall-clock, same workload."""
    results = {}
    for mode, pooled in (("one_shot", False), ("pooled", True)):
        with StoreServer(MemoryBackend()) as server:
            host, port = server.address
            run = _farm_workload(host, port, pooled)
            run["connections"] = server.connections_served
            run["requests"] = server.requests_served
            results[mode] = run

    one_shot, pooled = results["one_shot"], results["pooled"]
    # Identical logical work on both sides.
    assert one_shot["requests"] == pooled["requests"]
    connection_ratio = one_shot["connections"] / max(1, pooled["connections"])
    speedup = one_shot["seconds"] / pooled["seconds"]

    print_table(
        "Store wire I/O: one-shot vs pooled sessions (farm workload, "
        f"{CLIENTS} clients)",
        ("mode", "connections", "requests", "seconds"),
        [(mode, run["connections"], run["requests"],
          f"{run['seconds']:.3f}") for mode, run in results.items()]
        + [("ratio", f"{connection_ratio:.1f}x fewer", "-",
            f"{speedup:.2f}x faster")])
    bench_json("store_io", {"wire": {
        "clients": CLIENTS,
        "ops_per_client": PUTS + PROBES + 1 + GETS,
        "one_shot": one_shot,
        "pooled": pooled,
        "connection_ratio": connection_ratio,
        "speedup": speedup,
    }})

    # The acceptance bar: sessions must collapse connection churn and
    # show up on the clock.
    assert connection_ratio >= 5.0, results
    assert pooled["seconds"] < one_shot["seconds"], results


def test_batched_probe_is_one_round_trip(bench_json):
    """The per-ISA lower-index probe pattern: N has() calls vs one
    has_many() — the wire cost drops from N requests to 1."""
    with StoreServer(MemoryBackend()) as server:
        backend = RemoteBackend(*server.address)
        digests = []
        for i in range(64):
            payload = f"probe-blob-{i}".encode()
            digests.append(content_digest(payload))
            backend.put(digests[-1], payload)
        before = server.requests_served
        for digest in digests:
            backend.has(digest)
        loop_requests = server.requests_served - before
        before = server.requests_served
        assert all(backend.has_many(digests).values())
        batched_requests = server.requests_served - before
        backend.close()

    print_table("Index probe: has() loop vs has_many()",
                ("strategy", "wire requests"),
                [("per-key has()", loop_requests),
                 ("has_many()", batched_requests)])
    bench_json("store_io", {"batched_probe": {
        "digests": len(digests),
        "loop_requests": loop_requests,
        "batched_requests": batched_requests,
    }})
    assert loop_requests == len(digests)
    assert batched_requests == 1


WRITERS = 2
PUBLISHES = 80


def _index_contention(root, sharded: bool) -> dict:
    """WRITERS concurrent publishers, each in its own namespace, each
    flushing the index on every put (flush_every=1) — the worst case for
    index-ref contention."""
    FileBackend(root)  # create the layout once
    caches = [ArtifactCache(BlobStore(FileBackend(root)),
                            sharded_index=sharded)
              for _ in range(WRITERS)]
    barrier = threading.Barrier(WRITERS)
    errors: list[Exception] = []

    def publisher(idx: int) -> None:
        cache = caches[idx]
        namespace = f"namespace-{idx}"
        try:
            barrier.wait()
            for i in range(PUBLISHES):
                cache.put(namespace, {"i": i}, f"payload-{idx}-{i}")
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=publisher, args=(i,))
               for i in range(WRITERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    assert not errors, errors

    # Zero lost writes either way — the CAS merge guarantees it; the
    # shards only change what the guarantee *costs*.
    fresh = ArtifactCache(BlobStore(FileBackend(root)), sharded_index=sharded)
    entries = fresh.entries()
    assert len(entries) == WRITERS * PUBLISHES, len(entries)
    return {"seconds": seconds,
            "cas_retries": sum(c.cas_retries for c in caches)}


def test_sharded_index_eliminates_cross_namespace_cas(tmp_path, bench_json):
    """Cross-namespace publishing: zero CAS retries sharded, >0 on the
    same workload with the monolithic ref."""
    mono = _index_contention(tmp_path / "monolithic", sharded=False)
    sharded = _index_contention(tmp_path / "sharded", sharded=True)

    print_table(
        "Index-ref contention: monolithic vs per-namespace shards "
        f"({WRITERS} writers x {PUBLISHES} publishes, flush_every=1)",
        ("layout", "CAS retries", "seconds"),
        [("monolithic", mono["cas_retries"], f"{mono['seconds']:.3f}"),
         ("sharded", sharded["cas_retries"], f"{sharded['seconds']:.3f}")])
    bench_json("store_io", {"index_contention": {
        "writers": WRITERS,
        "publishes_per_writer": PUBLISHES,
        "monolithic": mono,
        "sharded": sharded,
    }})

    assert sharded["cas_retries"] == 0, sharded
    assert mono["cas_retries"] > 0, \
        "monolithic baseline showed no contention; workload too small"


# -- ISSUE 6: concurrency x blob-size sweep, thread vs async server ------------

SWEEP_CLIENTS = (1, 8, 32, 128)
SWEEP_SIZES = ((4 * 1024, "4KiB"), (256 * 1024, "256KiB"),
               (4 * 1024 * 1024, "4MiB"))
#: Per-cell wire-byte budget: put+get pairs per client are scaled so no
#: single cell moves much more than this (the 1-pair floor makes the
#: 128x4MiB corner the exception).
SWEEP_BYTES_TARGET = 32 * (1 << 20)
#: Pair cap for tiny blobs, so low-byte cells still run long enough to
#: time (requests, not bytes, dominate them).
SWEEP_MAX_PAIRS = 48


def _pairs_for(clients: int, size: int) -> int:
    pairs = SWEEP_BYTES_TARGET // (clients * size * 2)
    return max(1, min(SWEEP_MAX_PAIRS, pairs))


#: Per-socket-operation client timeout inside the sweep. A flavor whose
#: clients starve past this under load scores a DNF for the cell — that
#: *is* the measurement (the thread server at 128 sessions), not a
#: harness failure.
SWEEP_CLIENT_TIMEOUT = 20.0


def _sweep_cell(flavor, clients: int, size: int) -> dict:
    """`clients` concurrent pooled sessions each put+get `pairs` unique
    blobs of `size` bytes against one server of the given flavor."""
    pairs = _pairs_for(clients, size)
    with flavor(MemoryBackend()) as server:
        host, port = server.address
        barrier = threading.Barrier(clients + 1)
        errors: list[Exception] = []

        def client(idx: int) -> None:
            backend = RemoteBackend(host, port,
                                    timeout=SWEEP_CLIENT_TIMEOUT)
            try:
                blobs = []
                for i in range(pairs):
                    seed = f"sweep-{idx}-{i}-".encode()
                    payload = (seed * (size // len(seed) + 1))[:size]
                    blobs.append((content_digest(payload), payload))
                barrier.wait(timeout=120)
                for digest, payload in blobs:
                    backend.put(digest, payload)
                for digest, payload in blobs:
                    if backend.get(digest) != payload:  # pragma: no cover
                        raise AssertionError(f"corrupt read-back: {digest}")
            except Exception as exc:
                errors.append(exc)
            finally:
                backend.close()

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for t in threads:
            t.start()
        barrier.wait(timeout=120)  # start the clock after payload prep
        start = time.perf_counter()
        for t in threads:
            t.join()
        seconds = time.perf_counter() - start
        stats = server.stats()
    moved = clients * pairs * size * 2
    cell = {"pairs_per_client": pairs, "completed": not errors,
            "peak_body_bytes": stats["peak_body_bytes"]}
    if errors:
        cell["client_errors"] = len(errors)
        cell["first_error"] = repr(errors[0])
    else:
        cell["seconds"] = round(seconds, 4)
        cell["mb_per_s"] = round(moved / seconds / (1 << 20), 1)
    return cell


def test_concurrency_blob_size_sweep(bench_json):
    """Thread vs async server across the full concurrency x size grid.

    The acceptance bar is deliberately loose on absolute throughput
    (one shared CPU, GIL on both sides) but strict on the shape: the
    async server must *sustain* the whole grid including 128 concurrent
    sessions, and must not collapse at high concurrency where the
    thread-per-connection flavor pays a scheduler entry per socket.
    """
    flavors = (("thread", StoreServer), ("async", AsyncStoreServer))
    results: dict[str, dict[str, dict]] = {name: {} for name, _ in flavors}
    for name, flavor in flavors:
        for clients in SWEEP_CLIENTS:
            for size, size_label in SWEEP_SIZES:
                cell = _sweep_cell(flavor, clients, size)
                results[name][f"{clients}x{size_label}"] = cell

    def fmt(cell):
        return f"{cell['seconds']:.3f}" if cell["completed"] else "DNF"

    rows = []
    for clients in SWEEP_CLIENTS:
        for _, size_label in SWEEP_SIZES:
            key = f"{clients}x{size_label}"
            thread_cell = results["thread"][key]
            async_cell = results["async"][key]
            if thread_cell["completed"] and async_cell["completed"]:
                ratio = thread_cell["seconds"] / \
                    max(async_cell["seconds"], 1e-9)
                verdict = f"{ratio:.2f}x"
            elif async_cell["completed"]:
                verdict = "thread DNF"
            else:  # pragma: no cover - async must complete (asserted)
                verdict = "async DNF"
            rows.append((key, thread_cell["pairs_per_client"],
                         fmt(thread_cell), fmt(async_cell), verdict))
    print_table(
        "Store server sweep: sessions x blob size, thread vs async flavor",
        ("clients x size", "pairs/client", "thread s", "async s",
         "async speedup"), rows)
    bench_json("store_io", {"concurrency_sweep": results})

    # The async server must sustain EVERY cell — 128 sessions included.
    # (The thread flavor is allowed to starve clients into timeouts at
    # high concurrency; recording that collapse is the benchmark's job.)
    incomplete_async = [key for key, cell in results["async"].items()
                        if not cell["completed"]]
    assert not incomplete_async, (incomplete_async, results["async"])
    # Throughput shape: no worse than the thread flavor at low
    # concurrency, and not collapsing where the thread flavor does.
    # Margins are generous — both flavors share one GIL and one core in
    # CI — guarding against regressions of kind, not percentage points.
    for _, size_label in SWEEP_SIZES:
        low_thread = results["thread"][f"1x{size_label}"]
        low_async = results["async"][f"1x{size_label}"]
        assert low_thread["completed"], low_thread
        assert low_async["seconds"] <= low_thread["seconds"] * 3.0 + 0.5, \
            (size_label, results)
    for clients in (32, 128):
        for _, size_label in SWEEP_SIZES:
            key = f"{clients}x{size_label}"
            thread_cell, async_cell = results["thread"][key], \
                results["async"][key]
            if thread_cell["completed"]:
                assert async_cell["seconds"] <= \
                    thread_cell["seconds"] * 3.0 + 2.0, (key, results)


def test_streamed_bodies_keep_server_memory_flat(tmp_path, bench_json):
    """The memory story behind streaming: a 4 MiB blob put+get through
    the async server against a file store must move the server's
    peak-resident-body high-water mark by one chunk, not one blob."""
    blob_bytes = 4 * (1 << 20)
    payload = os.urandom(blob_bytes)
    digest = content_digest(payload)
    with AsyncStoreServer(FileBackend(tmp_path / "store")) as server:
        backend = RemoteBackend(*server.address)
        start = time.perf_counter()
        backend.put(digest, payload)
        got = backend.get(digest)
        seconds = time.perf_counter() - start
        backend.close()
        stats = server.stats()
    assert got == payload

    print_table(
        "Streamed 4 MiB put+get through the async server (file store)",
        ("metric", "value"),
        [("blob bytes", blob_bytes),
         ("chunk bytes", CHUNK_SIZE),
         ("peak_body_bytes", stats["peak_body_bytes"]),
         ("seconds", f"{seconds:.3f}")])
    bench_json("store_io", {"streamed_memory": {
        "blob_bytes": blob_bytes,
        "chunk_bytes": CHUNK_SIZE,
        "peak_body_bytes": stats["peak_body_bytes"],
        "peak_outbuf_bytes": stats["peak_outbuf_bytes"],
        "seconds": round(seconds, 4),
    }})
    # O(chunk), not O(blob): the whole point of streamed bodies.
    assert stats["peak_body_bytes"] <= 4 * CHUNK_SIZE, stats
    assert stats["peak_body_bytes"] < blob_bytes // 8, stats
