"""Table 4: LLMs parsing the GROMACS configuration (10 runs per model).

Paper: tokens in/out, latency, cost, and min/med/max F1, precision, recall
for seven models. Plus the Sec. 6.2 generalization experiment on llama.cpp
(no in-context examples; normalization recovers part of the score).
"""

import statistics

from conftest import print_table

from repro.apps import llamacpp_model
from repro.discovery import (
    MODEL_PROFILES,
    analyze_build_script,
    get_model,
    score_report,
)
from repro.discovery.scoring import AggregateScore

RUNS = 10

# Paper's Table 4 medians for shape checking.
PAPER_F1_MED = {
    "gemini-flash-1.5-exp": 0.902, "gemini-flash-2-exp": 0.978,
    "claude-3-5-haiku-20241022": 0.672, "claude-3-5-sonnet-20241022": 0.672,
    "claude-3-7-sonnet-20250219": 0.883, "o3-mini-2025-01-31": 0.924,
    "gpt-4o-2024-08-06": 0.774,
}


def _evaluate_all(tree, truth):
    rows = []
    for name in MODEL_PROFILES:
        model = get_model(name)
        results = [model.analyze(tree, run_id=i) for i in range(RUNS)]
        scores = [score_report(r.report, truth) for r in results]
        agg = AggregateScore.from_scores(scores)
        rows.append((name, results, agg))
    return rows


def test_table4_gromacs(benchmark, gromacs_bench_model):
    tree = gromacs_bench_model.tree
    truth = analyze_build_script(tree)
    rows = benchmark(lambda: _evaluate_all(tree, truth))

    printable = []
    for name, results, agg in rows:
        tokens_in = statistics.mean(r.tokens_in for r in results)
        tokens_out = statistics.mean(r.tokens_out for r in results)
        latency = statistics.mean(r.latency_s for r in results)
        cost = statistics.mean(r.cost_usd for r in results)
        printable.append((
            name, f"{tokens_in:.0f}", f"{tokens_out:.0f}", f"{latency:.1f}",
            f"{cost:.3f}",
            f"{agg.f1[0]:.3f}/{agg.f1[1]:.3f}/{agg.f1[2]:.3f}",
            f"{agg.precision[1]:.3f}", f"{agg.recall[1]:.3f}",
            f"{PAPER_F1_MED[name]:.3f}"))
    print_table("Table 4 (GROMACS, 10 runs/model)",
                ("model", "tok_in", "tok_out", "t(s)", "cost$",
                 "F1 min/med/max", "P med", "R med", "paper F1 med"),
                printable)

    by_name = {name: agg for name, _, agg in rows}
    # Shape: Gemini-2 best; Claude-3.5 family clearly below the top tier.
    assert by_name["gemini-flash-2-exp"].f1[1] == max(a.f1[1] for a in by_name.values())
    for weak in ("claude-3-5-haiku-20241022", "claude-3-5-sonnet-20241022"):
        assert by_name[weak].f1[1] < by_name["gemini-flash-2-exp"].f1[1] - 0.15
    # o3-mini: strong median, wide spread (paper: 0.559-0.968).
    o3 = by_name["o3-mini-2025-01-31"]
    assert o3.f1[1] > 0.85 and (o3.f1[2] - o3.f1[0]) > 0.1
    # Claude-3.5: precision >> recall (paper: P~0.88, R~0.54).
    c35 = by_name["claude-3-5-sonnet-20241022"]
    assert c35.precision[1] - c35.recall[1] > 0.2
    # Every median within 0.12 of the paper's.
    for name, _, agg in rows:
        assert abs(agg.f1[1] - PAPER_F1_MED[name]) < 0.12, name


def test_table4_generalization_llamacpp(benchmark):
    """Sec 6.2 'Generalization': ggml without in-context examples."""
    lt = llamacpp_model()
    truth = analyze_build_script(lt.tree, "ggml.cmake")

    def run():
        rows = {}
        for name in ("claude-3-7-sonnet-20250219", "o3-mini-2025-01-31",
                     "gemini-flash-2-exp"):
            model = get_model(name)
            raw, norm = [], []
            for i in range(RUNS):
                res = model.analyze(lt.tree, "ggml.cmake", run_id=i,
                                    in_context_examples=False)
                raw.append(score_report(res.report, truth, normalize=False).f1)
                norm.append(score_report(res.report, truth, normalize=True).f1)
            rows[name] = (statistics.median(raw), statistics.median(norm))
        return rows

    rows = benchmark(run)
    print_table("Sec 6.2 generalization (ggml, no in-context examples)",
                ("model", "F1 raw", "F1 normalized"),
                [(n, f"{r:.3f}", f"{m:.3f}") for n, (r, m) in rows.items()])
    for name, (raw, norm) in rows.items():
        assert norm >= raw  # normalization never hurts
        assert norm < 0.95  # generalization is harder than the tuned GROMACS case
