"""Tables 1-3 and the Sec. 6.5 network experiment.

Table 1/2 are regenerated from the queryable catalogs; Table 3 from the
libfabric provider model; Sec. 6.5 from the bandwidth simulator (bare-metal
Cray-MPICH 64 GB/s vs containerized-over-cxi 23.5 GB/s vs LinkX 64-70 GB/s).
"""

from conftest import print_table

from repro.apps import TABLE1, portability_continuum, table1_rows, table2_rows
from repro.netfabric import (
    feature_matrix,
    intra_node_bandwidth,
    message_sweep,
    providers_supporting,
)


def test_table1_specialization_catalog(benchmark):
    rows = benchmark(table1_rows)
    print_table("Table 1 (specialization points)",
                ("Domain", "Name", "Arch spec.", "GPU", "Parallelism",
                 "Vectorization", "Perf libraries"), rows)
    assert len(rows) == 9
    # Every app except LULESH declares performance-library or GPU choices.
    assert all(TABLE1[n].gpu_acceleration or TABLE1[n].performance_libraries
               or n in ("LULESH", "OpenQCD") for n in TABLE1)
    # All nine support some form of multi-node or multi-thread parallelism.
    assert all(TABLE1[n].parallelism for n in TABLE1)


def test_table2_portability_layers(benchmark):
    rows = benchmark(lambda: table2_rows(include_xaas=True))
    print_table("Table 2 (+ XaaS rows)",
                ("Level", "Technology", "Description", "Approach", "Integration"),
                rows)
    continuum = portability_continuum()
    print("\nFig 1 continuum (most target-side build first):")
    print("  " + "  >  ".join(continuum))
    assert continuum[0] == "Spack / EasyBuild"
    assert continuum.index("XaaS source container") < continuum.index("XaaS IR container")


def test_table3_libfabric_matrix(benchmark):
    rows = benchmark(feature_matrix)
    print_table("Table 3 (libfabric 2.0 providers)",
                ("Feature", "tcp", "verbs", "cxi", "efa", "opx"), rows)
    # Spot checks against the paper's table.
    assert providers_supporting("scalable_endpoints") == ["opx"]
    assert "cxi" in providers_supporting("trigger_operations")
    assert "tcp" not in providers_supporting("atomic_operations")
    # No provider supports everything: the portability gap of Sec. 2.2.
    full_support = [name for name in ("tcp", "verbs", "cxi", "efa", "opx")
                    if name in set(providers_supporting("message", fully=True))
                    and name in set(providers_supporting("trigger_operations", fully=True))]
    assert full_support == []


def test_sec65_network_bandwidth(benchmark):
    def run():
        scenarios = {
            "bare-metal Cray-MPICH (shm)": intra_node_bandwidth(
                "cray-mpich", "cxi", containerized=False),
            "container OpenMPI via cxi hook": intra_node_bandwidth(
                "openmpi", "cxi", containerized=True),
            "container MPICH via LinkX": intra_node_bandwidth(
                "mpich", "lnx", containerized=True),
            "container OpenMPI via LinkX": intra_node_bandwidth(
                "openmpi", "lnx", containerized=True),
            "container, no hook (tcp)": intra_node_bandwidth(
                "openmpi", "cxi", containerized=True, hook_replaced=False),
        }
        return scenarios

    scenarios = benchmark(run)
    paper = {"bare-metal Cray-MPICH (shm)": 64.0,
             "container OpenMPI via cxi hook": 23.5,
             "container MPICH via LinkX": 64.0,
             "container OpenMPI via LinkX": 70.0,
             "container, no hook (tcp)": "-"}
    print_table("Sec 6.5 intra-node bandwidth (Clariden)",
                ("scenario", "path", "peak GB/s", "paper GB/s"),
                [(k, v.path.value, f"{v.peak_gbps:.1f}", paper[k])
                 for k, v in scenarios.items()])
    bare = scenarios["bare-metal Cray-MPICH (shm)"]
    hooked = scenarios["container OpenMPI via cxi hook"]
    linkx = scenarios["container OpenMPI via LinkX"]
    assert bare.peak_gbps == 64.0
    assert hooked.peak_gbps == 23.5
    assert linkx.peak_gbps == 70.0
    # Message-size sweep saturates monotonically.
    sweep = message_sweep(bare)
    print("\nbandwidth ramp (bare metal):",
          " ".join(f"{s >> 10}KiB:{bw:.1f}" for s, bw in sweep[::4]))
    values = [bw for _, bw in sweep]
    assert values == sorted(values)
