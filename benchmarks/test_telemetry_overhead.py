"""Telemetry must be close to free: a warm IR-container build with the
metrics registry live may cost at most 5% over the same build with the
process-wide kill switch off (ISSUE 7 acceptance).

Warm builds are the right probe: every pipeline stage runs (and times
itself into the registry) but the dominant compile work is cache hits, so
instrumentation is the largest *relative* cost it will ever be. Min-of-N
wall clocks keep scheduler noise out of the comparison.
"""

import time

from conftest import print_table

from repro.apps import lulesh_configs, lulesh_model
from repro.containers import ArtifactCache
from repro.core import build_ir_container
from repro.telemetry.registry import set_enabled

ROUNDS = 7
#: One warm build is ~2ms — too small a quantum for a stable relative
#: comparison, so each timed round amortizes several builds.
BUILDS_PER_ROUND = 5
#: Absolute floor under the 5% bound so a single sub-millisecond
#: scheduler hiccup cannot fail the run.
EPSILON_SECONDS = 0.002


def _round_seconds(cache) -> float:
    start = time.perf_counter()
    for _ in range(BUILDS_PER_ROUND):
        build_ir_container(lulesh_model(), lulesh_configs(), cache=cache)
    return (time.perf_counter() - start) / BUILDS_PER_ROUND


def test_instrumented_build_within_5_percent(bench_json):
    app = lulesh_model()
    configs = lulesh_configs()
    try:
        # One warm cache per configuration; rounds interleave the two so
        # environmental noise (CPU contention, frequency shifts) lands on
        # both sides instead of biasing whichever ran second.
        set_enabled(True)
        cache_on = ArtifactCache()
        build_ir_container(app, configs, cache=cache_on)   # warm it
        set_enabled(False)
        cache_off = ArtifactCache()
        build_ir_container(app, configs, cache=cache_off)  # warm it

        times_on, times_off = [], []
        for _ in range(ROUNDS):
            set_enabled(True)
            times_on.append(_round_seconds(cache_on))
            set_enabled(False)
            times_off.append(_round_seconds(cache_off))
        instrumented = min(times_on)
        disabled = min(times_off)
    finally:
        set_enabled(True)

    overhead = instrumented / disabled - 1.0 if disabled else 0.0
    print_table(f"Telemetry overhead (warm LULESH ir-build, min of {ROUNDS}"
                f" rounds x {BUILDS_PER_ROUND} builds)",
                ("registry", "seconds", "overhead"),
                [("enabled", f"{instrumented:.4f}", f"{overhead:+.1%}"),
                 ("disabled", f"{disabled:.4f}", "baseline")])
    bench_json("telemetry_overhead", {
        "instrumented_seconds": instrumented,
        "disabled_seconds": disabled,
        "overhead_fraction": overhead,
        "rounds": ROUNDS,
    })
    assert instrumented <= disabled * 1.05 + EPSILON_SECONDS, (
        f"telemetry overhead {overhead:+.1%} exceeds 5% "
        f"({instrumented:.4f}s vs {disabled:.4f}s)")
