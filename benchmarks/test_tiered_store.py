"""Tiered store vs flat clients on a warm farm workload.

The tiered-store acceptance benchmark: the same warm read-mostly
workload (every worker repeatedly resolving one shared artifact set —
the shape of a lower/deploy wave replaying a build from the store) runs
twice against one StoreServer — once with flat `RemoteBackend` clients,
once with each client behind its own `TieredBackend` (FileBackend tier
over the same remote). Upstream load comes from the server's own
`stats()["requests_served"]`; the tiered run must cost >=5x fewer
upstream requests, because after the first round every read is a local
tier hit. A second measurement shows the write path: publishing through
the tier batches N puts into a handful of `put_many` flushes.

Results land in ``benchmarks/BENCH_tiered_store.json`` via the conftest
hook so the trajectory is tracked from this PR on.
"""

import threading
import time

from repro.store import (
    FileBackend,
    MemoryBackend,
    RemoteBackend,
    StoreServer,
    TieredBackend,
)
from repro.util.hashing import content_digest

from conftest import print_table

WORKERS = 3        # concurrent farm clients
ARTIFACTS = 40     # shared warm artifact set (IR modules, manifests...)
ROUNDS = 8         # warm replays per client (lower+deploy jobs per batch)


def _seed(host: str, port: int) -> list[str]:
    backend = RemoteBackend(host, port)
    digests = []
    for i in range(ARTIFACTS):
        payload = f"artifact-{i} ".encode() * 32
        digests.append(content_digest(payload))
        backend.put(digests[-1], payload)
    backend.close()
    return digests


def _warm_workload(host: str, port: int, digests: list[str],
                   make_backend) -> float:
    """Every worker replays the warm set ROUNDS times: probe, then read.
    Returns wall-clock seconds; upstream cost is read off the server."""
    barrier = threading.Barrier(WORKERS)
    errors: list[Exception] = []

    def worker(idx: int) -> None:
        backend = make_backend(idx)
        try:
            barrier.wait()
            for _ in range(ROUNDS):
                for digest in digests:
                    assert backend.has(digest)
                    backend.get(digest)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            backend.close()

    start = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(WORKERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    assert not errors, errors
    return seconds


def test_warm_tiered_workers_offload_the_shared_store(tmp_path, bench_json):
    """>=5x fewer upstream requests with per-worker tiers, same reads."""
    results = {}
    for mode in ("flat", "tiered"):
        with StoreServer(MemoryBackend()) as server:
            host, port = server.address
            digests = _seed(host, port)
            seeded = server.requests_served

            if mode == "flat":
                def make_backend(idx):
                    return RemoteBackend(host, port)
            else:
                def make_backend(idx):
                    return TieredBackend(
                        FileBackend(tmp_path / f"tier-{idx}"),
                        RemoteBackend(host, port), tier_id=f"bench-{idx}")

            seconds = _warm_workload(host, port, digests, make_backend)
            results[mode] = {
                "seconds": round(seconds, 4),
                "upstream_requests": server.requests_served - seeded,
            }

    flat, tiered = results["flat"], results["tiered"]
    ratio = flat["upstream_requests"] / max(1, tiered["upstream_requests"])
    reads = WORKERS * ROUNDS * ARTIFACTS

    print_table(
        "Warm farm reads: flat clients vs per-worker tiers "
        f"({WORKERS} workers x {ROUNDS} rounds x {ARTIFACTS} artifacts)",
        ("mode", "upstream requests", "seconds"),
        [(mode, run["upstream_requests"], f"{run['seconds']:.3f}")
         for mode, run in results.items()]
        + [("ratio", f"{ratio:.1f}x fewer", "-")])
    bench_json("tiered_store", {"warm_reads": {
        "workers": WORKERS,
        "rounds": ROUNDS,
        "artifacts": ARTIFACTS,
        "logical_reads": reads,
        "flat": flat,
        "tiered": tiered,
        "upstream_request_ratio": ratio,
    }})

    # The acceptance bar: the local tiers must absorb the warm rereads.
    assert ratio >= 5.0, results
    # And the tiers cannot have answered from thin air: each worker paid
    # at most one fetch per artifact (plus pooled-session bookkeeping).
    assert tiered["upstream_requests"] < flat["upstream_requests"]


PUBLISHES = 64


def test_write_back_batches_publishes(bench_json):
    """The write path: N puts through the tier flush upstream as a few
    `put_many` batches instead of N wire requests."""
    results = {}
    for mode in ("flat", "tiered"):
        with StoreServer(MemoryBackend()) as server:
            host, port = server.address
            remote = RemoteBackend(host, port)
            backend = remote if mode == "flat" else \
                TieredBackend(MemoryBackend(), remote, flush_max_blobs=32)
            before = server.requests_served
            for i in range(PUBLISHES):
                payload = f"{mode}-publish-{i} ".encode() * 16
                backend.put(content_digest(payload), payload)
            if mode == "tiered":
                backend.flush()
            results[mode] = server.requests_served - before
            backend.close()

    print_table(
        f"Publish path: {PUBLISHES} puts, flat vs write-back tier",
        ("mode", "upstream requests"),
        [(mode, count) for mode, count in results.items()])
    bench_json("tiered_store", {"write_back": {
        "publishes": PUBLISHES,
        "flat_requests": results["flat"],
        "tiered_requests": results["tiered"],
    }})
    assert results["flat"] == PUBLISHES
    # 64 puts at flush_max_blobs=32 is 2-3 put_many flushes.
    assert results["tiered"] <= PUBLISHES // 8, results
