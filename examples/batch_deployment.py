"""Batch deployment: one IR container fanned out to a whole testbed.

Builds the LULESH IR container once (through a shared artifact cache, so a
rebuild is free), plans the ISA groups for four systems, and deploys them
in one batch — systems sharing an ISA reuse the lowered machine modules.

Run:  PYTHONPATH=src python examples/batch_deployment.py
"""

from repro.apps import lulesh_configs, lulesh_model
from repro.containers import ArtifactCache, BlobStore
from repro.core import build_ir_container, deploy_batch
from repro.discovery import get_system
from repro.perf import run_workload


def main() -> None:
    app = lulesh_model()
    store = BlobStore()
    cache = ArtifactCache()

    result = build_ir_container(app, lulesh_configs(), store=store, cache=cache)
    print("IR container:", result.stats.summary())

    rebuild = build_ir_container(app, lulesh_configs(), store=store, cache=cache)
    print(f"warm rebuild: {rebuild.stats.preprocess_ops} preprocess ops, "
          f"{rebuild.stats.ir_compile_ops} IR compiles "
          f"({rebuild.stats.cache_hit_total()} cache hits)")

    systems = [get_system(n) for n in ("ault01-04", "ault23", "aurora", "ault25")]
    options = {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"}
    batch = deploy_batch(result, app, options, systems, store, cache=cache)

    print("plan:", batch.plan.summary())
    print(f"lowerings: {batch.lowerings_performed} performed, "
          f"{batch.lowerings_reused} reused across the batch")
    for dep in batch.deployments:
        report = run_workload(dep.artifact, dep.system, "s50", threads=8)
        print(f"  {dep.system.name:<12} {dep.simd_name:<10} "
              f"{report.total_seconds:8.1f}s  tag={dep.tag}")


if __name__ == "__main__":
    main()
