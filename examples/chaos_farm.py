"""Chaos farm: a build that survives the failures it will meet in
production — flaky links, a store-server bounce, and a coordinator
crash resumed from its journal.

Walks what the fault-tolerance ISSUE adds:

1. **Retry policy up close** — full-jitter capped-exponential backoff
   with a wall-clock deadline, and the `store.retries` counters that
   make absorbed failures visible.
2. **Flaky link** — a `FlakyProxy` refusing every third connection sits
   between a client and a healthy store server; the retried client
   finishes the workload anyway, and the counters show what it rode out.
3. **Coordinator crash + resume** — a farm build loses its coordinator
   mid-batch; a new coordinator resumes from the journal ref in the
   shared store, the running job is re-queued, nothing is lost, and the
   blocked submitter's `wait()` reconnects on its own.

Run:  PYTHONPATH=src python examples/chaos_farm.py
"""

import threading
import time

from repro.cluster import Coordinator, CoordinatorClient, Journal
from repro.cluster.jobs import Job
from repro.store import MemoryBackend, RemoteBackend, StoreServer
from repro.telemetry import MetricsRegistry
from repro.testing import FlakyProxy
from repro.util.hashing import content_digest
from repro.util.retry import RetryPolicy


def retry_policy_mechanics() -> None:
    print("== RetryPolicy mechanics ==")
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=2.0,
                         deadline=30.0)
    envelope = [min(policy.max_delay, policy.base_delay * 2 ** (a - 1))
                for a in range(1, policy.max_attempts)]
    print(f"backoff envelope (jitter draws uniformly under it): {envelope}")

    calls = {"n": 0}

    def flaky_operation():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionError("transient blip")
        return "ok"

    result = policy.call(flaky_operation, retry_on=(ConnectionError,),
                         on_retry=lambda attempt, delay, exc: print(
                             f"  attempt {attempt} failed ({exc}); "
                             f"retrying in {delay * 1000:.0f} ms"))
    print(f"succeeded on attempt {calls['n']}: {result!r}")


def flaky_link() -> None:
    print("\n== flaky link: refuse every 3rd connection ==")
    registry = MetricsRegistry()
    with StoreServer(MemoryBackend()) as server:
        proxy = FlakyProxy(*server.address, refuse_every=3)
        host, port = proxy.start()
        try:
            backend = RemoteBackend(
                host, port, pooled=False, registry=registry,
                retry=RetryPolicy(max_attempts=5, base_delay=0.02))
            for i in range(12):
                payload = f"artifact-{i}".encode()
                backend.put(content_digest(payload), payload)
            print(f"12 puts finished; proxy refused "
                  f"{proxy.refused} of {proxy.connections} connections")
            retries = {key: value for key, value in
                       registry.snapshot()["counters"].items()
                       if key.startswith("store.retries")}
            print(f"absorbed failures, by op: {retries}")
        finally:
            proxy.stop()


def job(job_id: str, requires=(), produces=()) -> Job:
    return Job(job_id=job_id, kind="test", spec={},
               requires=tuple(requires), produces=tuple(produces))


def coordinator_crash_and_resume() -> None:
    print("\n== coordinator crash + journal resume ==")
    store = MemoryBackend()  # the journal lives next to the artifacts
    retry = RetryPolicy(max_attempts=30, base_delay=0.05, max_delay=0.3,
                        deadline=30.0)

    coordinator = Coordinator(journal=Journal(store, autosave_interval=0.05))
    coordinator.start()
    host, port = coordinator.address
    submitter = CoordinatorClient(host, port, retry=retry)
    worker = CoordinatorClient(host, port, retry=retry)

    submitter.submit([job("compile", produces=["obj"]),
                      job("link", requires=["obj"])])
    claimed = worker.fetch("w1")
    print(f"worker w1 is running {claimed.job_id!r}")

    results: dict = {}
    waiter = threading.Thread(
        target=lambda: results.update(
            submitter.wait(["compile", "link"], timeout=30)),
        daemon=True)
    waiter.start()
    time.sleep(0.2)  # let the autosaver checkpoint the in-flight state

    # Crash: kill the serve loop without any graceful journal flush.
    coordinator._server.shutdown()
    coordinator._server.server_close()
    print("coordinator crashed mid-batch (no graceful shutdown)")

    resumed = Coordinator(port=port, resume=True,
                          journal=Journal(store, autosave_interval=0.05))
    resumed.start()
    try:
        print("new coordinator resumed from the journal on the same port")
        fresh = CoordinatorClient(host, port, retry=retry)
        requeued = fresh.fetch("w2")
        print(f"the crashed lease came back: w2 claimed "
              f"{requeued.job_id!r}")
        fresh.complete("compile", "w2", {"obj": "…"})
        final = fresh.fetch("w2")
        fresh.complete(final.job_id, "w2", {})

        waiter.join(timeout=30)
        states = {name: record["state"] for name, record in results.items()}
        print(f"submitter's wait() rode the outage out: {states}")
        reconnects = submitter.registry.snapshot()["counters"].get(
            "cluster.reconnects", 0)
        print(f"submitter reconnect attempts absorbed: {reconnects}")

        # The pre-crash worker's late report changes nothing.
        applied = worker.complete("compile", "w1", {"obj": "stale"})
        print(f"zombie completion from w1 applied: {applied} "
              "(first result wins)")
    finally:
        resumed.stop()


def main() -> None:
    retry_policy_mechanics()
    flaky_link()
    coordinator_crash_and_resume()


if __name__ == "__main__":
    main()
