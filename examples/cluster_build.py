"""Build-farm cluster: one batch, many workers, one shared store.

Walks the cluster subsystem ISSUE 4 adds on top of the staged pipeline
and the persistent store:

1. **Cold farm build** — a `LocalCluster` (coordinator + 2 workers)
   decomposes a LULESH batch into stage-level jobs (preprocess and
   IR-compile per configuration, lower per ISA, deploy per system) and
   runs it against a file-backed store. Workers exchange *artifact keys*
   over the wire; every artifact moves through the store. Zero duplicate
   lowerings, byte-identical to a single-process `deploy_batch`.
2. **Store-aware rerun** — the same batch again: the client probes the
   store's `lower` index, finds every ISA already lowered, submits *no*
   lower jobs, and the deploys are born ready (routed to the front).
3. **Crash recovery** — a worker that dies mid-job loses its lease; the
   job re-queues with the dead worker excluded and finishes elsewhere.

Run:  PYTHONPATH=src python examples/cluster_build.py
"""

import tempfile
import threading

from repro.cluster import (
    ClusterWorker,
    Coordinator,
    CoordinatorClient,
    LocalCluster,
    cluster_build,
)
from repro.containers import ArtifactCache, BlobStore
from repro.store import FileBackend

SYSTEMS = ["ault23", "ault25", "dev-machine"]


def farm_builds(root: str) -> None:
    with LocalCluster(workers=2, store_dir=root) as cluster:
        print("== cold farm build ==")
        report = cluster.build("lulesh", SYSTEMS)
        print(f"plan: {report.plan_summary}")
        print(f"cold ISA groups: {report.cold_groups}")
        for dep in report.deployments:
            print(f"  {dep['system']:<12} {dep['simd']:<10} {dep['tag']}")
        print(f"lowerings: {report.lowerings_performed} performed, "
              f"{report.duplicate_lowerings} duplicated across workers")

        print("\n== store-aware rerun ==")
        rerun = cluster.build("lulesh", SYSTEMS)
        print(f"warm ISA groups: {rerun.warm_groups} (no lower jobs at all: "
              f"{not any('/lower/' in j for j in rerun.jobs)})")
        print(f"lowerings performed: {rerun.lowerings_performed}")


class CrashOnce(ClusterWorker):
    """Raises on its first lower job, then behaves."""

    crashed = False

    def execute(self, job):
        if job.kind == "lower" and not self.crashed:
            CrashOnce.crashed = True
            raise RuntimeError("simulated worker crash")
        return super().execute(job)


def crash_recovery(root: str) -> None:
    print("\n== crash recovery ==")
    store = BlobStore(FileBackend(root))
    cache = ArtifactCache(store)
    with Coordinator() as coordinator:
        host, port = coordinator.address
        flaky = CrashOnce(CoordinatorClient(host, port), store, cache=cache,
                          worker_id="flaky")
        steady = ClusterWorker(CoordinatorClient(host, port), store,
                               cache=cache, worker_id="steady")
        stop = threading.Event()
        threads = [threading.Thread(target=w.run, kwargs={"stop": stop},
                                    daemon=True) for w in (flaky, steady)]
        for thread in threads:
            thread.start()
        try:
            report = cluster_build(CoordinatorClient(host, port), "lulesh",
                                   ["ault23"], store, cache=cache,
                                   counters_shared_with_workers=True)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
    retried = [(job_id, rec) for job_id, rec in report.jobs.items()
               if rec["attempts"]]
    for job_id, rec in retried:
        print(f"  {job_id}: {rec['attempts']} failed attempt(s), "
              f"finished on {rec['worker']!r}")
    print(f"deployed anyway: {report.deployments[0]['tag']}")


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        farm_builds(root + "/farm")
        crash_recovery(root + "/recovery")


if __name__ == "__main__":
    main()
