"""Flight recorder: structured events, crash dumps, metrics history.

Walks the ISSUE 9 diagnostic layer end to end, in-process:

1. **Structured events** — leveled records with free-form fields that
   auto-capture the active span context, buffered in a bounded ring.
2. **Crash dump** — a worker-style failure inside a recorded span; the
   flight recorder's `guard` writes `crash-<service>-<pid>.json` holding
   the event narrative, buffered spans, and a metrics snapshot.
3. **Cross-linked report** — render the dump against the Chrome trace
   export of the same spans: each error event resolves to the exported
   span it was emitted under (`repro telemetry report --trace` does the
   same from the command line).
4. **Metrics history** — a bounded time-series sampler over a live
   registry, rendered as the sparklines `repro cluster top --watch`
   shows; downsampling keeps memory fixed while the horizon grows.

Run:  PYTHONPATH=src python examples/flight_recorder.py
"""

import tempfile
import time

from repro.telemetry import events as events_api
from repro.telemetry import trace as trace_api
from repro.telemetry.events import EventLog
from repro.telemetry.export import spans_from_chrome, write_chrome_trace
from repro.telemetry.flightrec import (
    FlightRecorder,
    load_crash_dump,
    render_report,
)
from repro.telemetry.history import (
    HistorySampler,
    MetricsHistory,
    rate,
    sparkline,
)
from repro.telemetry.registry import MetricsRegistry


def structured_events(log: EventLog, recorder) -> None:
    print("== structured events ==")
    trace_api.set_service("example-worker")
    log.emit("info", "worker started", worker="example-worker")
    with trace_api.recording(recorder):
        with trace_api.span("cluster.job.run", attrs={"job": "deploy-1"}):
            # Emitted inside a span: the event records the trace/span ids
            # of the execution it narrates — no manual correlation.
            log.emit("warn", "lease renewal slow", job_id="deploy-1",
                     latency_ms=740)
    event = log.snapshot()[-1]
    print(f"{len(log)} events buffered; last: [{event.level}] "
          f"{event.message} {event.fields}")
    print(f"  auto-captured trace={event.trace_id[:8]}… "
          f"span={event.span_id}")


def crash_dump(log: EventLog, recorder, directory: str) -> str:
    print("\n== crash dump ==")
    registry = MetricsRegistry()
    registry.counter("cluster.worker.jobs_done").inc(17)
    flightrec = FlightRecorder(directory=directory, recorder=recorder,
                               registry=registry, event_log=log,
                               extra={"worker": "example-worker"})
    # `guard` is the deterministic hook for code that owns its entry
    # point; `flightrec.install()` wires sys.excepthook / SIGUSR2 the
    # same way for real services.
    try:
        with flightrec.guard(reason="unhandled exception"):
            with trace_api.recording(recorder):
                with trace_api.span("cluster.job.run",
                                    attrs={"job": "deploy-2"}):
                    log.emit("error", "job execution failed",
                             job_id="deploy-2", error="BuildError: boom")
                    raise RuntimeError("injected failure for the example")
    except RuntimeError:
        pass
    [path] = flightrec.dumps
    dump = load_crash_dump(path)
    print(f"dump: {path}")
    print(f"  reason={dump['reason']!r} exception={dump['exception']['type']}"
          f" events={len(dump['events'])} spans={len(dump['spans'])}")
    return path


def cross_linked_report(dump_path: str, recorder, trace_path: str) -> None:
    print("\n== cross-linked report ==")
    write_chrome_trace(trace_path, recorder.spans())
    import json
    with open(trace_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    trace_spans = [span.to_json() for span in spans_from_chrome(doc)]
    report = render_report(load_crash_dump(dump_path),
                           trace_spans=trace_spans)
    for line in report.splitlines():
        if "->" in line or line.startswith(("crash dump", "reason",
                                            "exception", "cross-linked")):
            print(" ", line.strip())


def metrics_history() -> None:
    print("\n== metrics history ==")
    registry = MetricsRegistry()
    requests = registry.counter("store.server.requests")
    history = MetricsHistory(max_samples=64)
    sampler = HistorySampler(registry, history, interval=0.01)
    sampler.start()
    try:
        for i in range(40):
            requests.inc(1 + i % 7)  # a ramping request stream
            time.sleep(0.005)
    finally:
        sampler.stop()
    samples = history.series("store.server.requests")
    per_second = [value for _, value in rate(samples)]
    print(f"{len(samples)} bounded samples "
          f"(cap {history.max_samples}, downsamples instead of truncating)")
    print(f"  requests total  {sparkline([v for _, v in samples])}")
    print(f"  requests /s     {sparkline(per_second)}")
    print(f"  process rss     "
          f"{sparkline([v for _, v in history.series('process.rss_bytes')])}")


def main() -> None:
    log = EventLog()
    previous = events_api.set_event_log(log)
    try:
        recorder = trace_api.TraceRecorder()
        with tempfile.TemporaryDirectory() as tmp:
            structured_events(log, recorder)
            dump_path = crash_dump(log, recorder, tmp)
            cross_linked_report(dump_path, recorder, f"{tmp}/trace.json")
        metrics_history()
    finally:
        events_api.set_event_log(previous)


if __name__ == "__main__":
    main()
