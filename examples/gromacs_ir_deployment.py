"""GROMACS IR containers: one image, many ISAs (the Fig. 12 workflow).

Builds an IR container over five x86 vectorization configurations of the
synthetic GROMACS, reports the Hypothesis-1 deduplication numbers, then
deploys three different ISA specializations from the *same* container and
compares their predicted runtimes against a portable (SSE4.1) container.

Run:  python examples/gromacs_ir_deployment.py [scale]
"""

import sys

from repro.apps import five_isa_configs, gromacs_model
from repro.containers import BlobStore, Registry
from repro.core import build_ir_container, deploy_ir_container
from repro.discovery import get_system
from repro.perf import build_app, run_workload


def main(scale: float = 0.05) -> None:
    app = gromacs_model(scale=scale)
    store = BlobStore()
    registry = Registry()
    system = get_system("ault01-04")

    print(f"== 1. IR-container pipeline over 5 ISA configs (scale={scale}) ==")
    result = build_ir_container(app, five_isa_configs(), store=store)
    stats = result.stats
    print(stats.summary())
    print(f"incompatible raw flags among repeated TUs: "
          f"{stats.incompatible_flag_fraction:.0%} (paper: 96%)")
    print(f"reduction: {stats.reduction:.1%} (paper: 69%)")

    print("\n== 2. Publish, then deploy three specializations ==")
    registry.push("spcl/gromacs-ir", "2025.0", result.image, source_store=store)
    print("annotations visible without pulling:")
    for key, value in registry.annotations("spcl/gromacs-ir", "2025.0").items():
        print(f"  {key} = {value[:70]}")

    for simd in ("SSE4.1", "AVX_256", "AVX_512"):
        config = {"GMX_SIMD": simd, "GMX_OPENMP": "ON", "GMX_FFT_LIBRARY": "fftw3"}
        dep = deploy_ir_container(result, app, config, system, store,
                                  registry=registry, repository="spcl/gromacs-deployed")
        report = run_workload(dep.artifact, system, "testB", threads=36, steps=200)
        print(f"  {simd:<8} -> tag {dep.tag:<55} {report.total_seconds:6.1f} s")

    print("\n== 3. Compare against a portable container ==")
    portable = build_app(app, {"GMX_SIMD": "SSE4.1", "GMX_FFT_LIBRARY": "fftw3"},
                         label="portable", containerized=True)
    t_port = run_workload(portable, system, "testB", threads=36, steps=200).total_seconds
    best = deploy_ir_container(
        result, app, {"GMX_SIMD": "AVX_512", "GMX_OPENMP": "ON",
                      "GMX_FFT_LIBRARY": "fftw3"}, system, store)
    t_best = run_workload(best.artifact, system, "testB", threads=36, steps=200).total_seconds
    print(f"portable container: {t_port:.1f} s; specialized IR deploy: {t_best:.1f} s "
          f"-> {t_port / t_best:.2f}x speedup (paper: up to ~2x)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
