"""llama.cpp source containers across three HPC systems (the Fig. 11 story).

One source image is published; deploying it on Ault23 (V100), Clariden
(GH200) and Aurora (Intel Max) produces three differently-specialized
images, each near the hand-tuned build for its system, while a naive build
leaves the GPU unused everywhere.

Run:  python examples/llamacpp_source_container.py
"""

from repro.apps import llamacpp_model
from repro.containers import BlobStore
from repro.core import build_source_image, deploy_source_container
from repro.discovery import get_system
from repro.perf import build_app, run_workload

GPU_OPTION = {"ault23": "GGML_CUDA", "clariden": "GGML_CUDA", "aurora": "GGML_SYCL"}


def bench(artifact, system, threads):
    return sum(run_workload(artifact, system, w, threads=threads).total_seconds
               for w in ("pp512", "tg128"))


def main() -> None:
    app = llamacpp_model()
    dev = get_system("dev-machine")

    for sysname in ("ault23", "clariden", "aurora"):
        system = get_system(sysname)
        threads = 16 if sysname == "ault23" else 36
        store = BlobStore()
        arch = "arm64" if system.architecture == "arm64" else "amd64"
        source = build_source_image(app, store, arch=arch)

        naive = build_app(app, {}, build_system=system, label="naive")
        deployed = deploy_source_container(
            source, system, store,
            selection={GPU_OPTION[sysname]: "ON"},
            build_host=None if system.supports_container_build else dev)

        t_naive = bench(naive, system, threads)
        t_xaas = bench(deployed.artifact, system, threads)
        gpu = deployed.artifact.gpu_backend
        print(f"{sysname:<10} naive {t_naive:6.2f} s | "
              f"XaaS source ({gpu}) {t_xaas:6.2f} s | "
              f"speedup {t_naive / t_xaas:5.2f}x | tag {deployed.tag}")
        if deployed.excluded:
            skipped = ", ".join(sorted(deployed.excluded))
            print(f"           excluded by intersection: {skipped[:90]}")


if __name__ == "__main__":
    main()
