"""LLM-assisted specialization discovery (the Table 4 workflow).

Runs every simulated analyst model over the GROMACS build script ten times,
scores each run against the ground truth derived from the same script, and
prints a Table-4-style summary. Also demonstrates the Fig. 4 flow: intersect
the discovered specialization points with a target system's features.

Run:  python examples/llm_discovery.py
"""

import json
import statistics

from repro.apps import gromacs_model
from repro.core import default_selection, intersect_specializations
from repro.discovery import (
    MODEL_PROFILES,
    analyze_build_script,
    get_model,
    get_system,
    score_report,
)
from repro.discovery.scoring import AggregateScore


def main() -> None:
    app = gromacs_model(scale=0.05)
    truth = analyze_build_script(app.tree)

    print("== Table 4: model comparison on GROMACS (10 runs each) ==")
    header = (f"{'model':<28} {'tok_in':>7} {'tok_out':>8} {'time(s)':>8} "
              f"{'cost($)':>8}  F1 min/med/max")
    print(header)
    print("-" * len(header))
    for name in MODEL_PROFILES:
        model = get_model(name)
        results = [model.analyze(app.tree, run_id=i) for i in range(10)]
        scores = [score_report(r.report, truth) for r in results]
        agg = AggregateScore.from_scores(scores)
        print(f"{name:<28} "
              f"{statistics.mean(r.tokens_in for r in results):>7.0f} "
              f"{statistics.mean(r.tokens_out for r in results):>8.0f} "
              f"{statistics.mean(r.latency_s for r in results):>8.1f} "
              f"{statistics.mean(r.cost_usd for r in results):>8.3f}  "
              f"{agg.f1[0]:.3f}/{agg.f1[1]:.3f}/{agg.f1[2]:.3f}")

    print("\n== Fig. 4: intersecting discovery with Ault25 (AMD + A100) ==")
    system = get_system("ault25")
    common = intersect_specializations(truth, system)
    print("viable SIMD levels:", ", ".join(sorted(common.simd)))
    print("viable GPU backends:", ", ".join(sorted(common.gpu_backends)))
    print("examples of exclusions:")
    for name, reason in list(common.excluded.items())[:5]:
        print(f"  {name}: {reason}")
    selection = default_selection(common, system)
    print("\noperator-preference selection:")
    print(json.dumps(selection, indent=2))


if __name__ == "__main__":
    main()
