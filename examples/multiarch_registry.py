"""Multi-arch-IR registries and OCI compatibility (the Sec. 5.2 proposal).

Builds x86 and ARM IR containers for LULESH, publishes them under one tag
through a multi-platform index whose entries use ``llvm-ir`` as the image
architecture, then resolves and deploys the right one per target system —
and shows the annotation-before-pull query XaaS proposes.

Run:  python examples/multiarch_registry.py
"""

from repro.apps import lulesh_configs, lulesh_model
from repro.containers import BlobStore, ImageIndex, Platform, Registry
from repro.core import build_ir_container, deploy_ir_container
from repro.discovery import get_system
from repro.perf import run_workload


def main() -> None:
    app = lulesh_model()
    store = BlobStore()
    registry = Registry()

    print("== 1. Build one IR container per architecture family ==")
    images = {}
    for family in ("x86_64", "aarch64"):
        result = build_ir_container(app, lulesh_configs(), store=store,
                                    arch_family=family)
        images[family] = result
        registry.push("spcl/lulesh-ir", family, result.image, source_store=store)
        print(f"  {family}: {result.stats.summary()}")

    print("\n== 2. Publish a multi-arch-IR index ==")
    index = ImageIndex(
        [(Platform("llvm-ir", variant=family), images[family].image.digest)
         for family in images],
        annotations={"org.xaas.app": "lulesh"})
    registry.push_index("spcl/lulesh-ir", "latest", index)
    print("  tags:", registry.tags("spcl/lulesh-ir"))

    print("\n== 3. Query annotations before pulling ==")
    for key, value in registry.annotations("spcl/lulesh-ir", "latest").items():
        print(f"  {key} = {value}")

    print("\n== 4. Deploy the matching IR per system ==")
    for sysname in ("ault01-04", "clariden"):
        system = get_system(sysname)
        family = "aarch64" if system.architecture == "arm64" else "x86_64"
        pulled = registry.pull("spcl/lulesh-ir", "latest",
                               Platform("llvm-ir", variant=family))
        assert pulled.digest == images[family].image.digest
        dep = deploy_ir_container(images[family], app,
                                  {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"},
                                  system, store)
        report = run_workload(dep.artifact, system, "s50", threads=16)
        print(f"  {sysname:<10} ISA {dep.simd_name:<16} "
              f"{report.total_seconds * 1000:7.1f} ms  (tag {dep.tag})")


if __name__ == "__main__":
    main()
