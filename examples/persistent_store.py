"""Persistent artifact store: warm, cold, and shared builds.

Walks the three store tiers ISSUE 2 adds underneath the artifact cache:

1. **Warm (file)** — build LULESH's IR container into a file-backed store,
   then rebuild and deploy with *fresh* store/cache objects, simulating a
   new process: zero preprocess, zero IR-compile, zero lowering operations,
   everything replayed from disk (IR modules re-parsed from canonical text,
   machine modules deserialized from JSON payloads).
2. **Shared (remote)** — serve the same store over a local socket and let a
   second "builder" hit it through the push/pull/has wire protocol.
3. **Bounded (GC)** — pin the image manifest, then garbage-collect to a
   byte budget: least-recently-used entries go first, the pinned image
   graph never does.

Run:  PYTHONPATH=src python examples/persistent_store.py
"""

import tempfile

from repro.apps import lulesh_configs, lulesh_model
from repro.containers import ArtifactCache, BlobStore
from repro.core import build_ir_container, deploy_ir_container
from repro.discovery import get_system
from repro.store import FileBackend, RemoteBackend, StoreServer

OPTIONS = {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"}


def build_and_deploy(backend, system_name="ault23"):
    """One cold process: fresh store/cache objects over the backend."""
    store = BlobStore(backend)
    cache = ArtifactCache(store)
    result = build_ir_container(lulesh_model(), lulesh_configs(),
                                store=store, cache=cache)
    before = cache.snapshot().get("lower", (0, 0))
    dep = deploy_ir_container(result, lulesh_model(), OPTIONS,
                              get_system(system_name), store, cache=cache)
    lower_misses = cache.snapshot().get("lower", (0, 0))[1] - before[1]
    return result, dep, cache, lower_misses


def main() -> None:
    root = tempfile.mkdtemp(prefix="xaas-store-")
    print(f"store: {root}\n")

    # -- 1: cold store, then a cold *process* against the warm store --------
    result, dep, cache, lowers = build_and_deploy(FileBackend(root))
    print("first build :", result.stats.summary())
    print(f"              {result.stats.preprocess_ops} preprocess ops, "
          f"{result.stats.ir_compile_ops} IR compiles, {lowers} lowerings")
    cache.pin("image/lulesh", result.image.digest)

    result2, dep2, cache2, lowers2 = build_and_deploy(FileBackend(root))
    print("cold process:", f"{result2.stats.preprocess_ops} preprocess ops, "
          f"{result2.stats.ir_compile_ops} IR compiles, {lowers2} lowerings "
          f"(identical image: {result2.image.digest == result.image.digest})")

    # -- 2: share the store between processes over a socket ------------------
    with StoreServer(FileBackend(root)) as server:
        host, port = server.address
        print(f"\nserving the store on {host}:{port}")
        _, dep3, _, lowers3 = build_and_deploy(RemoteBackend(host, port),
                                               system_name="ault25")
        print(f"remote builder deployed to ault25 ({dep3.simd_name}): "
              f"{lowers3} new lowerings (new ISA), preprocess/IR free")

    # -- 3: bound the store with LRU GC; the pinned image survives -----------
    cache4 = ArtifactCache(BlobStore(FileBackend(root)))
    stats = cache4.stats()
    budget = stats["total_bytes"] // 2
    report = cache4.gc(budget)
    print(f"\ngc to {budget} bytes: {report.before_bytes} -> "
          f"{report.after_bytes} bytes, evicted {report.evicted_entries} "
          f"entries, deleted {report.deleted_blobs} blobs, "
          f"{report.pinned_blobs} pinned blobs kept")
    still_deployable = cache4.store.has(result.image.digest)
    print(f"pinned image manifest still present: {still_deployable}")


if __name__ == "__main__":
    main()
