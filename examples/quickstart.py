"""Quickstart: the XaaS IR-container workflow end to end on LULESH.

Builds an IR container covering LULESH's four build configurations
(MPI x OpenMP), shows the deduplication statistics from the paper's Sec. 4.3
(20 translation units -> 14 IR files), deploys one configuration to a
CPU-only HPC system, and predicts its runtime.

Run:  python examples/quickstart.py
"""

from repro.apps import lulesh_configs, lulesh_model
from repro.containers import BlobStore
from repro.core import build_ir_container, deploy_ir_container
from repro.discovery import get_system
from repro.perf import run_workload


def main() -> None:
    app = lulesh_model()
    store = BlobStore()

    print("== 1. Build the IR container (runs the full Fig. 7 pipeline) ==")
    result = build_ir_container(app, lulesh_configs(), store=store)
    print(result.stats.summary())
    print(f"image platform: {result.image.platform.architecture} "
          f"(variant {result.image.platform.variant})")
    print(f"image size: {result.image.total_size} bytes in {len(result.image.layers)} layers")

    print("\n== 2. Deploy one configuration on Ault01-04 (Xeon 6154) ==")
    system = get_system("ault01-04")
    deployment = deploy_ir_container(
        result, app, {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"}, system, store)
    print(f"selected ISA: {deployment.simd_name}")
    print(f"image tag: {deployment.tag}")
    for note in deployment.notes:
        print(f"  - {note}")

    print("\n== 3. Predicted runtimes across ISA choices ==")
    for simd in ("None", "SSE4.1", "AVX_256", "AVX_512"):
        dep = deploy_ir_container(
            result, app, {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"},
            system, store, simd_override=simd)
        report = run_workload(dep.artifact, system, "s50", threads=16)
        print(f"  {simd:<10} {report.total_seconds * 1000:8.1f} ms")


if __name__ == "__main__":
    main()
