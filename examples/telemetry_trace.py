"""Unified telemetry: metrics registry, trace spans, farm-wide status.

Walks the ISSUE 7 observability subsystem end to end, in-process:

1. **Metrics registry** — named/labeled counters and fixed-bucket
   histograms, and the snapshot algebra (`delta` then `merge`) that
   heartbeat shipping is built on.
2. **Traced build** — run `build_ir_container` under a recording root
   span, export a Chrome trace-event file, and validate it.
3. **Traced farm build** — a `LocalCluster` batch with the trace context
   riding `Job.trace`: one trace id correlates client waves, coordinator
   job lifecycles, and worker job spans. The same `--trace` flag on
   `repro cluster build` does this across real processes, adding
   store-server request spans.
4. **Live farm status** — the coordinator's `telemetry` summary (what
   `repro cluster top` renders): per-worker job counts, merged latency
   histograms, windowed throughput.

Run:  PYTHONPATH=src python examples/telemetry_trace.py
"""

import json
import tempfile

from repro.apps import lulesh_configs, lulesh_model
from repro.cluster import LocalCluster
from repro.core import build_ir_container
from repro.telemetry import trace as trace_api
from repro.telemetry.export import validate_chrome_trace, write_chrome_trace
from repro.telemetry.registry import (
    MetricsRegistry,
    merge_snapshot,
    snapshot_delta,
    summarize_histogram,
)

SYSTEMS = ["ault23", "ault25"]


def registry_basics() -> None:
    print("== metrics registry ==")
    registry = MetricsRegistry()
    registry.counter("cache.hits", namespace="lower").inc(3)
    registry.histogram("cluster.worker.job_seconds",
                       kind="deploy").observe(0.12)
    baseline = registry.snapshot()
    print("snapshot keys:", sorted(baseline["counters"]))

    # The heartbeat protocol in miniature: only what changed ships, and
    # the aggregator's merge reconstructs the worker's running totals.
    registry.counter("cache.hits", namespace="lower").inc(2)
    delta = snapshot_delta(registry.snapshot(), baseline)
    print("heartbeat delta:", delta["counters"])
    merged = merge_snapshot(dict(baseline), delta)
    print("merged counter:",
          merged["counters"]["cache.hits{namespace=lower}"])
    summary = summarize_histogram(
        registry.snapshot()["histograms"]
        ["cluster.worker.job_seconds{kind=deploy}"])
    print(f"job latency: p50={summary['p50'] * 1000:.0f}ms "
          f"(n={summary['count']})")


def traced_build(out_path: str) -> None:
    print("\n== traced ir-build ==")
    recorder = trace_api.TraceRecorder()
    trace_api.set_service("example")
    with trace_api.recording(recorder):
        with trace_api.span("example.ir-build", attrs={"app": "lulesh"}):
            build_ir_container(lulesh_model(), lulesh_configs())
    spans = recorder.drain()
    doc = write_chrome_trace(out_path, spans)
    problems = validate_chrome_trace(doc)
    stages = sorted({sp.name for sp in spans
                     if sp.name.startswith("pipeline.stage.")})
    print(f"{len(spans)} spans -> {out_path} "
          f"({'valid' if not problems else problems})")
    print("stage spans:", ", ".join(stages))


def traced_farm_build(out_path: str) -> None:
    print("\n== traced farm build + live status ==")
    recorder = trace_api.TraceRecorder()
    with LocalCluster(workers=2) as cluster:
        with trace_api.recording(recorder):
            with trace_api.span("example.cluster-build"):
                report = cluster.build("lulesh", SYSTEMS)
        spans = recorder.drain() + cluster.drain_spans()

        # What `repro cluster top` renders, read in-process here.
        summary = cluster.coordinator.queue.telemetry_summary()

    doc = write_chrome_trace(out_path, spans)
    problems = validate_chrome_trace(doc)
    trace_ids = {sp.trace_id for sp in spans}
    print(f"deployments: {[d['system'] for d in report.deployments]}")
    print(f"{len(spans)} spans, {len(trace_ids)} trace id(s) "
          f"-> {out_path} ({'valid' if not problems else problems})")
    by_kind = {}
    for sp in spans:
        by_kind.setdefault(sp.name.split(".")[0], []).append(sp)
    print("span families:", {k: len(v) for k, v in sorted(by_kind.items())})

    throughput = summary["throughput"]
    print(f"farm throughput: {throughput['completed']} jobs / "
          f"{throughput['window_seconds']:.0f}s window")
    for worker_id, entry in summary["workers"].items():
        jobs = summarize_histogram(None) if "job_seconds" not in entry \
            else entry["job_seconds"]
        print(f"  {worker_id}: {entry.get('jobs_done', 0)} done, "
              f"job p95 {jobs['p95'] * 1000:.0f}ms")


def main() -> None:
    registry_basics()
    with tempfile.TemporaryDirectory() as tmp:
        traced_build(f"{tmp}/ir-build-trace.json")
        traced_farm_build(f"{tmp}/farm-trace.json")
        with open(f"{tmp}/farm-trace.json", encoding="utf-8") as handle:
            events = json.load(handle)["traceEvents"]
        print(f"\nChrome trace-event file: {len(events)} events "
              "(open in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
