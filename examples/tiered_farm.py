"""Tiered store + elastic farm: worker-private tiers over one shared
store, and a fleet that grows into a backlog and shrinks after it.

Walks what the tiered-store ISSUE adds on top of the cluster:

1. **TieredBackend up close** — write-back batching (puts stay local
   until a flush), publish-before-announce across the tier (a ref write
   flushes pending blobs first), and single-flight miss dedup (16
   threads warming one blob cost one upstream fetch).
2. **Tiered farm build** — two workers, each behind its own
   `FileBackend` tier, over one shared store. Byte-identical artifacts,
   zero duplicate lowering, and the warm rerun is served from the
   workers' local tiers.
3. **Elastic fleet** — `LocalCluster(elastic=True)` starts at the floor,
   scales up when the stage wave piles up, and retires idle workers
   once the farm drains.

Run:  PYTHONPATH=src python examples/tiered_farm.py
"""

import tempfile
import threading
import time

from repro.cluster import (
    ClusterWorker,
    Coordinator,
    CoordinatorClient,
    LocalCluster,
    cluster_build,
)
from repro.containers import ArtifactCache, BlobStore
from repro.store import FileBackend, MemoryBackend, TieredBackend
from repro.util.hashing import content_digest

SYSTEMS = ["ault23", "ault25"]


def tier_mechanics() -> None:
    print("== TieredBackend mechanics ==")
    upstream = MemoryBackend()
    tier = TieredBackend(MemoryBackend(), upstream, flush_max_blobs=64)

    digest = content_digest(b"module")
    tier.put(digest, b"module")
    print(f"after put:   pending={tier.pending_blobs}, "
          f"upstream has it: {upstream.has(digest)}")
    tier.set_ref("artifact-index/demo", b"names " + digest.encode())
    print(f"after ref:   pending={tier.pending_blobs}, "
          f"upstream has it: {upstream.has(digest)} "
          "(ref writes flush first)")

    # Single-flight: everyone misses one digest at once, one fetch runs.
    cold = content_digest(b"cold blob")
    upstream.put(cold, b"cold blob")
    fetches = []
    original_get = upstream.get
    upstream.get = lambda d: (fetches.append(d), time.sleep(0.05),
                              original_get(d))[-1]
    threads = [threading.Thread(target=tier.get, args=(cold,))
               for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    print(f"16 concurrent misses -> {len(fetches)} upstream fetch, "
          f"hits={tier.tier_hits}, misses={tier.tier_misses}")


def tiered_farm(root: str) -> None:
    print("\n== tiered farm build ==")
    store_dir = root + "/shared"
    tier_root = root + "/tiers"
    with Coordinator() as coordinator:
        host, port = coordinator.address
        workers = [ClusterWorker(CoordinatorClient(host, port),
                                 BlobStore(FileBackend(store_dir)),
                                 worker_id=f"w{i}",
                                 local_tier_dir=tier_root)
                   for i in range(2)]
        stop = threading.Event()
        threads = [threading.Thread(target=w.run, kwargs={"stop": stop},
                                    daemon=True) for w in workers]
        for thread in threads:
            thread.start()
        try:
            store = BlobStore(FileBackend(store_dir))
            report = cluster_build(CoordinatorClient(host, port), "lulesh",
                                   SYSTEMS, store,
                                   cache=ArtifactCache(store))
            print(f"deployed {len(report.deployments)} systems, "
                  f"duplicate lowerings: {report.duplicate_lowerings}")
            rerun = cluster_build(CoordinatorClient(host, port), "lulesh",
                                  SYSTEMS, store, cache=ArtifactCache(store))
            print(f"warm rerun: lower jobs submitted: "
                  f"{any('/lower/' in j for j in rerun.jobs)}")
            for worker in workers:
                t = worker.tier
                print(f"  {worker.worker_id}: tier hits={t.tier_hits} "
                      f"misses={t.tier_misses} "
                      f"flushed={t.flushed_blobs} blobs upstream")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)


def elastic_fleet() -> None:
    print("\n== elastic fleet ==")
    cluster = LocalCluster(elastic=True, min_workers=1, max_workers=3,
                           scale_threshold=0.5, scale_poll_seconds=0.02,
                           scale_cooldown_seconds=0.2)
    with cluster:
        print(f"fleet starts at floor: {len(cluster.workers)} worker")
        cluster.build("lulesh", SYSTEMS + ["ault01-04", "dev-machine"])
        peak = len(cluster.workers)
        deadline = time.monotonic() + 15.0
        while len(cluster._live_worker_ids()) > cluster.min_workers \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        for event in cluster.scale_events:
            print(f"  scale {event['action']}: fleet -> "
                  f"{event['workers']} workers")
        print(f"peak fleet {peak}, back at floor "
              f"{len(cluster._live_worker_ids())} after the drain")


def main() -> None:
    tier_mechanics()
    with tempfile.TemporaryDirectory() as root:
        tiered_farm(root)
    elastic_fleet()


if __name__ == "__main__":
    main()
