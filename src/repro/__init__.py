"""repro — reproduction of "XaaS Containers: Performance-Portable
Representation With Source and IR Containers" (SC '25).

Packages
--------
``repro.core``
    The paper's contribution: source containers, the IR-container pipeline,
    feature intersection, deployment.
``repro.pipeline``
    Staged execution engine: stage graph with validated dataflow, artifact
    cache plumbing, parallel map, batch deployment planning.
``repro.compiler``
    Clang/LLVM analog: preprocessor, C-subset frontend, structured IR,
    passes, ISA lowering, reference interpreter.
``repro.buildsys``
    Mini-CMake: build-script parsing, configuration, compile-commands DBs.
``repro.containers``
    OCI substrate: blobs, layers, manifests, indexes, registries, runtimes,
    hooks.
``repro.discovery``
    System features, specialization extraction, simulated-LLM analysts,
    scoring.
``repro.apps``
    Synthetic GROMACS / LULESH / llama.cpp / Quantum-ESPRESSO models.
``repro.perf``
    Machine models and symbolic execution of lowered kernels.
``repro.netfabric``
    libfabric provider matrix and MPI bandwidth model.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results of every table and figure.
"""

__version__ = "1.0.0"
