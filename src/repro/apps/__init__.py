"""Synthetic HPC application models (the paper's case studies).

Each model couples a buildable source tree (mini-CMake script + C-subset
sources) with specialization sweeps and perf workloads:

* :mod:`~repro.apps.gromacs` — the primary case study, sized to reproduce
  the Sec. 6.4 pipeline statistics;
* :mod:`~repro.apps.lulesh` — the hand-verifiable 4-config example;
* :mod:`~repro.apps.llamacpp` — the generalization case study;
* :mod:`~repro.apps.qespresso` — in-context-learning example subject;
* :mod:`~repro.apps.catalog` — Tables 1 and 2 as queryable data.
"""

from repro.apps.base import AppModel, Workload, kernel_filler_source
from repro.apps.catalog import (
    TABLE1,
    TABLE2,
    XAAS_LAYERS,
    AppSpecializationProfile,
    PortabilityLayer,
    portability_continuum,
    table1_rows,
    table2_rows,
)
from repro.apps.gromacs import (
    cuda_vector_configs,
    five_isa_configs,
    gromacs_model,
    gromacs_tree,
    mpi_openmp_configs,
)
from repro.apps.llamacpp import llamacpp_model, llamacpp_tree
from repro.apps.lulesh import lulesh_configs, lulesh_model, lulesh_tree
from repro.apps.qespresso import qespresso_model, qespresso_tree


#: The one name -> model-factory registry (CLI, cluster workers, and
#: library callers all resolve through it). Each factory takes an optional
#: scale; apps without a scalable tree ignore it.
APP_MODELS = {
    "gromacs": lambda scale=None: gromacs_model(
        scale=1.0 if scale is None else scale),
    "lulesh": lambda scale=None: lulesh_model(),
    "llama.cpp": lambda scale=None: llamacpp_model(),
    "qespresso": lambda scale=None: qespresso_model(),
}


def app_model(name: str, scale: float | None = None):
    """Instantiate an app model by name — deterministic per (name, scale),
    which is what lets cluster workers rebuild byte-identical trees from a
    spec instead of shipping them over the wire."""
    try:
        factory = APP_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; known: {sorted(APP_MODELS)}") from None
    return factory(scale)


def default_ir_sweep(app_name: str) -> tuple[list[dict[str, str]], dict[str, str]]:
    """The canonical IR-container sweep for an app: ``(configs, default)``.

    ``configs`` is the configuration set baked into the app's IR container
    (what the CLI and the benchmarks drive); ``default`` is the
    configuration a deployment selects when the user does not choose one.
    """
    if app_name == "lulesh":
        return lulesh_configs(), {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"}
    configs = five_isa_configs()
    return configs, configs[-1]

__all__ = [
    "APP_MODELS", "app_model",
    "AppModel", "Workload", "kernel_filler_source",
    "TABLE1", "TABLE2", "XAAS_LAYERS", "AppSpecializationProfile",
    "PortabilityLayer", "portability_continuum", "table1_rows", "table2_rows",
    "cuda_vector_configs", "default_ir_sweep", "five_isa_configs",
    "gromacs_model", "gromacs_tree", "mpi_openmp_configs",
    "llamacpp_model", "llamacpp_tree",
    "lulesh_configs", "lulesh_model", "lulesh_tree",
    "qespresso_model", "qespresso_tree",
]
