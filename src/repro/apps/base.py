"""Common application-model machinery.

Each app module builds a :class:`AppModel`: a virtual source tree (build
script + C-subset sources + config template), the specialization sweeps used
by the IR-container experiments, and workload definitions for the performance
model. Apps are *synthetic but structurally faithful*: file counts,
macro-dependence fractions and specialization points are sized so the
paper's pipeline statistics (Sec. 6.4) emerge from actually running the
pipeline, not from hard-coded constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buildsys import SourceTree


@dataclass(frozen=True)
class Workload:
    """A named benchmark input: bindings for symbolic loop bounds.

    ``bindings`` resolve the kernel loop bounds (``n_atoms``...); ``steps``
    is the outer timestep/iteration count; ``io_seconds`` models the I/O
    overhead the paper reports separately in Fig. 12.
    """

    name: str
    bindings: dict[str, float]
    steps: int
    io_seconds: float = 0.0
    description: str = ""


@dataclass
class AppModel:
    """A complete synthetic application."""

    name: str
    tree: SourceTree
    # Option name -> values to sweep in IR-container experiments.
    sweeps: dict[str, list[str]] = field(default_factory=dict)
    workloads: dict[str, Workload] = field(default_factory=dict)
    # Functions whose cost dominates a timestep, with per-step call counts.
    hot_functions: dict[str, float] = field(default_factory=dict)
    # Baseline per-step work not captured by compiled kernels (library calls
    # like FFTW/cuFFT), in abstract work units; consumed by repro.perf.
    library_work: dict[str, float] = field(default_factory=dict)
    # Functions offloaded to the GPU when a GPU backend is built + available,
    # and the workload binding that measures their total work units.
    gpu_functions: frozenset[str] = frozenset()
    gpu_work_binding: str = ""
    # Cost of one GPU work unit relative to a GROMACS pair interaction.
    gpu_unit_cost: float = 1.0
    scale: float = 1.0

    def workload(self, name: str) -> Workload:
        try:
            return self.workloads[name]
        except KeyError:
            raise KeyError(f"{self.name}: unknown workload {name!r}") from None


def kernel_filler_source(index: int, *, simd_dep: bool = False,
                         mpi_dep: bool = False, omp: bool = False,
                         cuda_dep: bool = False, config_header: str = "config.h") -> str:
    """Generate a small, unique kernel file for the synthetic source trees.

    Uniqueness comes from the index-derived constants; the ``*_dep`` switches
    insert the macro dependences that determine how many IR variants the file
    needs across build configurations — the exact mechanism of the paper's
    Hypothesis 1 accounting.
    """
    a = (index * 7 + 3) % 19 + 1
    b = (index * 13 + 5) % 23 + 1
    lines = [f'#include "{config_header}"', ""]
    if mpi_dep:
        lines += ["#if GMX_MPI",
                  f"int halo_width_{index}() {{ return {a + 2}; }}",
                  "#else",
                  f"int halo_width_{index}() {{ return 0; }}",
                  "#endif", ""]
    if cuda_dep:
        lines += ["#if GMX_GPU_CUDA",
                  f"int device_block_{index}() {{ return {32 * (index % 4 + 1)}; }}",
                  "#endif", ""]
    if simd_dep:
        # The file's *text* depends on the SIMD level, so each vectorization
        # configuration needs its own IR (the paper's 14.3%).
        lines += [f"int packed_width_{index}() {{ return GMX_SIMD_LEVEL * {a}; }}", ""]
    body_pragma = "    #pragma omp parallel for\n" if omp else ""
    lines += [
        f"void kernel_{index}(double* x, double* y, int n) {{",
        body_pragma +
        f"    for (int i = 0; i < n; i++) {{ y[i] = x[i] * {a}.0 + {b}.0; }}",
        "}",
    ]
    return "\n".join(lines) + "\n"
