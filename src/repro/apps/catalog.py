"""Static catalogs: Table 1 (specialization points of HPC applications) and
Table 2 (portability levels and their implementations).

These are queryable data models, not mere pretty-printers: the source-
container pipeline consults :data:`TABLE1` to know which categories of
specialization points an application exposes, and the benchmark harness
regenerates the tables from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AppSpecializationProfile:
    """One Table 1 row."""

    name: str
    domain: str
    architecture_specialization: str
    gpu_acceleration: tuple[str, ...]
    parallelism: tuple[str, ...]
    vectorization: str
    performance_libraries: tuple[str, ...]

    def specialization_categories(self) -> set[str]:
        out = set()
        if self.architecture_specialization != "-":
            out.add("architecture")
        if self.gpu_acceleration:
            out.add("gpu")
        if self.parallelism:
            out.add("parallelism")
        if self.vectorization != "-":
            out.add("vectorization")
        if self.performance_libraries:
            out.add("libraries")
        return out


TABLE1: dict[str, AppSpecializationProfile] = {p.name: p for p in [
    AppSpecializationProfile(
        "GROMACS", "Molecular Dynamics", "Architecture-specific FFT",
        ("OpenCL", "CUDA", "SYCL", "HIP"), ("OpenMP", "MPI"),
        "Automatic, many ISAs", ("BLAS/LAPACK", "FFT (many)")),
    AppSpecializationProfile(
        "LULESH", "Hydrodynamics", "-",
        (), ("OpenMP", "MPI"), "-", ()),
    AppSpecializationProfile(
        "Quantum Espresso", "Electronic Structure", "Compiler adaptations",
        ("CUDA", "OpenACC"), ("OpenMP", "MPI"), "-",
        ("BLAS/LAPACK", "ELPA", "ScaLAPACK", "FFT (many)")),
    AppSpecializationProfile(
        "MILC", "Lattice QCD", "Compiler adaptations",
        ("CUDA", "HIP", "SYCL"), ("OpenMP", "MPI"),
        "Compiler flags, many ISAs (Intel, AMD, PowerPC)",
        ("LAPACK", "PRIMME", "FFTW", "QUDA")),
    AppSpecializationProfile(
        "OpenQCD", "Lattice QCD", "Optimized for x86 CPUs",
        (), ("OpenMP", "MPI"), "Assembly (SSE, AVX, FMA3)", ()),
    AppSpecializationProfile(
        "VPIC", "Particle-in-Cell", "Kokkos portability",
        ("CUDA",), ("OpenMP", "MPI"), "OpenMP and V4 library (many ISAs)", ()),
    AppSpecializationProfile(
        "CloudSC", "Cloud Physics", "System-specific toolchains",
        ("CUDA", "SYCL", "HIP", "OpenACC"), ("OpenMP", "MPI"), "-", ("Atlas",)),
    AppSpecializationProfile(
        "ICON", "Weather & Climate", "System-specific toolchains",
        ("CUDA", "HIP", "OpenACC"), ("OpenMP", "MPI"),
        "System-specific compiler flags", ("BLAS/LAPACK",)),
    AppSpecializationProfile(
        "llama.cpp", "LLM Inference", "Optimization flags",
        ("CUDA", "HIP", "SYCL", "Vulkan", "Metal", "OpenCL", "CANN", "MUSA"),
        ("OpenMP", "pthreads"),
        "Intrinsics (AVX, AVX2, AVX512, AMX, NEON, ...)",
        ("OpenBLAS", "MKL", "BLIS")),
]}


@dataclass(frozen=True)
class PortabilityLayer:
    """One Table 2 row: when in the pipeline portability is recovered."""

    level: str  # Building | Linking | Lowering | Emulation
    technology: str
    description: str
    approach: str
    integration: str
    # Fraction of the build performed on the target system (1.0 = full
    # source build, 0.0 = pure binary). Orders the continuum of Fig. 1.
    target_build_fraction: float


TABLE2: list[PortabilityLayer] = [
    PortabilityLayer("Building", "Spack / EasyBuild", "From-source package manager",
                     "Parameterized package compilation", "Automatic, dependency resolver", 1.0),
    PortabilityLayer("Linking", "Sarus / Apptainer", "HPC container runtime",
                     "Runtime binding, OCI hooks", "Manual, CLI option, and host bind", 0.05),
    PortabilityLayer("Lowering", "Linux Popcorn", "Multi-ISA binary system",
                     "Heterogeneous-OS containers", "No direct integration", 0.3),
    PortabilityLayer("Lowering", "H-containers", "ISA-agnostic container with IRs",
                     "Container + recompilation", "No direct integration", 0.3),
    PortabilityLayer("Lowering", "NVIDIA PTX", "Runtime JIT compilation",
                     "Virtual GPU architecture", "No direct integration", 0.2),
    PortabilityLayer("Emulation", "Wi4MPI / mpixlate", "MPI compatibility layer",
                     "Runtime emulation of MPI ABIs", "No direct integration", 0.0),
]

# XaaS containers slot between full source builds and runtime hooks.
XAAS_LAYERS: list[PortabilityLayer] = [
    PortabilityLayer("Source", "XaaS source container",
                     "Source + toolchain image, built at deployment",
                     "Deployment-time full build from shipped source",
                     "XaaS deployment tool", 0.9),
    PortabilityLayer("IR", "XaaS IR container",
                     "Deduplicated compiler IR, lowered at deployment",
                     "Deployment-time optimization and lowering",
                     "XaaS deployment tool", 0.4),
]


def table1_rows() -> list[tuple[str, ...]]:
    """Render Table 1 as tuples (for the benchmark printer)."""
    rows = []
    for p in TABLE1.values():
        rows.append((
            p.domain, p.name, p.architecture_specialization,
            ", ".join(p.gpu_acceleration) or "-",
            ", ".join(p.parallelism) or "-",
            p.vectorization,
            ", ".join(p.performance_libraries) or "-",
        ))
    return rows


def table2_rows(include_xaas: bool = False) -> list[tuple[str, ...]]:
    layers = TABLE2 + (XAAS_LAYERS if include_xaas else [])
    return [(l.level, l.technology, l.description, l.approach, l.integration)
            for l in layers]


def portability_continuum() -> list[str]:
    """Technologies ordered by how much build work happens on the target
    (the Fig. 1 continuum, descending)."""
    layers = TABLE2 + XAAS_LAYERS
    ordered = sorted(layers, key=lambda l: -l.target_build_fraction)
    return [l.technology for l in ordered]
