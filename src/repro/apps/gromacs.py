"""Synthetic GROMACS: the paper's primary case study.

Structurally faithful to GROMACS 2025 where it matters to the experiments:

* the build script declares the real specialization points (Table 1 /
  Fig. 4a): ``GMX_SIMD`` with nine x86 + two ARM levels, ``GMX_GPU`` with
  four backends, CPU/GPU FFT library multichoices, MPI/OpenMP/thread-MPI,
  BLAS/LAPACK switches, own-FFTW internal build;
* the source tree is sized like the real one as seen by the IR pipeline —
  1742 translation units per CPU configuration at ``scale=1.0``, of which
  ~13.7% have preprocessed text depending on the SIMD level, ~37% on the
  CUDA define, ~12.6% on MPI, ~17.8% carrying OpenMP pragmas (fractions
  reverse-engineered from the paper's Sec. 6.4 reduction statistics);
* the hot kernels (non-bonded pair interactions, PME spread, integrator,
  bonded forces) are real code in the C subset: the reference (no-SIMD)
  non-bonded path does ~1.8x the pair work of the cluster path, which — not
  a magic constant — is what produces the big None→SIMD drop of Fig. 2.
"""

from __future__ import annotations

from repro.apps.base import AppModel, Workload, kernel_filler_source
from repro.buildsys import SourceTree
from repro.util.rng import DeterministicRNG

# File-population statistics at scale=1.0, reverse-engineered from Sec. 6.4
# (see DESIGN.md): 5 ISA configs 8710 TUs -> ~2695 IRs; +CUDA 7052 -> ~2694;
# MPI x OpenMP 6976 -> ~2333.
TOTAL_CPU_FILES = 1742
SIMD_DEP_FILES = 238
CUDA_DEP_FILES = 638
CUDA_SIMD_OVERLAP = 34
MPI_DEP_FILES = 219
OMP_FILES = 310
MPI_OMP_OVERLAP = 60
CUDA_ONLY_FILES = 42

SIMD_LEVELS = {
    "None": 0, "SSE2": 1, "SSE4.1": 2, "AVX2_128": 3, "AVX_256": 4,
    "AVX2_256": 5, "AVX_512": 6, "ARM_NEON_ASIMD": 1, "ARM_SVE": 2,
}

X86_SWEEP_5ISA = ["None", "SSE4.1", "AVX2_128", "AVX_256", "AVX_512"]


NONBONDED_C = """\
#include "config.h"

#if GMX_SIMD_LEVEL >= 1
double nb_kernel(float* pos, float* fbuf, int* pi, int* pj, int n_pairs, float cutoff2) {
    double vtot = 0.0;
    #pragma omp parallel for reduction(+: vtot)
    for (int k = 0; k < n_pairs; k++) {
        float dx = pos[pi[k]] - pos[pj[k]];
        float dy = pos[pi[k] + 1] - pos[pj[k] + 1];
        float dz = pos[pi[k] + 2] - pos[pj[k] + 2];
        float r2 = dx * dx + dy * dy + dz * dz;
        float rinv = rsqrt(r2 + 0.001f);
        float rinv2 = rinv * rinv;
        float rinv6 = rinv2 * rinv2 * rinv2;
        float vlj = rinv6 * rinv6 - rinv6;
        float fscal = (12.0f * rinv6 * rinv6 - 6.0f * rinv6) * rinv2;
        fbuf[k] = fscal * dx + fscal * dy + fscal * dz;
        vtot += vlj;
    }
    return vtot;
}
#else
double nb_kernel(float* pos, float* fbuf, int* pi, int* pj, int n_pairs_ref, float cutoff2) {
    double vtot = 0.0;
    #pragma omp parallel for reduction(+: vtot)
    for (int k = 0; k < n_pairs_ref; k++) {
        float dx = pos[pi[k]] - pos[pj[k]];
        float dy = pos[pi[k] + 1] - pos[pj[k] + 1];
        float dz = pos[pi[k] + 2] - pos[pj[k] + 2];
        float r2 = dx * dx + dy * dy + dz * dz;
        float rr = sqrtf(r2 + 0.001f);
        float rinv = 1.0f / rr;
        float rinv2 = rinv * rinv;
        float rinv6 = rinv2 * rinv2 * rinv2;
        float vlj = rinv6 * rinv6 - rinv6;
        float fscal = (12.0f * rinv6 * rinv6 - 6.0f * rinv6) * rinv2;
        fbuf[k] = fscal * dx + fscal * dy + fscal * dz;
        vtot += vlj;
    }
    return vtot;
}
#endif
"""

PME_C = """\
#include "config.h"

void pme_spread(float* charges, float* grid, int* cell, int n_atoms) {
    #pragma omp parallel for
    for (int i = 0; i < n_atoms; i++) {
        float q = charges[i];
        float w0 = q * 0.25f;
        float w1 = q * 0.5f;
        float w2 = q * 0.25f;
        grid[i] = w0 + w1 * 0.5f + w2 * 0.25f;
    }
}

double pme_solve(float* grid, int n_grid) {
    double energy = 0.0;
    #pragma omp parallel for reduction(+: energy)
    for (int g = 0; g < n_grid; g++) {
        float k2 = grid[g] * grid[g] + 0.1f;
        energy += grid[g] * grid[g] / k2;
    }
    return energy;
}
"""

UPDATE_C = """\
#include "config.h"

void integrate(float* x, float* v, float* f, float* invmass, int n_dof, float dt) {
    #pragma omp parallel for
    for (int i = 0; i < n_dof; i++) {
        v[i] = v[i] + f[i] * invmass[i] * dt;
        x[i] = x[i] + v[i] * dt;
    }
}
"""

BONDED_C = """\
#include "config.h"

double bonded_forces(float* x, float* fbuf, int* ai, int* aj, int n_bonds, float kb) {
    double epot = 0.0;
    #pragma omp parallel for reduction(+: epot)
    for (int b = 0; b < n_bonds; b++) {
        float dx = x[ai[b]] - x[aj[b]];
        float dr = sqrtf(dx * dx + 0.0001f) - 1.0f;
        fbuf[b] = 2.0f * kb * dr;
        epot += kb * dr * dr;
    }
    return epot;
}
"""

DOMDEC_C = """\
#include "config.h"

#if GMX_MPI
int dd_partition(int* home, int n_atoms, int n_ranks) {
    int moved = 0;
    for (int i = 0; i < n_atoms; i++) {
        home[i] = i % n_ranks;
        moved += 1;
    }
    return moved;
}
#else
int dd_partition(int* home, int n_atoms, int n_ranks) {
    for (int i = 0; i < n_atoms; i++) { home[i] = 0; }
    return 0;
}
#endif
"""

MAIN_C = """\
#include "config.h"

#if GMX_MPI
int mdrun_ranks(int requested) { return requested; }
#else
int mdrun_ranks(int requested) { return 1; }
#endif

int mdrun_steps(int nsteps) { return nsteps; }
"""

CONFIG_H_IN = """\
#cmakedefine01 GMX_MPI
#cmakedefine01 GMX_THREAD_MPI
#cmakedefine01 GMX_OPENMP
#cmakedefine01 GMX_DOUBLE
#cmakedefine01 GMX_GPU_CUDA
#cmakedefine01 GMX_GPU_OPENCL
#cmakedefine01 GMX_GPU_SYCL
#cmakedefine01 GMX_GPU_HIP
#define GMX_SIMD_LEVEL @GMX_SIMD_LEVEL@
#define GMX_FFT_BACKEND "@GMX_FFT_LIBRARY@"
"""

# Flag-bearing kernel files the perf model executes, with fixed roles.
HANDWRITTEN = {
    "src/kernels/nonbonded.c": (NONBONDED_C, {"simd": True, "omp": True}),
    "src/kernels/pme.c": (PME_C, {"omp": True}),
    "src/kernels/update.c": (UPDATE_C, {"omp": True}),
    "src/kernels/bonded.c": (BONDED_C, {"omp": True}),
    "src/domdec.c": (DOMDEC_C, {"mpi": True}),
    "src/main.c": (MAIN_C, {"mpi": True}),
}

CUDA_KERNEL_TEMPLATE = """\
#include "config.h"

#if GMX_GPU_CUDA
void cuda_nb_launch_{i}(float* d_pos, float* d_f, int n_pairs_gpu) {{
    for (int k = 0; k < n_pairs_gpu; k++) {{
        float r = d_pos[k] * {a}.0f + {b}.5f;
        d_f[k] = r * r;
    }}
}}
#endif
"""


def _cmake_script(cpu_sources: list[str], cuda_sources: list[str]) -> str:
    src_lines = "\n  ".join(cpu_sources)
    cuda_lines = "\n  ".join(cuda_sources)
    return f"""\
cmake_minimum_required(VERSION 3.18)
project(GROMACS)

# Parallelism ------------------------------------------------------------
option(GMX_MPI "Build a parallel (message-passing) version of GROMACS" OFF)
option(GMX_THREAD_MPI "Build a thread-MPI-based multithreaded version of GROMACS" ON)
option(GMX_OPENMP "Enable OpenMP-based multithreading" ON)

# Precision and performance ------------------------------------------------
option(GMX_DOUBLE "Use double precision computation" OFF)
option(GMX_CYCLE_SUBCOUNTERS "Enable cycle subcounters" OFF)
gmx_option_multichoice(GMX_SIMD "SIMD instruction set level for CPU kernels"
  AUTO None SSE2 SSE4.1 AVX2_128 AVX_256 AVX2_256 AVX_512 ARM_NEON_ASIMD ARM_SVE)

# GPU acceleration ---------------------------------------------------------
gmx_option_multichoice(GMX_GPU "GPU acceleration backend" OFF CUDA OpenCL SYCL HIP)
gmx_option_multichoice(GMX_GPU_FFT_LIBRARY "GPU FFT library"
  cuFFT VkFFT clFFT rocFFT MKL)

# FFT and linear algebra ------------------------------------------------------
gmx_option_multichoice(GMX_FFT_LIBRARY "CPU FFT library"
  fftw3 mkl fftpack)
option(GMX_BUILD_OWN_FFTW "Download and build FFTW 3 internally" OFF)
option(GMX_EXTERNAL_BLAS "Use external BLAS instead of the bundled one" OFF)
option(GMX_EXTERNAL_LAPACK "Use external LAPACK instead of the bundled one" OFF)

# Misc external dependencies ------------------------------------------------
option(GMX_HWLOC "Use hwloc for hardware topology detection" ON)
option(GMX_USE_LMFIT "Use lmfit for curve fitting" ON)

if(GMX_SIMD STREQUAL "AUTO")
  message(STATUS "SIMD AUTO resolves at deployment from system discovery")
  set(GMX_SIMD_LEVEL 0)
elseif(GMX_SIMD STREQUAL "None")
  set(GMX_SIMD_LEVEL 0)
elseif(GMX_SIMD STREQUAL "SSE2")
  set(GMX_SIMD_LEVEL 1)
  add_compile_options(-msimd=SSE2)
elseif(GMX_SIMD STREQUAL "SSE4.1")
  set(GMX_SIMD_LEVEL 2)
  add_compile_options(-msimd=SSE4.1)
elseif(GMX_SIMD STREQUAL "AVX2_128")
  set(GMX_SIMD_LEVEL 3)
  add_compile_options(-msimd=AVX2_128)
elseif(GMX_SIMD STREQUAL "AVX_256")
  set(GMX_SIMD_LEVEL 4)
  add_compile_options(-msimd=AVX_256)
elseif(GMX_SIMD STREQUAL "AVX2_256")
  set(GMX_SIMD_LEVEL 5)
  add_compile_options(-msimd=AVX2_256)
elseif(GMX_SIMD STREQUAL "AVX_512")
  set(GMX_SIMD_LEVEL 6)
  add_compile_options(-msimd=AVX_512)
elseif(GMX_SIMD STREQUAL "ARM_NEON_ASIMD")
  set(GMX_SIMD_LEVEL 1)
  add_compile_options(-msimd=ARM_NEON_ASIMD)
  add_compile_options(--target=aarch64)
elseif(GMX_SIMD STREQUAL "ARM_SVE")
  set(GMX_SIMD_LEVEL 2)
  add_compile_options(-msimd=ARM_SVE)
  add_compile_options(--target=aarch64)
endif()

if(GMX_MPI)
  find_package(MPI 3.0 REQUIRED)
endif()
if(GMX_OPENMP)
  add_compile_options(-fopenmp)
endif()

set(GMX_GPU_CUDA OFF)
set(GMX_GPU_OPENCL OFF)
set(GMX_GPU_SYCL OFF)
set(GMX_GPU_HIP OFF)
if(GMX_GPU STREQUAL "CUDA")
  find_package(CUDA 12.1 REQUIRED)
  set(GMX_GPU_CUDA ON)
elseif(GMX_GPU STREQUAL "OpenCL")
  find_package(OpenCL 3.0 REQUIRED)
  set(GMX_GPU_OPENCL ON)
elseif(GMX_GPU STREQUAL "SYCL")
  find_package(SYCL REQUIRED)
  set(GMX_GPU_SYCL ON)
elseif(GMX_GPU STREQUAL "HIP")
  find_package(HIP 5.4.3 REQUIRED)
  set(GMX_GPU_HIP ON)
endif()

if(GMX_FFT_LIBRARY STREQUAL "fftw3")
  if(NOT GMX_BUILD_OWN_FFTW)
    find_package(FFTW 3.3 REQUIRED)
  endif()
elseif(GMX_FFT_LIBRARY STREQUAL "mkl")
  find_package(MKL REQUIRED)
endif()
if(GMX_EXTERNAL_BLAS)
  find_package(BLAS REQUIRED)
endif()
if(GMX_EXTERNAL_LAPACK)
  find_package(LAPACK REQUIRED)
endif()
if(GMX_HWLOC)
  find_package(hwloc 2.0)
endif()

configure_file(src/config.h.in include/config.h)
include_directories(src)

add_library(libgromacs
  {src_lines})

if(GMX_GPU STREQUAL "CUDA")
  add_library(libgromacs_gpu
    {cuda_lines})
endif()

add_executable(gmx src/main.c)
target_link_libraries(gmx libgromacs)
"""


def gromacs_tree(scale: float = 1.0) -> SourceTree:
    """Build the synthetic GROMACS source tree at the given scale."""
    n_total = max(len(HANDWRITTEN), int(round(TOTAL_CPU_FILES * scale)))
    files: dict[str, str] = {"src/config.h.in": CONFIG_H_IN}

    # Deterministic attribute layout over file indices.
    rng = DeterministicRNG(f"gromacs-layout/{scale}")
    n_filler = n_total - len(HANDWRITTEN)
    order = rng.shuffle(list(range(n_filler)))

    def quota(full: int) -> int:
        return int(round(full * n_filler / max(1, TOTAL_CPU_FILES - len(HANDWRITTEN))))

    n_simd = quota(SIMD_DEP_FILES - 1)      # nonbonded.c is simd-dep
    n_cuda = quota(CUDA_DEP_FILES)
    n_overlap = min(quota(CUDA_SIMD_OVERLAP), n_simd, n_cuda)
    n_mpi = quota(MPI_DEP_FILES - 2)        # domdec.c, main.c are mpi-dep
    n_omp = quota(OMP_FILES - 4)            # four handwritten kernels have omp
    n_both = min(quota(MPI_OMP_OVERLAP), n_mpi, n_omp)

    simd_set = set(order[:n_simd])
    cuda_set = set(order[n_simd - n_overlap:n_simd - n_overlap + n_cuda])
    # MPI/OMP attributes drawn from the tail so they mix freely with the rest.
    tail = order[::-1]
    mpi_set = set(tail[:n_mpi])
    omp_set = set(tail[n_mpi - n_both:n_mpi - n_both + n_omp])

    cpu_sources: list[str] = list(HANDWRITTEN)
    for path, (content, _) in HANDWRITTEN.items():
        files[path] = content
    for i in range(n_filler):
        path = f"src/kernels/k{i:04d}.c"
        files[path] = kernel_filler_source(
            i, simd_dep=i in simd_set, mpi_dep=i in mpi_set,
            omp=i in omp_set, cuda_dep=i in cuda_set)
        cpu_sources.append(path)

    n_cuda_only = max(1, int(round(CUDA_ONLY_FILES * scale)))
    cuda_sources: list[str] = []
    for i in range(n_cuda_only):
        path = f"src/gpu/cuda_k{i:03d}.c"
        a = (i * 11 + 7) % 17 + 1
        files[path] = CUDA_KERNEL_TEMPLATE.format(i=i, a=a, b=(i * 5) % 9)
        cuda_sources.append(path)

    files["CMakeLists.txt"] = _cmake_script(sorted(cpu_sources), cuda_sources)
    return SourceTree(files)


def gromacs_model(scale: float = 1.0) -> AppModel:
    """The GROMACS application model with UEABS-style workloads."""
    return AppModel(
        name="gromacs",
        tree=gromacs_tree(scale),
        sweeps={
            "GMX_SIMD": list(X86_SWEEP_5ISA),
            "GMX_MPI": ["OFF", "ON"],
            "GMX_OPENMP": ["OFF", "ON"],
            "GMX_GPU": ["OFF", "CUDA"],
        },
        workloads={
            # UEABS test A analog: ion-channel scale system (small).
            "testA": Workload(
                name="testA",
                bindings=_md_bindings(n_atoms=150_000),
                steps=200,
                io_seconds=0.9,
                description="UEABS GROMACS Test Case A analog (150k atoms)"),
            # UEABS test B analog: lignocellulose-scale system (large).
            "testB": Workload(
                name="testB",
                bindings=_md_bindings(n_atoms=4_500_000),
                steps=100,
                io_seconds=2.4,
                description="UEABS GROMACS Test Case B analog (4.5M atoms)"),
            # The Fig. 2 vectorization study input (16 threads, 100 steps).
            "fig2": Workload(
                name="fig2",
                bindings=_md_bindings(n_atoms=3_000_000),
                steps=100,
                io_seconds=2.0,
                description="Fig. 2 vectorization-impact input (3M atoms)"),
        },
        hot_functions={
            "nb_kernel": 1.0,       # once per step
            "pme_spread": 1.0,
            "pme_solve": 1.0,
            "integrate": 1.0,
            "bonded_forces": 1.0,
        },
        library_work={"fft_3d": 1.0},
        gpu_functions=frozenset({"nb_kernel", "pme_solve"}),
        gpu_work_binding="n_pairs",
        gpu_unit_cost=0.22,
        scale=scale,
    )


def _md_bindings(n_atoms: int) -> dict[str, float]:
    """Loop-bound bindings for the MD kernels given a system size.

    The pairs-per-atom factor covers the cluster pair list including the
    cluster-internal interactions GROMACS evaluates per list entry; it is
    the single workload-intensity calibration constant (see EXPERIMENTS.md).
    """
    pairs = n_atoms * 94.0
    return {
        "n_pairs": pairs,
        # Reference (no-SIMD) kernel walks the unpruned list: ~1.8x the pairs.
        "n_pairs_ref": pairs * 3.2,
        "n_atoms": float(n_atoms),
        "n_grid": n_atoms * 4.0,
        "n_dof": n_atoms * 3.0,
        "n_bonds": n_atoms * 1.3,
        "n_ranks": 1.0,
        "n_pairs_gpu": pairs,
        "while_iters": 8.0,
        "n": 1.0,  # filler kernels, never hot
        "requested": 1.0,
        "nsteps": 1.0,
    }


def five_isa_configs() -> list[dict[str, str]]:
    """The Fig. 12 CPU experiment: five x86 ISA configurations."""
    return [{"GMX_SIMD": simd, "GMX_OPENMP": "ON", "GMX_FFT_LIBRARY": "fftw3"}
            for simd in X86_SWEEP_5ISA]


def cuda_vector_configs() -> list[dict[str, str]]:
    """Sec. 6.4: four configurations, two vectorization x CUDA on/off."""
    out = []
    for simd in ("SSE4.1", "AVX_512"):
        for gpu in ("OFF", "CUDA"):
            out.append({"GMX_SIMD": simd, "GMX_GPU": gpu,
                        "GMX_OPENMP": "ON", "GMX_FFT_LIBRARY": "fftw3"})
    return out


def mpi_openmp_configs() -> list[dict[str, str]]:
    """Sec. 6.4: OpenMP x MPI sweep at fixed vectorization."""
    out = []
    for mpi in ("OFF", "ON"):
        for omp in ("OFF", "ON"):
            out.append({"GMX_SIMD": "AVX_256", "GMX_MPI": mpi,
                        "GMX_OPENMP": omp, "GMX_FFT_LIBRARY": "fftw3"})
    return out
