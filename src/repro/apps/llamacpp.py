"""Synthetic llama.cpp: the paper's second case study (Fig. 11).

llama.cpp achieves portability by splitting inference into dynamically
loadable backends; its build system (llama.cpp + the ggml subproject) has
over twenty optimization flags. We model both build scripts — the scoring
experiment feeds them to analysts *without* in-context examples, which is
the paper's "generalization" condition (Sec. 6.2) — and the matmul-dominated
inference kernels for the portability benchmark.
"""

from __future__ import annotations

from repro.apps.base import AppModel, Workload
from repro.buildsys import SourceTree

GGML_CMAKE = """\
cmake_minimum_required(VERSION 3.14)
project(ggml)

option(GGML_NATIVE "optimize the build for the current machine" ON)
option(GGML_LTO "enable link time optimization" OFF)
option(GGML_AVX "enable AVX" ON)
option(GGML_AVX2 "enable AVX2" ON)
option(GGML_AVX512 "enable AVX512F" OFF)
option(GGML_AVX512_VNNI "enable AVX512-VNNI" OFF)
option(GGML_AVX512_BF16 "enable AVX512-BF16" OFF)
option(GGML_AMX_TILE "enable AMX-TILE" OFF)
option(GGML_FMA "enable FMA" ON)
option(GGML_F16C "enable F16C" ON)
option(GGML_CUDA "enable CUDA backend" OFF)
option(GGML_CUDA_FORCE_MMQ "use mmq kernels instead of cuBLAS" OFF)
option(GGML_CUDA_F16 "use 16 bit precision for some calculations" OFF)
option(GGML_CUDA_GRAPHS "use CUDA graphs" ON)
option(GGML_HIP "enable HIP backend" OFF)
option(GGML_SYCL "enable SYCL backend" OFF)
option(GGML_VULKAN "enable Vulkan backend" OFF)
option(GGML_METAL "enable Metal backend" OFF)
option(GGML_BLAS "use BLAS for matrix multiplication" OFF)
gml_option_multichoice(GGML_BLAS_VENDOR "BLAS vendor" Generic OpenBLAS Intel FLAME)
option(GGML_OPENMP "use OpenMP" ON)
option(GGML_CPU_AARCH64 "use runtime weight conversion for aarch64" ON)
option(GGML_QUANTIZE_AUTOTUNE "autotune quantized kernels" OFF)

if(GGML_CUDA)
  find_package(CUDA 12.0 REQUIRED)
  set(GGML_USE_CUDA ON)
endif()
if(GGML_SYCL)
  find_package(SYCL REQUIRED)
  set(GGML_USE_SYCL ON)
endif()
if(GGML_HIP)
  find_package(HIP REQUIRED)
  set(GGML_USE_HIP ON)
endif()
if(GGML_BLAS)
  if(GGML_BLAS_VENDOR STREQUAL "OpenBLAS")
    find_package(OpenBLAS REQUIRED)
  elseif(GGML_BLAS_VENDOR STREQUAL "Intel")
    find_package(MKL REQUIRED)
  endif()
endif()
if(GGML_OPENMP)
  add_compile_options(-fopenmp)
endif()
if(GGML_AVX512)
  add_compile_options(-msimd=AVX_512)
elseif(GGML_AVX2)
  add_compile_options(-msimd=AVX2_256)
elseif(GGML_AVX)
  add_compile_options(-msimd=AVX_256)
endif()

configure_file(src/ggml-config.h.in include/ggml-config.h)
include_directories(src)

add_library(ggml
  src/ggml.c
  src/ggml-quants.c
  src/ggml-backend.c
  src/ggml-cpu.c)

if(GGML_CUDA)
  add_library(ggml-cuda src/ggml-cuda.c)
endif()
if(GGML_SYCL)
  add_library(ggml-sycl src/ggml-sycl.c)
endif()
"""

LLAMA_CMAKE = """\
cmake_minimum_required(VERSION 3.14)
project(llama.cpp)

option(LLAMA_BUILD_SERVER "build the llama server" ON)
option(LLAMA_BUILD_TESTS "build tests" OFF)
option(LLAMA_CURL "use libcurl to download models" OFF)
option(LLAMA_ALL_WARNINGS "enable all warnings" ON)

include(ggml.cmake)

add_library(llama
  src/llama.c
  src/llama-sampling.c
  src/llama-vocab.c)
target_link_libraries(llama ggml)

add_executable(llama-bench src/llama-bench.c)
target_link_libraries(llama-bench llama)
"""

GGML_CONFIG_H_IN = """\
#cmakedefine01 GGML_USE_CUDA
#cmakedefine01 GGML_USE_SYCL
#cmakedefine01 GGML_USE_HIP
#cmakedefine01 GGML_OPENMP
"""

GGML_C = """\
#include "ggml-config.h"

double vec_dot_q4(float* x, float* y, int n_vec) {
    double sum = 0.0;
    #pragma omp parallel for reduction(+: sum)
    for (int i = 0; i < n_vec; i++) {
        float xs = x[i] * 0.0625f;
        sum += xs * y[i];
    }
    return sum;
}

void matmul_row(float* w, float* act, float* out, int n_cols, int row) {
    float acc = 0.0f;
    for (int j = 0; j < n_cols; j++) {
        acc += w[row * n_cols + j] * act[j];
    }
    out[row] = acc;
}
"""

GGML_QUANTS_C = """\
#include "ggml-config.h"

void dequantize_q4(float* q, float* out, int n_blocks) {
    #pragma omp parallel for
    for (int b = 0; b < n_blocks; b++) {
        float d = q[b] * 0.0625f;
        out[b] = d * 15.0f - d * 8.0f;
    }
}
"""

GGML_BACKEND_C = """\
#include "ggml-config.h"

#if GGML_USE_CUDA
int backend_count() { return 2; }
#else
int backend_count() { return 1; }
#endif
"""

GGML_CPU_C = """\
#include "ggml-config.h"

void softmax_row(float* logits, float* probs, int n_vocab) {
    float maxv = logits[0];
    for (int i = 0; i < n_vocab; i++) { maxv = fmax(maxv, logits[i]); }
    float denom = 0.0f;
    for (int i = 0; i < n_vocab; i++) {
        probs[i] = expf(logits[i] - maxv);
        denom += probs[i];
    }
    for (int i = 0; i < n_vocab; i++) { probs[i] = probs[i] / denom; }
}
"""

GGML_CUDA_C = """\
#include "ggml-config.h"

#if GGML_USE_CUDA
void cuda_matmul_q4(float* w, float* act, float* out, int n_gpu_tiles) {
    for (int t = 0; t < n_gpu_tiles; t++) {
        out[t] = w[t] * act[t] * 0.0625f;
    }
}
#endif
"""

GGML_SYCL_C = """\
#include "ggml-config.h"

#if GGML_USE_SYCL
void sycl_matmul_q4(float* w, float* act, float* out, int n_gpu_tiles) {
    for (int t = 0; t < n_gpu_tiles; t++) {
        out[t] = w[t] * act[t] * 0.0625f;
    }
}
#endif
"""

LLAMA_C = """\
#include "ggml-config.h"

int decode_token(int token, int n_layers) {
    int work = 0;
    for (int l = 0; l < n_layers; l++) { work += l + token; }
    return work;
}
"""

LLAMA_SAMPLING_C = """\
#include "ggml-config.h"

int sample_greedy(float* probs, int n_vocab) {
    int best = 0;
    for (int i = 0; i < n_vocab; i++) {
        if (probs[i] > probs[best]) { best = i; }
    }
    return best;
}
"""

LLAMA_VOCAB_C = """\
#include "ggml-config.h"

int tokenize_bytes(int n_bytes) {
    int tokens = 0;
    for (int i = 0; i < n_bytes; i += 4) { tokens += 1; }
    return tokens;
}
"""

LLAMA_BENCH_C = """\
#include "ggml-config.h"

int bench_iterations(int pp, int tg) { return pp + tg; }
"""


def llamacpp_tree() -> SourceTree:
    return SourceTree({
        "CMakeLists.txt": LLAMA_CMAKE,
        "ggml.cmake": GGML_CMAKE,
        "src/ggml-config.h.in": GGML_CONFIG_H_IN,
        "src/ggml.c": GGML_C,
        "src/ggml-quants.c": GGML_QUANTS_C,
        "src/ggml-backend.c": GGML_BACKEND_C,
        "src/ggml-cpu.c": GGML_CPU_C,
        "src/ggml-cuda.c": GGML_CUDA_C,
        "src/ggml-sycl.c": GGML_SYCL_C,
        "src/llama.c": LLAMA_C,
        "src/llama-sampling.c": LLAMA_SAMPLING_C,
        "src/llama-vocab.c": LLAMA_VOCAB_C,
        "src/llama-bench.c": LLAMA_BENCH_C,
    })


def llamacpp_model() -> AppModel:
    """llama.cpp with the paper's benchmark: pp512 + tg128, 13B 4-bit."""
    d_model = 5120.0       # LLama-2-13B hidden size
    n_layers = 40.0
    return AppModel(
        name="llama.cpp",
        tree=llamacpp_tree(),
        sweeps={
            "GGML_CUDA": ["OFF", "ON"],
            "GGML_AVX512": ["OFF", "ON"],
            "GGML_OPENMP": ["OFF", "ON"],
        },
        workloads={
            "pp512": Workload(
                name="pp512",
                bindings=_llama_bindings(d_model, tokens=512.0),
                steps=1, io_seconds=0.2,
                description="prompt processing, 512 tokens"),
            "tg128": Workload(
                name="tg128",
                bindings=_llama_bindings(d_model, tokens=128.0),
                steps=1, io_seconds=0.2,
                description="text generation, 128 tokens"),
        },
        hot_functions={"vec_dot_q4": 1.0, "dequantize_q4": 1.0, "softmax_row": 1.0},
        gpu_functions=frozenset({"vec_dot_q4", "dequantize_q4"}),
        gpu_work_binding="n_vec",
        gpu_unit_cost=0.0545,
        scale=1.0,
    )


def _llama_bindings(d_model: float, tokens: float) -> dict[str, float]:
    # Work units per token: one unit per synthetic vec_dot lane-element; the
    # 4.02e8 factor maps 13B-parameter matmul MACs onto the synthetic kernel
    # so the Ault23 CPU baseline lands at the paper's 26.9 s (EXPERIMENTS.md).
    n_vec = 4.02e8 * tokens
    return {
        "n_vec": n_vec,
        "n_cols": d_model,
        "n_blocks": n_vec / 32.0,
        "n_vocab": 32_000.0,
        "n_layers": 40.0,
        "n_gpu_tiles": n_vec,
        "n_bytes": 2048.0,
        "while_iters": 4.0,
        "row": 0.0,
        "token": 1.0,
        "pp": 512.0,
        "tg": 128.0,
    }
