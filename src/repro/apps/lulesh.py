"""Synthetic LULESH: the paper's worked pipeline example (Sec. 4.3).

LULESH has exactly two specialization points (MPI and OpenMP -> four build
configurations) and five source files, so the pipeline numbers are small
enough to verify by hand: 4 x 5 = 20 translation units at the configuration
stage; preprocessing alone does not reduce them (every file includes
``lulesh.h``, whose content depends on the MPI define, and the OpenMP flag
is attached to all files); the OpenMP AST analysis then brings them to 14
IR files — 2 files carry OpenMP pragmas (x2 for the flag) and every file's
text has 2 MPI variants: 2*4 + 3*2 = 14.
"""

from __future__ import annotations

from repro.apps.base import AppModel, Workload
from repro.buildsys import SourceTree

LULESH_H = """\
#include "config.h"

#if USE_MPI
#define COMM_RANKS 8
#else
#define COMM_RANKS 1
#endif
"""

CONFIG_H_IN = """\
#cmakedefine01 USE_MPI
#cmakedefine01 USE_OPENMP
"""

LULESH_C = """\
#include "lulesh.h"

double calc_energy(double* e, double* delv, double* p, int n_elem) {
    double etot = 0.0;
    #pragma omp parallel for reduction(+: etot)
    for (int i = 0; i < n_elem; i++) {
        e[i] = e[i] - 0.5 * delv[i] * p[i];
        etot += e[i];
    }
    return etot;
}

int domain_ranks() { return COMM_RANKS; }
"""

KERNELS_C = """\
#include "lulesh.h"

void calc_force(double* fx, double* sigxx, double* b, int n_elem) {
    #pragma omp parallel for
    for (int i = 0; i < n_elem; i++) {
        fx[i] = sigxx[i] * b[i] * -1.0;
    }
}

void calc_position(double* x, double* xd, int n_node, double dt) {
    #pragma omp parallel for
    for (int i = 0; i < n_node; i++) {
        x[i] = x[i] + xd[i] * dt;
    }
}

int kernel_ranks() { return COMM_RANKS; }
"""

COMM_C = """\
#include "lulesh.h"

#if USE_MPI
int comm_sbn(double* buffer, int n_ghost) {
    for (int i = 0; i < n_ghost; i++) { buffer[i] = buffer[i] * 1.0; }
    return COMM_RANKS;
}
#else
int comm_sbn(double* buffer, int n_ghost) { return 1; }
#endif
"""

IO_C = """\
#include "lulesh.h"

int write_plot(double* field, int n_elem) {
    double checksum = 0.0;
    for (int i = 0; i < n_elem; i++) { checksum += field[i]; }
    return COMM_RANKS;
}
"""

UTIL_C = """\
#include "lulesh.h"

double hourglass_coef(double* volo, int n_elem) {
    double c = 0.0;
    for (int i = 0; i < n_elem; i++) { c += volo[i] * 0.03; }
    return c / COMM_RANKS;
}
"""

CMAKELISTS = """\
cmake_minimum_required(VERSION 3.12)
project(LULESH)

option(WITH_MPI "Build LULESH with MPI" OFF)
option(WITH_OPENMP "Build LULESH with OpenMP" ON)

set(USE_MPI ${WITH_MPI})
set(USE_OPENMP ${WITH_OPENMP})

if(WITH_MPI)
  find_package(MPI REQUIRED)
endif()
if(WITH_OPENMP)
  add_compile_options(-fopenmp)
endif()

configure_file(src/config.h.in include/config.h)
include_directories(src)

add_executable(lulesh
  src/lulesh.c
  src/kernels.c
  src/comm.c
  src/io.c
  src/util.c)
"""


def lulesh_tree() -> SourceTree:
    return SourceTree({
        "CMakeLists.txt": CMAKELISTS,
        "src/config.h.in": CONFIG_H_IN,
        "src/lulesh.h": LULESH_H,
        "src/lulesh.c": LULESH_C,
        "src/kernels.c": KERNELS_C,
        "src/comm.c": COMM_C,
        "src/io.c": IO_C,
        "src/util.c": UTIL_C,
    })


def lulesh_model() -> AppModel:
    return AppModel(
        name="lulesh",
        tree=lulesh_tree(),
        sweeps={"WITH_MPI": ["OFF", "ON"], "WITH_OPENMP": ["OFF", "ON"]},
        workloads={
            "s50": Workload(
                name="s50",
                bindings=_bindings(50),
                steps=500,
                description="LULESH -s 50 analog (125k elements)"),
        },
        hot_functions={
            "calc_energy": 1.0, "calc_force": 1.0, "calc_position": 1.0,
            "hourglass_coef": 1.0,
        },
        scale=1.0,
    )


def _bindings(s: int) -> dict[str, float]:
    n_elem = float(s ** 3)
    return {
        "n_elem": n_elem,
        "n_node": float((s + 1) ** 3),
        "n_ghost": float(6 * s * s),
        "while_iters": 4.0,
        "dt": 1.0,
    }


def lulesh_configs() -> list[dict[str, str]]:
    """The four LULESH build configurations of Sec. 4.3."""
    return [{"WITH_MPI": mpi, "WITH_OPENMP": omp}
            for mpi in ("OFF", "ON") for omp in ("OFF", "ON")]
