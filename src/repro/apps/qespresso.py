"""Compact Quantum ESPRESSO model.

Used as an in-context-learning example source for the LLM discovery
experiment (the paper's prompt includes GROMACS, Quantum Espresso and Kokkos
examples) and as a Table 1 subject. Electronic-structure codes are
Fortran-heavy; what matters here is the *build interface*: ``QE_ENABLE_*``
flags, GPU via CUDA/OpenACC, and the dense linear-algebra dependency chain.
"""

from __future__ import annotations

from repro.apps.base import AppModel, Workload
from repro.buildsys import SourceTree

QE_CMAKE = """\
cmake_minimum_required(VERSION 3.20)
project(QuantumESPRESSO)

option(QE_ENABLE_MPI "Enable MPI parallelization" ON)
option(QE_ENABLE_OPENMP "Enable OpenMP threading" OFF)
option(QE_ENABLE_CUDA "Enable CUDA GPU acceleration" OFF)
option(QE_ENABLE_OPENACC "Enable OpenACC offload" OFF)
option(QE_ENABLE_SCALAPACK "Enable ScaLAPACK" OFF)
option(QE_ENABLE_ELPA "Enable the ELPA eigensolver" OFF)
qe_option_multichoice(QE_FFTW_VENDOR "FFT vendor" AUTO Internal FFTW3 MKL)
qe_option_multichoice(QE_LAPACK_VENDOR "LAPACK vendor" AUTO Internal MKL OpenBLAS)

if(QE_ENABLE_MPI)
  find_package(MPI 3.0 REQUIRED)
endif()
if(QE_ENABLE_OPENMP)
  add_compile_options(-fopenmp)
endif()
if(QE_ENABLE_CUDA)
  find_package(CUDA 11.8 REQUIRED)
endif()
if(QE_ENABLE_SCALAPACK)
  find_package(ScaLAPACK REQUIRED)
endif()
if(QE_ENABLE_ELPA)
  find_package(ELPA REQUIRED)
endif()
if(QE_FFTW_VENDOR STREQUAL "FFTW3")
  find_package(FFTW 3.3 REQUIRED)
elseif(QE_FFTW_VENDOR STREQUAL "MKL")
  find_package(MKL REQUIRED)
endif()

configure_file(src/qe_config.h.in include/qe_config.h)
include_directories(src)

add_library(qe_fft src/fft_scalar.c)
add_library(qe_scf src/scf.c)
add_executable(pw src/pwscf.c)
target_link_libraries(pw qe_scf qe_fft)
"""

QE_CONFIG_H_IN = """\
#cmakedefine01 QE_ENABLE_MPI
#cmakedefine01 QE_ENABLE_OPENMP
#cmakedefine01 QE_ENABLE_CUDA
"""

FFT_SCALAR_C = """\
#include "qe_config.h"

void fft_phase(float* data, float* out, int n_fft) {
    #pragma omp parallel for
    for (int i = 0; i < n_fft; i++) {
        out[i] = data[i] * 0.5f + data[i] * data[i] * 0.1f;
    }
}
"""

SCF_C = """\
#include "qe_config.h"

double scf_residual(double* rho_in, double* rho_out, int n_grid) {
    double res = 0.0;
    #pragma omp parallel for reduction(+: res)
    for (int i = 0; i < n_grid; i++) {
        double d = rho_out[i] - rho_in[i];
        res += d * d;
    }
    return res;
}
"""

PWSCF_C = """\
#include "qe_config.h"

#if QE_ENABLE_MPI
int image_parallelism(int n_images) { return n_images; }
#else
int image_parallelism(int n_images) { return 1; }
#endif
"""


def qespresso_tree() -> SourceTree:
    return SourceTree({
        "CMakeLists.txt": QE_CMAKE,
        "src/qe_config.h.in": QE_CONFIG_H_IN,
        "src/fft_scalar.c": FFT_SCALAR_C,
        "src/scf.c": SCF_C,
        "src/pwscf.c": PWSCF_C,
    })


def qespresso_model() -> AppModel:
    return AppModel(
        name="quantum-espresso",
        tree=qespresso_tree(),
        sweeps={"QE_ENABLE_MPI": ["OFF", "ON"], "QE_ENABLE_OPENMP": ["OFF", "ON"]},
        workloads={
            "ausurf": Workload(
                name="ausurf",
                bindings={"n_fft": 2_000_000.0, "n_grid": 1_500_000.0,
                          "n_images": 1.0, "while_iters": 4.0},
                steps=20, io_seconds=3.0,
                description="AUSURF112-scale SCF analog"),
        },
        hot_functions={"fft_phase": 1.0, "scf_residual": 1.0},
        scale=1.0,
    )
