"""The build-system substrate: a mini-CMake model of HPC project configuration.

The configuration stage is where specialization points bind (paper Sec. 3.1):
source modules are enabled or disabled, compile definitions are added, and
dependency paths are resolved. This package provides:

* :mod:`repro.buildsys.parser` — CMake-syntax parser (also the input format
  for the LLM specialization-discovery experiment);
* :mod:`repro.buildsys.interpreter` — configuration evaluator producing
  targets, generated config headers and the compile-commands database;
* :mod:`repro.buildsys.model` — source trees, targets, compile commands.
"""

from repro.buildsys.interpreter import (
    BuildEnvironment,
    ConfigureError,
    OptionSpec,
    configure,
    configure_cached,
    declared_options,
    is_truthy,
)
from repro.buildsys.model import (
    BuildConfiguration,
    CompileCommand,
    SourceTree,
    Target,
    configuration_from_payload,
    configuration_to_payload,
)
from repro.buildsys.parser import BuildScriptError, Command, parse_script

__all__ = [
    "BuildEnvironment",
    "ConfigureError",
    "OptionSpec",
    "configure",
    "declared_options",
    "is_truthy",
    "BuildConfiguration",
    "CompileCommand",
    "SourceTree",
    "Target",
    "configuration_from_payload",
    "configuration_to_payload",
    "configure_cached",
    "BuildScriptError",
    "Command",
    "parse_script",
]


def make_include_resolver(tree: SourceTree, config: BuildConfiguration):
    """Build a preprocessor include resolver for a configuration.

    Resolution order mirrors a compiler's ``-I`` search: generated files in
    the build directory first (configuration headers), then the source tree
    (path as written, then under ``include/`` and ``src/``).
    """

    def resolver(name: str, system: bool) -> str | None:
        for gen_path, content in config.generated_files.items():
            if gen_path == name or gen_path.endswith("/" + name):
                return content
        if tree.exists(name):
            return tree.read(name)
        for prefix in ("include/", "src/"):
            if tree.exists(prefix + name):
                return tree.read(prefix + name)
        return None

    return resolver
