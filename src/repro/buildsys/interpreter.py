"""Interpreter for the mini-CMake language: the configuration stage.

Evaluating a build script with a set of cache options yields a
:class:`~repro.buildsys.model.BuildConfiguration`: resolved targets, generated
configuration headers, and the compile-commands database. The interpreter
also records every declared option (:class:`OptionSpec`) — these records are
the *ground truth* against which the simulated LLM discovery is scored in the
Table 4 experiment.

Supported commands cover what HPC build systems use to encode specialization
points: ``option``, multichoice options (any ``*_option_multichoice``
command, mirroring GROMACS' ``gmx_option_multichoice``), ``set``, ``list``,
``if``/``elseif``/``else``/``endif``, ``foreach``, ``find_package``,
``configure_file``, target commands, and diagnostics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.buildsys.model import (
    BuildConfiguration,
    CompileCommand,
    SourceTree,
    Target,
    configuration_from_payload,
    configuration_to_payload,
)
from repro.buildsys.parser import BuildScriptError, Command, parse_script

_FALSE_VALUES = {"off", "false", "no", "0", "", "notfound", "ignore", "n"}


def is_truthy(value: str) -> bool:
    v = value.lower()
    if v in _FALSE_VALUES or v.endswith("-notfound"):
        return False
    return True


@dataclass(frozen=True)
class OptionSpec:
    """A declared specialization point, as the build system defines it."""

    name: str
    kind: str  # "bool" | "multichoice"
    default: str
    doc: str = ""
    choices: tuple[str, ...] = ()

    @property
    def build_flag(self) -> str:
        return f"-D{self.name}"


@dataclass
class BuildEnvironment:
    """What ``find_package`` can see: the packages installed on the system.

    ``packages`` maps canonical package name to version string. The
    deployment pipeline constructs this from the discovered system features
    (:mod:`repro.discovery.system`).
    """

    packages: dict[str, str] = field(default_factory=dict)
    compiler: str = "clang"
    compiler_version: str = "19.0"

    def find(self, name: str) -> str | None:
        # CMake package lookup is case-sensitive in principle, case-chaotic in
        # practice; we match case-insensitively like most find modules do.
        for pkg, version in self.packages.items():
            if pkg.lower() == name.lower():
                return version
        return None


class ConfigureError(RuntimeError):
    """Raised for missing REQUIRED packages, bad options, FATAL_ERROR, etc."""


class _Interpreter:
    def __init__(self, tree: SourceTree, cache: dict[str, str],
                 env: BuildEnvironment, build_dir: str):
        self.tree = tree
        self.cache = dict(cache)
        self.env = env
        self.build_dir = build_dir.rstrip("/")
        self.variables: dict[str, str] = {
            "CMAKE_BINARY_DIR": self.build_dir,
            "CMAKE_SOURCE_DIR": "",
            "CMAKE_C_COMPILER_ID": env.compiler,
            "CMAKE_SYSTEM_PROCESSOR": "x86_64",
        }
        self.options: dict[str, OptionSpec] = {}
        self.targets: dict[str, Target] = {}
        self.global_definitions: list[str] = []
        self.global_options: list[str] = []
        self.global_includes: list[str] = []
        self.generated: dict[str, str] = {}
        self.dependencies: list[str] = []
        self.messages: list[str] = []
        self.project_name = "project"

    # -- variable handling -----------------------------------------------------

    def _get(self, name: str) -> str:
        if name in self.cache:
            return self.cache[name]
        return self.variables.get(name, "")

    def expand(self, text: str) -> str:
        """Expand ``${VAR}`` references (innermost-first, bounded)."""
        for _ in range(16):
            m = re.search(r"\$\{([A-Za-z0-9_.]+)\}", text)
            if not m:
                return text
            text = text[:m.start()] + self._get(m.group(1)) + text[m.end():]
        return text

    def _expand_args(self, cmd: Command) -> list[str]:
        out: list[str] = []
        for arg, quoted in cmd.arg_pairs():
            expanded = self.expand(arg)
            if quoted:
                out.append(expanded)
            else:
                # Unquoted expansion splits on semicolons (CMake list semantics).
                out.extend(p for p in expanded.split(";") if p != "")
        return out

    # -- main loop ------------------------------------------------------------------

    def run(self, commands: list[Command], filename: str) -> None:
        self._exec_block(commands, 0, len(commands), filename)

    def _exec_block(self, commands: list[Command], start: int, end: int,
                    filename: str) -> None:
        i = start
        while i < end:
            cmd = commands[i]
            if cmd.name == "if":
                i = self._exec_if(commands, i, end, filename)
            elif cmd.name == "foreach":
                i = self._exec_foreach(commands, i, end, filename)
            elif cmd.name in ("else", "elseif", "endif", "endforeach"):
                raise BuildScriptError(f"{filename}:{cmd.line}: stray {cmd.name}()")
            else:
                self._dispatch(cmd, filename)
                i += 1

    def _find_block_end(self, commands: list[Command], start: int, end: int,
                        open_name: str, close_name: str, filename: str) -> int:
        depth = 0
        for i in range(start, end):
            if commands[i].name == open_name:
                depth += 1
            elif commands[i].name == close_name:
                depth -= 1
                if depth == 0:
                    return i
        raise BuildScriptError(
            f"{filename}:{commands[start].line}: missing {close_name}() for {open_name}()")

    def _exec_if(self, commands: list[Command], start: int, end: int,
                 filename: str) -> int:
        endif = self._find_block_end(commands, start, end, "if", "endif", filename)
        # Collect branch boundaries at depth 1.
        branches: list[tuple[Command, int]] = [(commands[start], start)]
        depth = 0
        for i in range(start, endif):
            name = commands[i].name
            if name in ("if", "foreach"):
                depth += 1
            elif name in ("endif", "endforeach"):
                depth -= 1
            elif name in ("elseif", "else") and depth == 1:
                branches.append((commands[i], i))
        branches.append((commands[endif], endif))
        for (branch_cmd, branch_start), (_, branch_end) in zip(branches, branches[1:]):
            if branch_cmd.name == "else":
                taken = True
            else:
                taken = self._eval_condition(self._expand_args_for_condition(branch_cmd),
                                             filename, branch_cmd.line)
            if taken:
                self._exec_block(commands, branch_start + 1, branch_end, filename)
                break
        return endif + 1

    def _expand_args_for_condition(self, cmd: Command) -> list[tuple[str, bool]]:
        # In conditions, bare words may be variable references; keep both the
        # raw and expanded forms so the evaluator can do CMake's auto-deref.
        return [(arg, quoted) for arg, quoted in cmd.arg_pairs()]

    def _exec_foreach(self, commands: list[Command], start: int, end: int,
                      filename: str) -> int:
        endfe = self._find_block_end(commands, start, end, "foreach", "endforeach", filename)
        args = self._expand_args(commands[start])
        if not args:
            raise BuildScriptError(f"{filename}:{commands[start].line}: foreach needs a variable")
        var, items = args[0], args[1:]
        saved = self.variables.get(var)
        for item in items:
            self.variables[var] = item
            self._exec_block(commands, start + 1, endfe, filename)
        if saved is None:
            self.variables.pop(var, None)
        else:
            self.variables[var] = saved
        return endfe + 1

    # -- condition evaluation -----------------------------------------------------------

    def _eval_condition(self, parts: list[tuple[str, bool]], filename: str,
                        line: int) -> bool:
        tokens = [(self.expand(raw), raw, quoted) for raw, quoted in parts]
        return _ConditionParser(tokens, self, filename, line).parse()

    def _deref(self, expanded: str, raw: str, quoted: bool) -> str:
        """CMake auto-dereference: a bare word naming a variable reads it."""
        if quoted or "${" in raw:
            return expanded
        if expanded in self.cache or expanded in self.variables:
            return self._get(expanded)
        return expanded

    # -- command dispatch -------------------------------------------------------------------

    def _dispatch(self, cmd: Command, filename: str) -> None:
        handler = getattr(self, f"_cmd_{cmd.name}", None)
        if handler is not None:
            handler(cmd, filename)
            return
        if cmd.name.endswith("option_multichoice"):
            self._multichoice(cmd, filename)
            return
        if cmd.name.endswith("dependent_option"):
            self._dependent_option(cmd, filename)
            return
        # Unknown commands are tolerated (real CMake projects call dozens of
        # helper macros the pipeline never needs to understand).
        self.messages.append(f"ignored: {cmd.name}")

    def _cmd_cmake_minimum_required(self, cmd: Command, filename: str) -> None:
        pass

    def _cmd_project(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if args:
            self.project_name = args[0]
            self.variables["PROJECT_NAME"] = args[0]

    def _cmd_option(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if not args:
            raise BuildScriptError(f"{filename}:{cmd.line}: option() needs a name")
        name = args[0]
        doc = args[1] if len(args) > 1 else ""
        default = args[2] if len(args) > 2 else "OFF"
        self.options[name] = OptionSpec(name, "bool", default, doc)
        if name not in self.cache:
            self.variables.setdefault(name, default)

    def _multichoice(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if len(args) < 3:
            raise BuildScriptError(
                f"{filename}:{cmd.line}: {cmd.name}() needs NAME DOC DEFAULT CHOICES...")
        name, doc, default = args[0], args[1], args[2]
        choices = tuple(args[2:])  # default is also a valid choice
        self.options[name] = OptionSpec(name, "multichoice", default, doc, choices)
        value = self.cache.get(name, self.variables.get(name, default))
        if value not in choices and value != default:
            raise ConfigureError(
                f"{name}={value!r} is not one of the allowed choices {list(choices)}")
        self.variables.setdefault(name, default)

    def _dependent_option(self, cmd: Command, filename: str) -> None:
        # <prefix>_dependent_option(NAME DOC DEFAULT DEPENDS_ON)
        args = self._expand_args(cmd)
        if len(args) < 4:
            raise BuildScriptError(f"{filename}:{cmd.line}: dependent option needs 4 args")
        name, doc, default, depends = args[0], args[1], args[2], args[3]
        self.options[name] = OptionSpec(name, "bool", default, f"{doc} (requires {depends})")
        enabled = is_truthy(self._get(depends))
        if name not in self.cache:
            self.variables.setdefault(name, default if enabled else "OFF")
        elif is_truthy(self.cache[name]) and not enabled:
            raise ConfigureError(f"option {name} requires {depends}")

    def _cmd_set(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if not args:
            raise BuildScriptError(f"{filename}:{cmd.line}: set() needs a variable")
        name = args[0]
        values = [a for a in args[1:] if a not in ("CACHE", "STRING", "BOOL", "FORCE", "INTERNAL", "PARENT_SCOPE")]
        if not values:
            self.variables.pop(name, None)
        else:
            self.variables[name] = ";".join(values)

    def _cmd_list(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if len(args) < 2:
            raise BuildScriptError(f"{filename}:{cmd.line}: malformed list()")
        action, var = args[0].upper(), args[1]
        current = [v for v in self._get(var).split(";") if v]
        if action == "APPEND":
            current.extend(args[2:])
        elif action == "REMOVE_ITEM":
            current = [v for v in current if v not in args[2:]]
        else:
            raise BuildScriptError(f"{filename}:{cmd.line}: unsupported list({action})")
        self.variables[var] = ";".join(current)

    def _cmd_math(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if len(args) != 3 or args[0].upper() != "EXPR":
            raise BuildScriptError(f"{filename}:{cmd.line}: math(EXPR var expr)")
        from repro.util.exprs import eval_expr
        self.variables[args[1]] = str(int(eval_expr(args[2], {})))

    def _cmd_message(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        level = "STATUS"
        if args and args[0] in ("STATUS", "WARNING", "FATAL_ERROR", "AUTHOR_WARNING", "NOTICE"):
            level = args[0]
            args = args[1:]
        text = " ".join(args)
        self.messages.append(f"{level}: {text}")
        if level == "FATAL_ERROR":
            raise ConfigureError(text)

    def _cmd_include(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if not args:
            return
        path = args[0]
        if not self.tree.exists(path):
            if "OPTIONAL" in args:
                return
            raise ConfigureError(f"include({path}): file not found")
        self.run(parse_script(self.tree.read(path), path), path)

    def _cmd_find_package(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if not args:
            raise BuildScriptError(f"{filename}:{cmd.line}: find_package() needs a name")
        name = args[0]
        required = "REQUIRED" in args
        min_version = None
        if len(args) > 1 and re.fullmatch(r"[\d.]+", args[1]):
            min_version = args[1]
        version = self.env.find(name)
        if version is not None and min_version is not None \
                and _version_tuple(version) < _version_tuple(min_version):
            version = None
        if version is None:
            self.variables[f"{name}_FOUND"] = "FALSE"
            self.variables[f"{name}_VERSION"] = ""
            if required:
                raise ConfigureError(
                    f"find_package({name}{' ' + min_version if min_version else ''} REQUIRED)"
                    f" failed: package not available on this system")
            return
        self.variables[f"{name}_FOUND"] = "TRUE"
        self.variables[f"{name}_VERSION"] = version
        self.dependencies.append(name)

    def _cmd_add_definitions(self, cmd: Command, filename: str) -> None:
        self.global_definitions.extend(self._expand_args(cmd))

    def _cmd_add_compile_definitions(self, cmd: Command, filename: str) -> None:
        self.global_definitions.extend(
            a if a.startswith("-D") else f"-D{a}" for a in self._expand_args(cmd))

    def _cmd_add_compile_options(self, cmd: Command, filename: str) -> None:
        self.global_options.extend(self._expand_args(cmd))

    def _cmd_include_directories(self, cmd: Command, filename: str) -> None:
        self.global_includes.extend(self._expand_args(cmd))

    def _cmd_add_library(self, cmd: Command, filename: str) -> None:
        self._add_target(cmd, "library", filename)

    def _cmd_add_executable(self, cmd: Command, filename: str) -> None:
        self._add_target(cmd, "executable", filename)

    def _add_target(self, cmd: Command, kind: str, filename: str) -> None:
        args = self._expand_args(cmd)
        if not args:
            raise BuildScriptError(f"{filename}:{cmd.line}: target needs a name")
        name = args[0]
        sources = [a for a in args[1:] if a not in ("STATIC", "SHARED", "OBJECT", "INTERFACE")]
        if name in self.targets:
            raise ConfigureError(f"duplicate target {name!r}")
        self.targets[name] = Target(name, kind, sources)

    def _target_cmd(self, cmd: Command, filename: str, attr: str,
                    transform=lambda a: a) -> None:
        args = self._expand_args(cmd)
        if not args:
            raise BuildScriptError(f"{filename}:{cmd.line}: {cmd.name} needs a target")
        name = args[0]
        if name not in self.targets:
            raise ConfigureError(f"{cmd.name}: unknown target {name!r}")
        values = [transform(a) for a in args[1:]
                  if a not in ("PRIVATE", "PUBLIC", "INTERFACE")]
        getattr(self.targets[name], attr).extend(values)

    def _cmd_target_compile_definitions(self, cmd: Command, filename: str) -> None:
        self._target_cmd(cmd, filename, "compile_definitions",
                         lambda a: a if a.startswith("-D") else f"-D{a}")

    def _cmd_target_compile_options(self, cmd: Command, filename: str) -> None:
        self._target_cmd(cmd, filename, "compile_options")

    def _cmd_target_include_directories(self, cmd: Command, filename: str) -> None:
        self._target_cmd(cmd, filename, "include_dirs")

    def _cmd_target_link_libraries(self, cmd: Command, filename: str) -> None:
        self._target_cmd(cmd, filename, "link_libraries")

    def _cmd_target_sources(self, cmd: Command, filename: str) -> None:
        self._target_cmd(cmd, filename, "sources")

    def _cmd_configure_file(self, cmd: Command, filename: str) -> None:
        args = self._expand_args(cmd)
        if len(args) < 2:
            raise BuildScriptError(f"{filename}:{cmd.line}: configure_file(in out)")
        template = self.tree.read(args[0])
        self.generated[args[1]] = self._substitute_template(template)

    def _substitute_template(self, template: str) -> str:
        out_lines = []
        for line in template.split("\n"):
            m = re.match(r"\s*#\s*cmakedefine01\s+(\w+)", line)
            if m:
                value = "1" if is_truthy(self._get(m.group(1))) else "0"
                out_lines.append(f"#define {m.group(1)} {value}")
                continue
            m = re.match(r"\s*#\s*cmakedefine\s+(\w+)(.*)", line)
            if m:
                name, rest = m.group(1), m.group(2).strip()
                if is_truthy(self._get(name)):
                    value = self.expand(rest.replace(f"@{name}@", self._get(name))) if rest else ""
                    value = re.sub(r"@(\w+)@", lambda mm: self._get(mm.group(1)), value)
                    out_lines.append(f"#define {name}{(' ' + value) if value else ''}")
                else:
                    out_lines.append(f"/* #undef {name} */")
                continue
            out_lines.append(re.sub(r"@(\w+)@", lambda mm: self._get(mm.group(1)), line))
        return "\n".join(out_lines)

    # -- compile-commands generation ---------------------------------------------------------------

    def emit_configuration(self, name: str) -> BuildConfiguration:
        commands: list[CompileCommand] = []
        for target in self.targets.values():
            flags: list[str] = []
            flags.extend(self.global_options)
            flags.extend(self.global_definitions)
            flags.extend(target.compile_options)
            flags.extend(target.compile_definitions)
            # Build-directory include first (generated config headers), then
            # project include dirs. The per-configuration build path is what
            # makes raw flag comparison fail across configurations (Sec 6.4).
            flags.append(f"-I{self.build_dir}/include")
            for inc in self.global_includes + target.include_dirs:
                flags.append(f"-I{inc}")
            for source in target.sources:
                commands.append(CompileCommand(
                    target=target.name,
                    source=source,
                    flags=tuple(flags),
                    output=f"{self.build_dir}/CMakeFiles/{target.name}.dir/{source}.o",
                    directory=self.build_dir,
                ))
        return BuildConfiguration(
            name=name,
            options=dict(self.cache),
            targets=dict(self.targets),
            compile_commands=commands,
            generated_files=dict(self.generated),
            build_dir=self.build_dir,
            dependencies=list(self.dependencies),
            messages=list(self.messages),
        )


class _ConditionParser:
    """Evaluates if() conditions: OR < AND < NOT < comparisons < truthiness."""

    def __init__(self, tokens: list[tuple[str, str, bool]], interp: _Interpreter,
                 filename: str, line: int):
        self.tokens = tokens
        self.interp = interp
        self.where = f"{filename}:{line}"
        self.pos = 0

    def parse(self) -> bool:
        value = self._or()
        if self.pos != len(self.tokens):
            raise BuildScriptError(f"{self.where}: trailing condition tokens")
        return value

    def _peek_word(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][0]
        return None

    def _or(self) -> bool:
        value = self._and()
        while self._peek_word() == "OR":
            self.pos += 1
            rhs = self._and()
            value = value or rhs
        return value

    def _and(self) -> bool:
        value = self._not()
        while self._peek_word() == "AND":
            self.pos += 1
            rhs = self._not()
            value = value and rhs
        return value

    def _not(self) -> bool:
        if self._peek_word() == "NOT":
            self.pos += 1
            return not self._not()
        return self._primary()

    _BINARY = {
        "STREQUAL": lambda a, b: a == b,
        "MATCHES": lambda a, b: re.search(b, a) is not None,
        "EQUAL": lambda a, b: _as_int(a) == _as_int(b),
        "GREATER": lambda a, b: _as_int(a) > _as_int(b),
        "LESS": lambda a, b: _as_int(a) < _as_int(b),
        "GREATER_EQUAL": lambda a, b: _as_int(a) >= _as_int(b),
        "LESS_EQUAL": lambda a, b: _as_int(a) <= _as_int(b),
        "VERSION_LESS": lambda a, b: _version_tuple(a) < _version_tuple(b),
        "VERSION_GREATER": lambda a, b: _version_tuple(a) > _version_tuple(b),
        "VERSION_GREATER_EQUAL": lambda a, b: _version_tuple(a) >= _version_tuple(b),
        "VERSION_LESS_EQUAL": lambda a, b: _version_tuple(a) <= _version_tuple(b),
        "VERSION_EQUAL": lambda a, b: _version_tuple(a) == _version_tuple(b),
    }

    def _primary(self) -> bool:
        if self.pos >= len(self.tokens):
            raise BuildScriptError(f"{self.where}: empty condition")
        expanded, raw, quoted = self.tokens[self.pos]
        if expanded == "DEFINED":
            self.pos += 1
            if self.pos >= len(self.tokens):
                raise BuildScriptError(f"{self.where}: DEFINED needs a variable")
            name = self.tokens[self.pos][0]
            self.pos += 1
            return name in self.interp.cache or name in self.interp.variables
        self.pos += 1
        if self.pos < len(self.tokens) and self.tokens[self.pos][0] in self._BINARY:
            op = self.tokens[self.pos][0]
            self.pos += 1
            if self.pos >= len(self.tokens):
                raise BuildScriptError(f"{self.where}: {op} needs a right operand")
            rhs_exp, rhs_raw, rhs_quoted = self.tokens[self.pos]
            self.pos += 1
            lhs = self.interp._deref(expanded, raw, quoted)
            rhs = self.interp._deref(rhs_exp, rhs_raw, rhs_quoted)
            return self._BINARY[op](lhs, rhs)
        # Boolean context: CMake treats a bare word as a variable reference;
        # an *undefined* variable is false, not a truthy string.
        if not quoted and "${" not in raw:
            if expanded in self.interp.cache or expanded in self.interp.variables:
                return is_truthy(self.interp._get(expanded))
            return is_truthy(expanded) and expanded.lower() in ("on", "true", "yes", "y") \
                or expanded.isdigit() and int(expanded) != 0
        return is_truthy(expanded)


def _as_int(value: str) -> int:
    try:
        return int(value)
    except ValueError:
        return 0


def _version_tuple(version: str) -> tuple[int, ...]:
    parts = []
    for piece in version.split("."):
        m = re.match(r"\d+", piece)
        parts.append(int(m.group(0)) if m else 0)
    return tuple(parts) or (0,)


def configure(tree: SourceTree, cache: dict[str, str] | None = None,
              env: BuildEnvironment | None = None, name: str = "default",
              build_dir: str | None = None,
              script: str = "CMakeLists.txt") -> BuildConfiguration:
    """Configure a project: evaluate its build script with the given options.

    ``build_dir`` defaults to ``/build/<name>`` so that different
    configurations get different (and therefore flag-visible) build paths,
    which reproduces the paper's observation about per-configuration include
    paths. The paper's pipeline mounts build dirs at a *fixed* path inside the
    build container — pass an explicit ``build_dir`` to model that.
    """
    interp = _Interpreter(tree, cache or {}, env or BuildEnvironment(),
                          build_dir or f"/build/{name}")
    interp.run(parse_script(tree.read(script), script), script)
    return interp.emit_configuration(name)


def configure_cached(tree: SourceTree, options: dict[str, str],
                     env: BuildEnvironment | None = None,
                     name: str = "default", build_dir: str | None = None,
                     script: str = "CMakeLists.txt", cache=None,
                     tree_digest: str | None = None
                     ) -> tuple[BuildConfiguration, bool]:
    """Cache-aware configure: ``(configuration, freshly configured)``.

    The cache key covers the source tree, the option values, the package
    environment, and the build-dir path (per-configuration include paths
    make the path flag-visible). ``cache`` is an
    :class:`~repro.containers.store.ArtifactCache` (duck-typed, like the
    compiler's cached wrappers); entries are payload-only artifacts —
    :func:`~repro.buildsys.model.configuration_from_payload` rebuilds the
    targets and compile-commands database when the hit comes from a
    persistent store another process warmed, so a warm rebuild never runs
    the build-script interpreter at all.
    """
    if cache is None:
        return configure(tree, options, env=env, name=name,
                         build_dir=build_dir, script=script), True
    env = env or BuildEnvironment()
    parts = {
        "tree": tree_digest or tree.fingerprint(),
        "opts": dict(options),
        "env": {"pkgs": dict(env.packages), "cc": env.compiler,
                "ccv": env.compiler_version},
        "name": name, "bd": build_dir, "script": script,
    }
    entry = cache.get("configure", parts)
    if entry is not None:
        cfg = entry.obj
        if cfg is None:
            cfg = configuration_from_payload(entry.payload)
        return cfg, False
    cfg = configure(tree, options, env=env, name=name,
                    build_dir=build_dir, script=script)
    cache.put("configure", parts, configuration_to_payload(cfg), obj=cfg)
    return cfg, True


def declared_options(tree: SourceTree, env: BuildEnvironment | None = None,
                     script: str = "CMakeLists.txt") -> dict[str, OptionSpec]:
    """Extract every option the build script declares (the discovery ground truth).

    Runs the script with defaults; options declared inside non-default
    branches are found by a breadth pass over raw commands as a fallback, so
    the ground truth includes conditionally-declared options too.
    """
    interp = _Interpreter(tree, {}, env or BuildEnvironment(), "/build/discovery")
    commands = parse_script(tree.read(script), script)
    try:
        interp.run(commands, script)
    except ConfigureError:
        pass  # defaults may fail on missing packages; option records survive
    # Fallback sweep for options in branches the default run skipped.
    for cmd in _walk_all_commands(tree, commands, depth=0):
        if cmd.name == "option" and len(cmd.args) >= 1:
            name = cmd.args[0]
            if name not in interp.options and "${" not in name:
                doc = cmd.args[1] if len(cmd.args) > 1 else ""
                default = cmd.args[2] if len(cmd.args) > 2 else "OFF"
                interp.options[name] = OptionSpec(name, "bool", default, doc)
        elif cmd.name.endswith("option_multichoice") and len(cmd.args) >= 3:
            name = cmd.args[0]
            if name not in interp.options and "${" not in name:
                interp.options[name] = OptionSpec(
                    name, "multichoice", cmd.args[2], cmd.args[1], tuple(cmd.args[2:]))
    return dict(interp.options)


def _walk_all_commands(tree: SourceTree, commands: list[Command], depth: int):
    if depth > 8:
        return
    for cmd in commands:
        yield cmd
        if cmd.name == "include" and cmd.args and tree.exists(cmd.args[0]):
            yield from _walk_all_commands(
                tree, parse_script(tree.read(cmd.args[0]), cmd.args[0]), depth + 1)
