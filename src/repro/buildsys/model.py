"""Build-system data model: source trees, targets, compile commands.

The compile-commands database (:class:`CompileCommand` lists) is the central
artifact: the paper's pipeline obtains it from CMake "without analyzing the
internal structure of each build system" (Sec. 4.3) and diffs it across
configurations. We reproduce its essential structure — one entry per
(target, source) pair with the full flag list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.util.hashing import content_digest, stable_hash


class SourceTreeError(KeyError):
    pass


@dataclass
class SourceTree:
    """A virtual project file system: path -> text content.

    Paths are POSIX-style and relative to the project root. The tree also
    serves as the include universe for the compiler's preprocessor.
    """

    files: dict[str, str] = field(default_factory=dict)

    def read(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError:
            raise SourceTreeError(f"no such file in source tree: {path!r}") from None

    def write(self, path: str, content: str) -> None:
        self.files[path] = content
        self.__dict__.pop("_fingerprint", None)

    def exists(self, path: str) -> bool:
        return path in self.files

    def paths(self) -> list[str]:
        return sorted(self.files)

    def subtree(self, prefix: str) -> list[str]:
        prefix = prefix.rstrip("/") + "/"
        return sorted(p for p in self.files if p.startswith(prefix))

    def copy(self) -> "SourceTree":
        return SourceTree(dict(self.files))

    def fingerprint(self) -> str:
        """Content digest over the whole tree — the coarse cache guard: any
        source or header edit invalidates every derived artifact.

        Cached until the next :meth:`write` — hashing a GROMACS-sized tree
        is measurable, and every pipeline stage keys on it. Mutate files
        through :meth:`write` (not ``tree.files[...]``) or the cache goes
        stale.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_hash(sorted(
                (path, content_digest(text))
                for path, text in self.files.items()))
            self.__dict__["_fingerprint"] = cached
        return cached


@dataclass
class Target:
    """A build target (library or executable)."""

    name: str
    kind: str  # "library" | "executable"
    sources: list[str] = field(default_factory=list)
    compile_definitions: list[str] = field(default_factory=list)
    compile_options: list[str] = field(default_factory=list)
    include_dirs: list[str] = field(default_factory=list)
    link_libraries: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class CompileCommand:
    """One entry of the compile-commands database.

    ``flags`` is the complete, ordered flag list exactly as the build system
    would pass it to the compiler — global flags first, then target flags,
    then per-configuration include paths. The IR pipeline's configuration
    stage compares these lists verbatim (before any normalization), which is
    why per-config build-directory includes make 96% of GROMACS commands
    differ across configurations (Sec. 6.4).
    """

    target: str
    source: str
    flags: tuple[str, ...]
    output: str
    directory: str

    def key(self) -> tuple[str, str]:
        """Identity of the compilation *task* (target + source), per Sec 4.3:
        commands are compared per target, not per file, because one source
        can be built into several targets with different flags."""
        return (self.target, self.source)

    def fingerprint(self) -> str:
        """Digest of the full command — the configuration-stage identity."""
        return stable_hash({
            "target": self.target, "source": self.source,
            "flags": list(self.flags), "directory": self.directory,
        })


@dataclass
class BuildConfiguration:
    """The result of configuring a project with one set of option values."""

    name: str
    options: dict[str, str]
    targets: dict[str, Target]
    compile_commands: list[CompileCommand]
    generated_files: dict[str, str]  # build-dir relative path -> content
    build_dir: str
    link_flags: list[str] = field(default_factory=list)
    dependencies: list[str] = field(default_factory=list)  # found packages
    messages: list[str] = field(default_factory=list)

    def command_for(self, target: str, source: str) -> CompileCommand:
        for cmd in self.compile_commands:
            if cmd.target == target and cmd.source == source:
                return cmd
        raise KeyError(f"no compile command for {target}:{source}")

    @property
    def translation_units(self) -> int:
        return len(self.compile_commands)


CONFIGURATION_FORMAT = "xaas-build-configuration-v1"


def configuration_to_payload(cfg: BuildConfiguration) -> str:
    """Serialize a configuration to deterministic JSON text.

    Together with :func:`configuration_from_payload` this makes
    ``configure`` cache entries payload-only artifacts: any process holding
    the blob can rebuild the targets, compile-commands database, and
    generated headers without re-running the build-script interpreter.
    """
    return json.dumps({
        "format": CONFIGURATION_FORMAT,
        "name": cfg.name,
        "options": cfg.options,
        "targets": {name: {
            "kind": t.kind, "sources": t.sources,
            "compile_definitions": t.compile_definitions,
            "compile_options": t.compile_options,
            "include_dirs": t.include_dirs,
            "link_libraries": t.link_libraries,
        } for name, t in sorted(cfg.targets.items())},
        "compile_commands": [
            [c.target, c.source, list(c.flags), c.output, c.directory]
            for c in cfg.compile_commands],
        "generated_files": cfg.generated_files,
        "build_dir": cfg.build_dir,
        "link_flags": cfg.link_flags,
        "dependencies": cfg.dependencies,
        "messages": cfg.messages,
    }, sort_keys=True)


def configuration_from_payload(payload: str) -> BuildConfiguration:
    """Inverse of :func:`configuration_to_payload`."""
    blob = json.loads(payload)
    if blob.get("format") != CONFIGURATION_FORMAT:
        raise ValueError(f"not a serialized configuration: "
                         f"{blob.get('format')!r}")
    return BuildConfiguration(
        name=blob["name"],
        options=dict(blob["options"]),
        targets={name: Target(name=name, kind=t["kind"],
                              sources=list(t["sources"]),
                              compile_definitions=list(t["compile_definitions"]),
                              compile_options=list(t["compile_options"]),
                              include_dirs=list(t["include_dirs"]),
                              link_libraries=list(t["link_libraries"]))
                 for name, t in blob["targets"].items()},
        compile_commands=[CompileCommand(target, source, tuple(flags),
                                         output, directory)
                          for target, source, flags, output, directory
                          in blob["compile_commands"]],
        generated_files=dict(blob["generated_files"]),
        build_dir=blob["build_dir"],
        link_flags=list(blob["link_flags"]),
        dependencies=list(blob["dependencies"]),
        messages=list(blob["messages"]),
    )
