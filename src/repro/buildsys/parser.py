"""Parser for the mini-CMake build-script language.

The XaaS pipeline never interprets build systems semantically — it observes
their *output* (the compile-commands database). But the reproduction still
needs real build scripts for two reasons: the LLM-discovery experiment
(Table 4) parses them, and the configuration stage must actually evaluate
option-dependent source lists and flags to produce realistic per-configuration
compile commands.

The syntax is CMake's: ``command(arg "quoted arg" ${VAR})``, ``#`` comments,
commands possibly spanning multiple lines. The parser produces a flat command
list; block structure (``if``/``elseif``/``else``/``endif``,
``foreach``/``endforeach``, ``function``/``endfunction``) is resolved by the
interpreter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class BuildScriptError(ValueError):
    pass


@dataclass(frozen=True)
class Command:
    """One build-script command invocation."""

    name: str
    args: tuple[str, ...]
    line: int
    # Marks arguments that were quoted in the source: quoting suppresses
    # list-splitting semantics in CMake and we honour that in the interpreter.
    quoted: tuple[bool, ...] = ()

    def arg_pairs(self) -> list[tuple[str, bool]]:
        quoted = self.quoted or tuple(False for _ in self.args)
        return list(zip(self.args, quoted))


_COMMAND_START = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(")


def parse_script(text: str, filename: str = "<script>") -> list[Command]:
    """Parse a build script into a command list."""
    commands: list[Command] = []
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        line = _strip_comment(lines[i])
        if not line.strip():
            i += 1
            continue
        m = _COMMAND_START.match(line)
        if not m:
            raise BuildScriptError(f"{filename}:{i + 1}: expected a command, got {line.strip()!r}")
        name = m.group(1).lower()
        # Accumulate text until the parenthesis balance closes.
        buffer = line[m.end() - 1:]
        start_line = i + 1
        while _paren_balance(buffer) > 0:
            i += 1
            if i >= len(lines):
                raise BuildScriptError(f"{filename}:{start_line}: unterminated command {name!r}")
            buffer += "\n" + _strip_comment(lines[i])
        args, quoted = _parse_args(buffer, filename, start_line)
        commands.append(Command(name, tuple(args), start_line, tuple(quoted)))
        i += 1
    return commands


def _strip_comment(line: str) -> str:
    out = []
    in_quote = False
    for ch in line:
        if ch == '"':
            in_quote = not in_quote
        if ch == "#" and not in_quote:
            break
        out.append(ch)
    return "".join(out)


def _paren_balance(text: str) -> int:
    balance = 0
    in_quote = False
    for ch in text:
        if ch == '"':
            in_quote = not in_quote
        elif not in_quote:
            if ch == "(":
                balance += 1
            elif ch == ")":
                balance -= 1
    return balance


def _parse_args(buffer: str, filename: str, line: int) -> tuple[list[str], list[bool]]:
    """Split the parenthesized argument text into whitespace-separated args."""
    assert buffer.startswith("(")
    inner_end = _matching_paren(buffer)
    inner = buffer[1:inner_end]
    args: list[str] = []
    quoted_flags: list[bool] = []
    current: list[str] = []
    in_quote = False
    was_quoted = False
    depth = 0
    for ch in inner:
        if ch == '"':
            in_quote = not in_quote
            was_quoted = True
            continue
        if in_quote:
            current.append(ch)
            continue
        if ch == "(":
            depth += 1
            current.append(ch)
            continue
        if ch == ")":
            depth -= 1
            current.append(ch)
            continue
        if ch.isspace() and depth == 0:
            if current or was_quoted:
                args.append("".join(current))
                quoted_flags.append(was_quoted)
            current = []
            was_quoted = False
            continue
        current.append(ch)
    if in_quote:
        raise BuildScriptError(f"{filename}:{line}: unterminated string")
    if current or was_quoted:
        args.append("".join(current))
        quoted_flags.append(was_quoted)
    return args, quoted_flags


def _matching_paren(buffer: str) -> int:
    depth = 0
    in_quote = False
    for i, ch in enumerate(buffer):
        if ch == '"':
            in_quote = not in_quote
        elif not in_quote:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return i
    raise BuildScriptError("unbalanced parentheses")
