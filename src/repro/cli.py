"""xaas-deploy — the command-line deployment tool (paper Sec. 5.2).

"We introduce a new deployment tool customized for HPC specialization, but
all other steps of container management ... are conducted with standard and
existing container tools." This module is that tool for the simulated world:

    python -m repro.cli discover --system ault23
    python -m repro.cli analyze --app gromacs
    python -m repro.cli intersect --app gromacs --system ault25
    python -m repro.cli ir-build --app lulesh
    python -m repro.cli deploy --app lulesh --system ault01-04 --mode ir
    python -m repro.cli bench --app gromacs --system ault23 --workload testB

Build commands accept ``--store DIR`` to work against a persistent artifact
store (sharded file backend): repeated builds — including in fresh
processes — replay preprocessed text, IR modules, and lowered machine
modules from disk instead of recomputing them. The store is managed by the
``cache`` subcommands::

    python -m repro.cli ir-build --app lulesh --store /tmp/xaas-store
    python -m repro.cli deploy --app lulesh --system ault23 --mode ir \
        --store /tmp/xaas-store --json
    python -m repro.cli cache stats --store /tmp/xaas-store --json
    python -m repro.cli cache gc --store /tmp/xaas-store --max-bytes 1000000
    python -m repro.cli cache export --store /tmp/xaas-store --output warm.tar.gz
    python -m repro.cli cache import --store /tmp/other-store --input warm.tar.gz
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.apps import app_model, default_ir_sweep
from repro.containers import ArtifactCache, BlobStore
from repro.store import FileBackend, export_store, import_store
from repro.store.remote import DEFAULT_MAX_BODY_BYTES
from repro.core import (
    build_ir_container,
    build_source_image,
    default_selection,
    deploy_batch,
    deploy_ir_container,
    deploy_source_container,
    intersect_specializations,
)
from repro.discovery import analyze_build_script, get_system
from repro.discovery.system import SYSTEMS
from repro.perf import build_app, run_workload

#: One constant sizes gromacs on every CLI path — single-process and farm
#: builds must use the same tree or deployments stop being byte-identical.
GROMACS_CLI_SCALE = 0.02

#: CLI-exposed apps, resolved through the shared repro.apps registry
#: (qespresso stays library-only). The cluster paths pass the same scale
#: through BuildSpec so workers rebuild the identical tree.
CLI_APP_SCALE = {"gromacs": GROMACS_CLI_SCALE}
APPS = {name: (lambda n=name: app_model(n, CLI_APP_SCALE.get(n)))
        for name in ("gromacs", "lulesh", "llama.cpp")}


def _app(name: str):
    try:
        return APPS[name]()
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; known: {sorted(APPS)}")


def _open_store(args, farm: bool = False) -> tuple[BlobStore, ArtifactCache]:
    """The build substrate: persistent when ``--store DIR`` (or
    ``--store-server HOST:PORT``, where the command accepts it) is given.

    With a file-backed store, the ArtifactCache loads its access-ordered
    index from disk — a fresh process starts warm from whatever earlier
    builds persisted; a store server is reached through a pooled wire
    client (one warm connection, not one per operation). ``farm=True``
    batches index saves the way cluster workers do (the cache is about to
    be shared with bulk publishers, and per-put index rewrites are O(n^2)
    at scale); the cluster flushes at every job boundary, so nothing is
    lost on a clean exit.
    """
    from repro.containers.store import BULK_FLUSH_EVERY
    store_dir = getattr(args, "store", None)
    store_server = getattr(args, "store_server", None)
    if store_dir:
        store = BlobStore(FileBackend(store_dir))
    elif store_server:
        from repro.store import RemoteBackend
        host, port = _parse_address(store_server)
        store = BlobStore(RemoteBackend(host, port))
    else:
        store = BlobStore()
    flush_every = BULK_FLUSH_EVERY if farm else 1
    return store, ArtifactCache(store, flush_every=flush_every)


def _run_local_farm(args, system_names: list[str], scale: float | None,
                    label: str, job_timeout: float = 300.0,
                    spans_out: list | None = None):
    """Self-hosted farm run shared by ``deploy-batch --workers`` and
    ``cluster build --workers``: open the store, spin up a LocalCluster,
    build, pin the image. Returns the ClusterBuildReport. With
    ``spans_out`` (a list), the farm's trace spans — coordinator job
    lifecycle, worker execution, and any store-server spans — are drained
    into it for the caller's ``--trace`` export."""
    from repro.cluster import ClusterError, LocalCluster
    from repro.core import IRDeploymentError
    store, cache = _open_store(args, farm=True)
    elastic = bool(getattr(args, "elastic", False))
    try:
        with LocalCluster(workers=args.workers, store=store, cache=cache,
                          elastic=elastic,
                          min_workers=getattr(args, "min_workers", 1),
                          max_workers=args.workers if elastic else None
                          ) as cluster:
            report = cluster.build(args.app, system_names, scale=scale,
                                   skip_incompatible=args.skip_incompatible,
                                   job_timeout=job_timeout)
            if spans_out is not None:
                spans_out.extend(cluster.drain_spans())
            if elastic and cluster.scale_events:
                print(f"elastic: {len(cluster.scale_events)} scale events, "
                      f"peak {max(e['workers'] for e in cluster.scale_events)}"
                      f" workers", file=sys.stderr)
    except (ClusterError, IRDeploymentError) as exc:
        raise SystemExit(f"{label} failed: {exc}")
    if spans_out is not None:
        spans_out.extend(_collect_store_spans(store))
    if getattr(args, "store", "") or getattr(args, "store_server", ""):
        cache.pin(f"image/{args.app}", report.image_digest)
    return report


# -- --trace plumbing ----------------------------------------------------------


def _begin_trace(args, root_name: str, attrs: dict | None = None):
    """Start recording under a root span when ``--trace OUT.json`` was
    given. Returns ``(recorder, exit_stack)`` — ``(None, None)`` when
    tracing is off, so callers stay one-liner cheap on the common path."""
    if not getattr(args, "trace", ""):
        return None, None
    import contextlib
    from repro.telemetry import trace as _trace
    recorder = _trace.TraceRecorder()
    _trace.set_service("client")
    stack = contextlib.ExitStack()
    stack.enter_context(_trace.recording(recorder))
    stack.enter_context(_trace.span(root_name, attrs=attrs or {}))
    return recorder, stack


def _finish_trace(args, recorder, stack, extra_spans=None) -> None:
    """Close the root span and write the Chrome trace-event file.
    ``extra_spans`` may mix :class:`Span` objects (LocalCluster drains)
    and wire-form dicts (coordinator / store-server ``telemetry`` ops)."""
    if recorder is None:
        return
    from repro.telemetry.export import write_chrome_trace
    from repro.telemetry.trace import Span
    stack.close()
    spans = recorder.drain()
    for blob in extra_spans or ():
        spans.append(blob if isinstance(blob, Span) else Span.from_json(blob))
    write_chrome_trace(args.trace, spans)
    print(f"trace: wrote {len(spans)} spans to {args.trace}", file=sys.stderr)


def _collect_store_spans(store) -> list:
    """Drain the store server's buffered spans (wire-form dicts). Only a
    RemoteBackend has a ``telemetry`` op; file/memory backends — and
    pre-telemetry servers, which return None — contribute nothing. Never
    raises: trace collection must not fail a finished build."""
    tel = getattr(store.backend, "telemetry", None)
    if not callable(tel):
        return []
    try:
        info = tel(drain_spans=True)
    except Exception:
        return []
    return list(info.get("spans", ())) if info else []


def _cache_delta(before: dict, after: dict) -> dict:
    """Per-namespace {hits, misses} traffic between two cache snapshots."""
    out: dict[str, dict[str, int]] = {}
    for namespace, (hits, misses) in after.items():
        prev_hits, prev_misses = before.get(namespace, (0, 0))
        if hits - prev_hits or misses - prev_misses:
            out[namespace] = {"hits": hits - prev_hits,
                              "misses": misses - prev_misses}
    return out


def cmd_discover(args) -> int:
    """Print the system-features JSON (Fig. 4b)."""
    spec = get_system(args.system)
    print(json.dumps(spec.detect_features(), indent=2, sort_keys=True))
    return 0


def cmd_analyze(args) -> int:
    """Print the application's specialization points (Fig. 4a)."""
    app = _app(args.app)
    print(json.dumps(analyze_build_script(app.tree), indent=2, sort_keys=True))
    return 0


def cmd_intersect(args) -> int:
    """Print the common specialization points (Fig. 4c) and the defaults."""
    app = _app(args.app)
    system = get_system(args.system)
    common = intersect_specializations(analyze_build_script(app.tree), system)
    out = common.to_json()
    out["operator_default_selection"] = default_selection(common, system)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def cmd_ir_build(args) -> int:
    """Run the IR-container pipeline and print the dedup statistics."""
    app = _app(args.app)
    configs, _ = default_ir_sweep(args.app)
    store, cache = _open_store(args)
    recorder, stack = _begin_trace(args, "cli.ir-build", {"app": args.app})
    result = build_ir_container(app, configs, store=store, cache=cache,
                                compile_irs=not args.stats_only)
    _finish_trace(args, recorder, stack, _collect_store_spans(store)
                  if recorder is not None else None)
    if args.store and not args.stats_only:
        # Pin the image manifest: GC follows digest references inside
        # pinned blobs, so config and layers stay deployable too.
        cache.pin(f"image/{args.app}", result.image.digest)
    if args.json:
        print(json.dumps({
            "app": args.app,
            "stats": result.stats.to_json(),
            "image_digest": result.image.digest,
            "image_size_bytes": result.image.total_size,
        }, indent=2, sort_keys=True))
        return 0
    print(result.stats.summary())
    print(f"image digest: {result.image.digest}")
    print(f"image size: {result.image.total_size} bytes")
    return 0


def cmd_deploy(args) -> int:
    """Deploy a source or IR container to a system and predict a run."""
    app = _app(args.app)
    system = get_system(args.system)
    store, cache = _open_store(args)
    if args.mode == "source":
        arch = "arm64" if system.architecture == "arm64" else "amd64"
        sc = build_source_image(app, store, arch=arch)
        dep = deploy_source_container(
            sc, system, store,
            build_host=None if system.supports_container_build
            else get_system("dev-machine"))
        artifact, tag = dep.artifact, dep.tag
        build_stats = None
        deploy_delta: dict = {}
        if not args.json:
            print("selection:", json.dumps(dep.selection, sort_keys=True))
    else:
        configs, chosen = default_ir_sweep(args.app)
        result = build_ir_container(app, configs, store=store, cache=cache)
        before = cache.snapshot()
        dep = deploy_ir_container(result, app, chosen, system, store,
                                  cache=cache)
        artifact, tag = dep.artifact, dep.tag
        deploy_delta = _cache_delta(before, cache.snapshot())
        build_stats = result.stats.to_json()
        if args.store:
            cache.pin(f"image/{args.app}", result.image.digest)
            cache.pin(f"deploy/{args.app}@{system.name}", dep.image.digest)
        if not args.json:
            print(f"lowered ISA: {dep.simd_name}")
    if args.json:
        blob = {
            "app": args.app, "system": system.name, "mode": args.mode,
            "tag": dep.tag,
            # The cold-start acceptance check: a warm persistent store
            # makes every build op zero and every deploy lookup a hit.
            "deploy_cache": deploy_delta,
        }
        if build_stats is not None:
            blob["build_stats"] = build_stats
            blob["simd"] = dep.simd_name
            blob["lowered_count"] = dep.lowered_count
        if args.workload:
            report = run_workload(artifact, system, args.workload,
                                  threads=args.threads)
            blob["workload"] = {
                "name": args.workload,
                "total_seconds": report.total_seconds,
                "kernel_seconds": dict(sorted(report.kernel_seconds.items())),
                "library_seconds": report.library_seconds,
                "gpu_seconds": report.gpu_seconds,
            }
        print(json.dumps(blob, indent=2, sort_keys=True))
        return 0
    print(f"image tag: {tag}")
    if args.workload:
        report = run_workload(artifact, system, args.workload, threads=args.threads)
        print(report)
    return 0


def _parse_systems(spec: str) -> list:
    systems = []
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            systems.append(get_system(name))
        except KeyError as exc:
            raise SystemExit(exc.args[0])
    if not systems:
        raise SystemExit("--systems needs at least one system name")
    return systems


def cmd_deploy_batch(args) -> int:
    """Build one IR container and deploy it to many systems in one batch."""
    from repro.core import IRDeploymentError

    app = _app(args.app)
    systems = _parse_systems(args.systems)
    recorder, stack = _begin_trace(args, "cli.deploy-batch",
                                   {"app": args.app, "systems": len(systems)})
    if args.workers > 0:
        # Route the batch through an in-process build farm: N worker
        # threads pulling stage-level jobs from a LocalCluster
        # coordinator, all publishing through this command's store.
        extra_spans: list = []
        report = _run_local_farm(args, [s.name for s in systems],
                                 CLI_APP_SCALE.get(args.app),
                                 "deploy-batch --workers",
                                 spans_out=extra_spans
                                 if recorder is not None else None)
        _finish_trace(args, recorder, stack, extra_spans)
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
            return 0
        _print_cluster_report(report, note=f"{args.workers} workers")
        return 0
    configs, chosen = default_ir_sweep(args.app)
    store, cache = _open_store(args)
    result = build_ir_container(app, configs, store=store, cache=cache)
    if args.store:
        cache.pin(f"image/{args.app}", result.image.digest)
    try:
        batch = deploy_batch(result, app, chosen, systems, store, cache=cache,
                             skip_incompatible=args.skip_incompatible)
    except IRDeploymentError as exc:
        raise SystemExit(
            f"deploy-batch failed: {exc}\n"
            "(--skip-incompatible deploys to the compatible systems only)")
    _finish_trace(args, recorder, stack, _collect_store_spans(store)
                  if recorder is not None else None)
    if args.json:
        print(json.dumps({
            "app": args.app,
            "plan": {
                "groups": [{"family": g.family, "simd": g.simd_name,
                            "systems": list(g.systems)}
                           for g in batch.plan.groups],
                "incompatible": batch.plan.incompatible,
            },
            "deployments": [{"system": dep.system.name, "tag": dep.tag,
                             "simd": dep.simd_name,
                             "lowered_count": dep.lowered_count}
                            for dep in batch.deployments],
            "lowerings_performed": batch.lowerings_performed,
            "lowerings_reused": batch.lowerings_reused,
            "build_stats": result.stats.to_json(),
        }, indent=2, sort_keys=True))
        return 0
    print(f"plan: {batch.plan.summary()}")
    for dep in batch.deployments:
        print(f"  {dep.system.name:<12} isa={dep.simd_name:<10} tag={dep.tag}")
    for name, reason in batch.plan.incompatible.items():
        print(f"  {name:<12} SKIPPED: {reason}")
    print(f"lowerings: {batch.lowerings_performed} performed, "
          f"{batch.lowerings_reused} reused from cache")
    return 0


def _cache_for_store(args) -> ArtifactCache:
    if getattr(args, "store_server", ""):
        from repro.store import RemoteBackend
        host, port = _parse_address(args.store_server)
        return ArtifactCache(BlobStore(RemoteBackend(host, port)))
    if not args.store:
        raise SystemExit("cache commands need --store DIR")
    return ArtifactCache(BlobStore(FileBackend(args.store)))


def cmd_cache_stats(args) -> int:
    """Report store size, per-namespace entry/byte breakdown, and pins.

    Against ``--store-server`` the report also embeds the server's live
    counters (its ``telemetry`` wire op): connection/request totals, wire
    byte counts, and body-residency peaks that a pure index walk cannot
    see. An old server without the op degrades to index stats only.
    """
    cache = _cache_for_store(args)
    stats = cache.stats()
    tel = getattr(cache.store.backend, "telemetry", None)
    if callable(tel):
        info = tel()
        if info:
            stats["server"] = {"flavor": info.get("flavor"),
                               "stats": info.get("stats"),
                               "metrics": info.get("metrics")}
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"blobs: {stats['blobs']} ({stats['total_bytes']} bytes)")
    print(f"index entries: {stats['entries']}")
    for namespace, count in stats["entries_by_namespace"].items():
        nbytes = stats["bytes_by_namespace"].get(namespace, 0)
        print(f"  {namespace:<12} {count:>6} entries  {nbytes:>10} bytes")
    for name, digest in sorted(stats["pins"].items()):
        print(f"pin {name} -> {digest}")
    server = stats.get("server")
    if server and server.get("stats"):
        live = server["stats"]
        print(f"server ({server.get('flavor')}): "
              f"{live.get('connections_served', 0)} connections, "
              f"{live.get('requests_served', 0)} requests, "
              f"{live.get('bytes_in', 0)} bytes in, "
              f"{live.get('bytes_out', 0)} bytes out")
    return 0


def cmd_cache_gc(args) -> int:
    """Bound the store: TTL-expire past ``--max-age-seconds``, LRU-evict
    until it fits ``--max-bytes``; pins are sacred. Either bound alone
    works — a pure-TTL sweep runs with an unlimited byte budget."""
    if args.max_bytes is None and args.max_age_seconds is None:
        raise SystemExit("cache gc needs --max-bytes and/or "
                         "--max-age-seconds")
    max_bytes = args.max_bytes if args.max_bytes is not None else 2 ** 62
    report = _cache_for_store(args).gc(max_bytes,
                                       grace_seconds=args.grace_seconds,
                                       dry_run=args.dry_run,
                                       max_age_seconds=args.max_age_seconds)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    if report.dry_run:
        print(f"dry run: store {report.before_bytes} bytes, budget "
              f"{report.max_bytes}, plan frees {report.planned_freed_bytes} "
              f"-> {report.projected_after_bytes} bytes")
        print(f"would expire {report.expired_entries} entries, "
              f"evict {report.evicted_entries} entries, "
              f"delete {report.deleted_blobs} blobs "
              f"({report.pinned_blobs} pinned blobs kept)")
        for namespace, agg in sorted(report.by_namespace.items()):
            print(f"  {namespace:<12} {agg['entries']:>5} entries  "
                  f"{agg['blobs']:>5} blobs  {agg['bytes']:>10} bytes")
        for ns, key in report.expired:
            print(f"  would expire [{ns}] {key}")
        for ns, key in report.evicted:
            print(f"  would evict [{ns}] {key}")
    else:
        print(f"store: {report.before_bytes} -> {report.after_bytes} bytes "
              f"(budget {report.max_bytes}, freed {report.freed_bytes})")
        print(f"expired {report.expired_entries} entries, "
              f"evicted {report.evicted_entries} entries, "
              f"deleted {report.deleted_blobs} blobs, "
              f"{report.pinned_blobs} pinned blobs kept")
    if not report.within_budget:
        print("warning: pinned blobs alone exceed the budget")
    return 0


def cmd_cache_serve(args) -> int:
    """Serve a file-backed store to builders/workers over a socket.

    The server answers whole *sessions* of requests per connection, so a
    farm of pooled clients (``cluster worker --store-server``, ``cluster
    build --store-server``) costs one TCP connection per worker, not one
    per operation.
    """
    import json as json_mod
    import time
    from repro.store import AsyncStoreServer, StoreServer
    from repro.telemetry import trace as _trace
    if not args.store:
        raise SystemExit("cache serve needs --store DIR")
    # Label spans this server records for traced requests (the Perfetto
    # track name in an exported farm trace).
    _trace.set_service("store-server")
    flavor = StoreServer if args.threaded else AsyncStoreServer
    server = flavor(FileBackend(args.store), host=args.host, port=args.port,
                    max_body_bytes=args.max_body_bytes)
    # Crash dumps (and on-demand SIGUSR2 dumps) carry this server's span
    # buffer and metric registry, not the process-global defaults.
    from repro.telemetry import flightrec as _flightrec
    _flightrec.install(recorder=server.recorder,
                       registry=server.metrics.registry)
    host, port = server.start()
    print(f"store server ({server.flavor}) listening on {host}:{port}",
          flush=True)
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        # Final status line: wire traffic and body-residency high-water
        # marks (peak_body_bytes stays O(chunk) for streamed transfers).
        print(json_mod.dumps({"flavor": server.flavor, **server.stats()},
                             sort_keys=True), flush=True)
    return 0


def cmd_cache_export(args) -> int:
    """Pack the whole store (blobs + refs) into one archive."""
    backend = FileBackend(args.store) if args.store else None
    if backend is None:
        raise SystemExit("cache commands need --store DIR")
    summary = export_store(backend, args.output)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"exported {summary['blobs']} blobs "
          f"({summary['blob_bytes']} bytes), {summary['refs']} refs "
          f"-> {summary['path']}")
    return 0


def cmd_cache_import(args) -> int:
    """Merge an exported archive into the store (idempotent by digest)."""
    if not args.store:
        raise SystemExit("cache commands need --store DIR")
    summary = import_store(FileBackend(args.store), args.input)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"imported {summary['blobs_added']} blobs "
          f"({summary['blobs_skipped']} already present), "
          f"merged {summary['refs_merged']} refs from {summary['path']}")
    return 0


def _print_cluster_report(report, note: str = "",
                          show_routing: bool = False) -> None:
    """Human-readable ClusterBuildReport (shared by both farm commands)."""
    print(f"plan: {report.plan_summary}")
    if show_routing:
        print(f"routing: warm {report.warm_groups or '[]'} ahead of "
              f"cold {report.cold_groups or '[]'}")
    for dep in report.deployments:
        print(f"  {dep['system']:<12} isa={dep['simd']:<10} tag={dep['tag']}")
    for name, reason in report.incompatible.items():
        print(f"  {name:<12} SKIPPED: {reason}")
    line = (f"lowerings: {report.lowerings_performed} performed, "
            f"{report.lowerings_reused} reused, "
            f"{report.duplicate_lowerings} duplicated")
    print(line + (f" ({note})" if note else ""))


def _parse_address(spec: str) -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"--coordinator wants HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def cmd_cluster_serve(args) -> int:
    """Run a build-farm coordinator until interrupted."""
    from repro.cluster import Coordinator
    from repro.telemetry import trace as _trace
    _trace.set_service("coordinator")
    # With a store attached the coordinator journals its scheduler state
    # through a ref in that store: `--resume` after a crash restores
    # every accepted batch — terminal results included — and re-queues
    # whatever was running when the process died.
    journal = None
    if args.store or args.store_server:
        from repro.cluster.journal import Journal
        from repro.store import FileBackend as _FileBackend
        from repro.store import RemoteBackend as _RemoteBackend
        if args.store:
            backend = _FileBackend(args.store)
        else:
            shost, sport = _parse_address(args.store_server)
            backend = _RemoteBackend(shost, sport)
        journal = Journal(backend, autosave_interval=args.journal_interval)
    elif args.resume:
        raise SystemExit("cluster serve --resume needs the journal's "
                         "store: --store DIR or --store-server HOST:PORT")
    coordinator = Coordinator(host=args.host, port=args.port,
                              lease_seconds=args.lease_seconds,
                              journal=journal, resume=args.resume)
    from repro.telemetry import flightrec as _flightrec
    _flightrec.install(recorder=coordinator.queue.telemetry.recorder,
                       registry=coordinator.queue.telemetry.registry)
    host, port = coordinator.start()
    print(f"cluster coordinator listening on {host}:{port}", flush=True)
    if args.resume:
        stats = coordinator.queue.stats()
        print(f"resumed {stats['jobs']} job(s) from the journal: "
              f"{stats['states']}", flush=True)
    try:
        while True:
            import time
            time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0


# The induced-crash machinery grew into a package of composable fault
# injectors (backend- and wire-level too); the CLI keeps these aliases so
# the REPRO_FAULT_INJECT seam stays where operators found it.
from repro.testing.faults import _InjectedFault  # noqa: F401  (dump contract)
from repro.testing.faults import arm_fault_injection as _arm_fault_injection


def cmd_cluster_worker(args) -> int:
    """Run one worker: pull jobs, publish artifacts through the store."""
    from repro.cluster import ClusterWorker, CoordinatorClient
    from repro.store import RemoteBackend
    from repro.telemetry import flightrec as _flightrec
    from repro.telemetry import trace as _trace
    from repro.telemetry.registry import MetricsRegistry
    host, port = _parse_address(args.coordinator)
    # One registry spans the worker and its store client, so heartbeat
    # deltas carry wire-request latencies alongside job counters.
    registry = MetricsRegistry()
    if args.store:
        store = BlobStore(FileBackend(args.store))
    elif args.store_server:
        shost, sport = _parse_address(args.store_server)
        store = BlobStore(RemoteBackend(shost, sport, registry=registry))
    else:
        raise SystemExit("cluster worker needs --store DIR or "
                         "--store-server HOST:PORT (the shared data plane)")
    worker = ClusterWorker(CoordinatorClient(host, port), store,
                           worker_id=args.worker_id,
                           max_workers=args.job_workers,
                           registry=registry,
                           local_tier_dir=args.local_tier,
                           tier_flush_interval=args.flush_interval,
                           max_coordinator_downtime=(
                               args.max_coordinator_downtime))
    _trace.set_service(worker.worker_id)
    # Anything that escapes run() — including an injected fault — dumps
    # the worker's span buffer, event ring, and registry before dying.
    _flightrec.install(recorder=worker.recorder, registry=registry)
    fault = os.environ.get("REPRO_FAULT_INJECT", "")
    if fault:
        _arm_fault_injection(worker, fault)
    worker.run(max_idle_seconds=args.max_idle_seconds)
    line = (f"worker {worker.worker_id}: {worker.jobs_done} jobs done, "
            f"{worker.jobs_failed} failed")
    if worker.tier is not None:
        line += (f", tier {worker.tier.tier_hits} hits / "
                 f"{worker.tier.tier_misses} misses / "
                 f"{worker.tier.flushed_blobs} flushed")
    print(line, flush=True)
    return 0


def cmd_cluster_build(args) -> int:
    """Build + batch-deploy through a build farm (external or self-hosted)."""
    from repro.core import IRDeploymentError
    from repro.cluster import ClusterError, CoordinatorClient, cluster_build
    systems = [s.name for s in _parse_systems(args.systems)]
    if args.scale is None:  # parity with the other CLI commands' sizing
        args.scale = CLI_APP_SCALE.get(args.app)
    recorder, stack = _begin_trace(args, "cli.cluster-build",
                                   {"app": args.app, "systems": len(systems)})
    extra_spans: list = []
    try:
        if args.coordinator:
            if not args.store and not args.store_server:
                raise SystemExit("cluster build against an external "
                                 "coordinator needs --store DIR or "
                                 "--store-server HOST:PORT (the store the "
                                 "workers share)")
            store, cache = _open_store(args, farm=True)
            host, port = _parse_address(args.coordinator)
            client = CoordinatorClient(host, port)
            report = cluster_build(
                client, args.app, systems, store,
                cache=cache, scale=args.scale,
                skip_incompatible=args.skip_incompatible,
                job_timeout=args.job_timeout)
            cache.pin(f"image/{args.app}", report.image_digest)
            if recorder is not None:
                # Pull the farm's half of the trace: coordinator job
                # lifecycle + worker-pushed spans, then the store
                # server's wire spans.
                try:
                    extra_spans.extend(client.telemetry(
                        drain_spans=True)["spans"])
                except ClusterError:
                    pass
                extra_spans.extend(_collect_store_spans(store))
        else:
            report = _run_local_farm(args, systems, args.scale,
                                     "cluster build",
                                     job_timeout=args.job_timeout,
                                     spans_out=extra_spans
                                     if recorder is not None else None)
    except (ClusterError, IRDeploymentError) as exc:
        raise SystemExit(f"cluster build failed: {exc}")
    _finish_trace(args, recorder, stack, extra_spans)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    _print_cluster_report(report, show_routing=True)
    return 0


def _fmt_latency(summary: dict) -> str:
    """`p50/p95 ms (n)` from a summarize_histogram dict."""
    if not summary or not summary.get("count"):
        return "-"
    return (f"{summary['p50'] * 1000:.0f}/{summary['p95'] * 1000:.0f}ms "
            f"(n={summary['count']})")


def _history_lines(history: dict, width: int = 32,
                   max_series: int = 8) -> list[str]:
    """Sparkline rows from a ``history`` wire payload. Cumulative farm
    counters render as per-second rates; gauges and ready-made rates
    render raw. A trend view wants few, legible rows — the preferred
    series lead and the rest fill up to ``max_series``."""
    from repro.telemetry.history import rate, sparkline
    series = (history or {}).get("series") or {}
    if not series:
        return []
    preferred = ["farm.jobs_per_second", "cluster.jobs.completed",
                 "cluster.job.seconds", "process.rss_bytes",
                 "process.cpu_seconds"]
    names = [n for n in preferred if n in series]
    names += [n for n in sorted(series) if n not in names]
    lines = []
    for name in names:
        if len(lines) >= max_series:
            break
        samples = [(float(ts), float(v)) for ts, v in series[name]]
        if not samples:
            continue
        if (name.startswith(("cluster.jobs.", "store.", "cluster.worker."))
                and len(samples) > 1):
            values = [v for _, v in rate(samples)]
            label = f"{name}/s"
        else:
            values = [v for _, v in samples]
            label = name
        if not values or not any(values):
            continue
        lines.append(f"  {label:<36} {sparkline(values, width)} "
                     f"latest={values[-1]:g} (n={len(values)})")
    return lines


def _print_cluster_top(info: dict) -> None:
    tel = info["telemetry"]
    jobs = tel.get("jobs", {})
    states = jobs.get("states", {})
    state_line = " ".join(f"{state}={states[state]}"
                          for state in sorted(states)) or "none"
    print(f"jobs: {jobs.get('total', 0)} known ({state_line}); "
          f"shared queue depth {tel.get('shared_queue_depth', 0)}")
    thr = tel.get("throughput", {})
    print(f"throughput: {thr.get('completed', 0)} completed in the last "
          f"{thr.get('window_seconds', 0):.0f}s "
          f"({thr.get('jobs_per_second', 0.0):.2f}/s); "
          f"farm job duration {_fmt_latency(tel.get('job_duration_seconds'))}")
    gauges = (tel.get("metrics") or {}).get("gauges") or {}
    if gauges.get("process.rss_bytes"):
        print(f"coordinator: rss "
              f"{gauges['process.rss_bytes'] / (1 << 20):.0f} MB, "
              f"cpu {gauges.get('process.cpu_seconds', 0.0):.1f}s, "
              f"{int(gauges.get('process.open_fds', 0))} fds; "
              f"{tel.get('spans_buffered', 0)} spans buffered "
              f"({tel.get('spans_dropped', 0)} dropped)")
    workers = tel.get("workers", {})
    if not workers:
        print("no workers seen")
    else:
        print(f"{'worker':<16} {'queue':>5} {'run':>4} {'done':>6} "
              f"{'fail':>5} {'rss':>7} {'tier h/m':>12} {'flush':>6} "
              f"{'retry':>6} {'job p50/p95':>18} {'store p50/p95':>18} "
              f"{'seen':>8}")
        for worker_id in sorted(workers):
            w = workers[worker_id]
            seen = w.get("last_seen_seconds")
            tier = (f"{w.get('tier_hits', 0)}/{w.get('tier_misses', 0)}"
                    if w.get("tier_hits", 0) or w.get("tier_misses", 0)
                    else "-")
            rss = w.get("rss_bytes", 0)
            # Store retries and coordinator reconnects in one health
            # column: zero on a clean farm, so any number here is signal.
            retries = (w.get("store_retries", 0) or 0) + \
                (w.get("reconnects", 0) or 0)
            print(f"{worker_id:<16} {w.get('queue_depth', 0):>5} "
                  f"{w.get('running', 0):>4} {w.get('jobs_done', 0):>6} "
                  f"{w.get('jobs_failed', 0):>5} "
                  f"{f'{rss / (1 << 20):.0f}MB' if rss else '-':>7} "
                  f"{tier:>12} {w.get('tier_flushed', 0) or '-':>6} "
                  f"{retries or '-':>6} "
                  f"{_fmt_latency(w.get('job_seconds')):>18} "
                  f"{_fmt_latency(w.get('store_request_seconds')):>18} "
                  f"{'' if seen is None else f'{seen:.1f}s ago':>8}")
    trend = _history_lines(info.get("history") or {})
    if trend:
        print("history:")
        for line in trend:
            print(line)


def cmd_cluster_top(args) -> int:
    """Live farm-wide aggregates from the coordinator's `telemetry` op.

    ``--watch`` refreshes in place every ``--interval`` seconds and adds
    sparkline trends from the coordinator's bounded metrics history."""
    import time as time_mod
    from repro.cluster import ClusterError, CoordinatorClient
    host, port = _parse_address(args.coordinator)
    client = CoordinatorClient(host, port)
    watch = bool(getattr(args, "watch", False))
    interval = float(getattr(args, "interval", 2.0))
    try:
        while True:
            try:
                info = client.telemetry(worker_metrics=args.worker_metrics)
            except ClusterError as exc:
                raise SystemExit(f"cluster top failed: {exc}")
            if args.json:
                tel = dict(info["telemetry"])
                tel["history"] = info.get("history", {})
                print(json.dumps(tel, indent=2, sort_keys=True))
            else:
                if watch:
                    print("\x1b[2J\x1b[H", end="")
                _print_cluster_top(info)
            if not watch:
                return 0
            time_mod.sleep(interval)
    except KeyboardInterrupt:
        return 0


def cmd_cluster_status(args) -> int:
    """Scheduler state plus the live telemetry summary in one shot."""
    from repro.cluster import ClusterError, CoordinatorClient
    host, port = _parse_address(args.coordinator)
    client = CoordinatorClient(host, port)
    try:
        stats = client.stats()
        telemetry = client.telemetry()["telemetry"]
    except ClusterError as exc:
        raise SystemExit(f"cluster status failed: {exc}")
    if args.json:
        print(json.dumps({"stats": stats, "telemetry": telemetry},
                         indent=2, sort_keys=True))
        return 0
    states = stats.get("states", {})
    state_line = " ".join(f"{state}={states[state]}"
                          for state in sorted(states)) or "none"
    print(f"jobs: {stats.get('jobs', 0)} ({state_line})")
    print(f"workers: {', '.join(stats.get('workers', [])) or 'none'}")
    print(f"published keys: {stats.get('published_keys', 0)}")
    thr = telemetry.get("throughput", {})
    print(f"throughput: {thr.get('completed', 0)} jobs in the last "
          f"{thr.get('window_seconds', 0):.0f}s; job duration "
          f"{_fmt_latency(telemetry.get('job_duration_seconds'))}")
    return 0


def cmd_telemetry_report(args) -> int:
    """Render a flight-recorder crash dump; with ``--trace`` each event
    is cross-linked to the exported span it happened inside."""
    from repro.telemetry.export import spans_from_chrome
    from repro.telemetry.flightrec import load_crash_dump, render_report
    try:
        dump = load_crash_dump(args.dump)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"telemetry report failed: {exc}")
    trace_spans = None
    if args.trace:
        try:
            with open(args.trace, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            trace_spans = [span.to_json() for span in spans_from_chrome(doc)]
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"telemetry report failed reading --trace: {exc}")
    if args.json:
        print(json.dumps(dump, indent=2, sort_keys=True))
        return 0
    print(render_report(dump, trace_spans=trace_spans))
    return 0


def cmd_telemetry_history(args) -> int:
    """Fetch a live process's bounded metrics history (the ``history``
    field of the ``telemetry`` wire op) from a coordinator or a store
    server, rendered as sparklines or raw JSON."""
    if bool(args.coordinator) == bool(args.store_server):
        raise SystemExit("telemetry history needs exactly one of "
                         "--coordinator or --store-server")
    if args.coordinator:
        from repro.cluster import ClusterError, CoordinatorClient
        host, port = _parse_address(args.coordinator)
        try:
            history = CoordinatorClient(host, port).telemetry().get(
                "history") or {}
        except ClusterError as exc:
            raise SystemExit(f"telemetry history failed: {exc}")
    else:
        from repro.store import RemoteBackend
        from repro.store.remote import RemoteStoreError
        host, port = _parse_address(args.store_server)
        backend = RemoteBackend(host, port)
        try:
            info = backend.telemetry()
        except RemoteStoreError as exc:
            raise SystemExit(f"telemetry history failed: {exc}")
        finally:
            backend.close()
        if info is None:
            raise SystemExit("telemetry history failed: server predates "
                             "the telemetry op")
        history = info.get("history") or {}
    if args.json:
        print(json.dumps(history, indent=2, sort_keys=True))
        return 0
    lines = _history_lines(history, max_series=64)
    if not lines:
        print("no history samples")
        return 0
    for line in lines:
        print(line.lstrip())
    return 0


def cmd_bench(args) -> int:
    """Build natively and predict one workload run."""
    app = _app(args.app)
    system = get_system(args.system)
    options = dict(kv.split("=", 1) for kv in (args.option or []))
    artifact = build_app(app, options, build_system=system, label="cli")
    report = run_workload(artifact, system, args.workload, threads=args.threads)
    print(report)
    for kernel, seconds in sorted(report.kernel_seconds.items()):
        print(f"  {kernel:<16} {seconds:10.3f} s")
    print(f"  {'library':<16} {report.library_seconds:10.3f} s")
    print(f"  {'gpu':<16} {report.gpu_seconds:10.3f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xaas-deploy",
        description="XaaS container deployment tool (simulated substrates)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="detect a system's features (Fig. 4b)")
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser("analyze", help="extract specialization points (Fig. 4a)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("intersect", help="intersect app x system (Fig. 4c)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_intersect)

    store_help = "persistent artifact-store directory (file backend)"

    p = sub.add_parser("ir-build", help="run the IR-container pipeline (Fig. 7)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--stats-only", action="store_true",
                   help="dedup analysis without compiling IRs")
    p.add_argument("--store", default="", help=store_help)
    p.add_argument("--json", action="store_true",
                   help="machine-readable pipeline + cache statistics")
    p.add_argument("--trace", default="", metavar="OUT.json",
                   help="write a Chrome trace-event file of the build "
                        "(load it at ui.perfetto.dev)")
    p.set_defaults(func=cmd_ir_build)

    p = sub.add_parser("deploy", help="deploy a container to a system (Figs. 6/8)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--mode", choices=("source", "ir"), default="source")
    p.add_argument("--workload", default="")
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--store", default="", help=store_help)
    p.add_argument("--json", action="store_true",
                   help="machine-readable tag + build/deploy cache statistics")
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser("deploy-batch",
                       help="deploy one IR container to many systems at once")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--systems", required=True,
                   help="comma-separated system names (e.g. ault23,ault25)")
    p.add_argument("--skip-incompatible", action="store_true",
                   help="skip systems the IR container cannot run on")
    p.add_argument("--workers", type=int, default=0,
                   help="route the batch through N in-process cluster "
                        "workers (0 = classic single-process path)")
    p.add_argument("--elastic", action="store_true",
                   help="with --workers N: start --min-workers and let "
                        "the farm scale itself up to N against queue "
                        "depth, retiring drained idle workers")
    p.add_argument("--min-workers", type=int, default=1,
                   help="elastic fleet floor (default 1)")
    p.add_argument("--store", default="", help=store_help)
    p.add_argument("--json", action="store_true",
                   help="machine-readable plan + reuse statistics")
    p.add_argument("--trace", default="", metavar="OUT.json",
                   help="write a Chrome trace-event file of the batch "
                        "(includes farm spans with --workers)")
    p.set_defaults(func=cmd_deploy_batch)

    p = sub.add_parser("cluster",
                       help="build-farm: coordinator, workers, batch builds")
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)

    c = cluster_sub.add_parser("serve", help="run the job coordinator")
    c.add_argument("--host", default="127.0.0.1")
    c.add_argument("--port", type=int, default=0,
                   help="0 lets the OS pick; the address is printed")
    c.add_argument("--lease-seconds", type=float, default=60.0,
                   help="job lease; an expired lease re-queues the job "
                        "with the dead worker excluded")
    c.add_argument("--store", default="", help="journal scheduler state "
                   "into this store directory (the shared artifact "
                   "store); enables --resume after a crash")
    c.add_argument("--store-server", default="", metavar="HOST:PORT",
                   help="journal through a store served by `cache serve` "
                        "(alternative to --store)")
    c.add_argument("--resume", action="store_true",
                   help="restore job state from the journal before "
                        "serving: terminal results come back, in-flight "
                        "jobs are re-queued lease-free")
    c.add_argument("--journal-interval", type=float, default=0.5,
                   metavar="SECONDS",
                   help="write-behind checkpoint period for completions "
                        "(submissions always checkpoint synchronously)")
    c.set_defaults(func=cmd_cluster_serve)

    c = cluster_sub.add_parser("worker", help="run one build worker")
    c.add_argument("--coordinator", required=True, metavar="HOST:PORT")
    c.add_argument("--store", default="", help=store_help)
    c.add_argument("--store-server", default="", metavar="HOST:PORT",
                   help="shared store served by `repro.store` StoreServer "
                        "(alternative to --store)")
    c.add_argument("--worker-id", default="")
    c.add_argument("--local-tier", default="", metavar="DIR",
                   help="worker-local store tier root: hot artifacts are "
                        "served from DIR/<worker-id> at disk latency, "
                        "puts write back to the shared store in batches "
                        "(the ccache topology; pair with --store-server)")
    c.add_argument("--flush-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="background write-back flush period for "
                        "--local-tier (default: flush on size bound and "
                        "at job boundaries only)")
    c.add_argument("--job-workers", type=int, default=1,
                   help="thread-pool width inside one job (cluster "
                        "parallelism comes from workers, so default 1)")
    c.add_argument("--max-idle-seconds", type=float, default=None,
                   help="exit after this long with no work (default: "
                        "run until the coordinator goes away)")
    c.add_argument("--max-coordinator-downtime", type=float, default=None,
                   metavar="SECONDS",
                   help="keep retrying (jittered backoff) through a "
                        "coordinator outage this long before exiting "
                        "(default 10s — rides out a restart + --resume)")
    c.set_defaults(func=cmd_cluster_worker)

    c = cluster_sub.add_parser(
        "build", help="build + deploy a batch through the farm")
    c.add_argument("--app", required=True, choices=sorted(APPS))
    c.add_argument("--systems", required=True,
                   help="comma-separated system names (e.g. ault23,ault25)")
    c.add_argument("--coordinator", default="", metavar="HOST:PORT",
                   help="external coordinator with its own workers; "
                        "omit to self-host --workers N in-process")
    c.add_argument("--workers", type=int, default=2,
                   help="self-hosted worker count (ignored with "
                        "--coordinator)")
    c.add_argument("--store", default="", help=store_help)
    c.add_argument("--store-server", default="", metavar="HOST:PORT",
                   help="shared store served by `cache serve` "
                        "(alternative to --store)")
    c.add_argument("--scale", type=float, default=None,
                   help="app source-tree scale (gromacs defaults to 0.02)")
    c.add_argument("--skip-incompatible", action="store_true")
    c.add_argument("--job-timeout", type=float, default=300.0,
                   help="per-wave stall timeout: raised only after this "
                        "long with no job completing")
    c.add_argument("--json", action="store_true",
                   help="machine-readable plan, routing, and job results")
    c.add_argument("--trace", default="", metavar="OUT.json",
                   help="write a Chrome trace-event file correlating "
                        "client, coordinator, worker, and store-server "
                        "spans under one trace id")
    c.set_defaults(func=cmd_cluster_build)

    c = cluster_sub.add_parser(
        "top", help="live farm aggregates: per-worker queue depth, "
                    "throughput, job/store latencies")
    c.add_argument("--coordinator", required=True, metavar="HOST:PORT")
    c.add_argument("--worker-metrics", action="store_true",
                   help="include each worker's full merged metric snapshot")
    c.add_argument("--watch", action="store_true",
                   help="refresh in place until interrupted, with "
                        "sparkline trends from the farm metrics history")
    c.add_argument("--interval", type=float, default=2.0,
                   help="refresh period for --watch (default 2s)")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cluster_top)

    c = cluster_sub.add_parser(
        "status", help="scheduler state plus the telemetry summary")
    c.add_argument("--coordinator", required=True, metavar="HOST:PORT")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cluster_status)

    p = sub.add_parser("cache",
                       help="inspect and manage a persistent artifact store")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    c = cache_sub.add_parser("stats", help="store size and index statistics")
    c.add_argument("--store", default="", help=store_help)
    c.add_argument("--store-server", default="", metavar="HOST:PORT",
                   help="inspect a store served by `cache serve`; the "
                        "report embeds the server's live counters")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_stats)

    c = cache_sub.add_parser(
        "serve", help="serve a store directory to other processes")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--host", default="127.0.0.1")
    c.add_argument("--port", type=int, default=0,
                   help="0 lets the OS pick; the address is printed")
    flavor_group = c.add_mutually_exclusive_group()
    flavor_group.add_argument(
        "--async", dest="threaded", action="store_false",
        help="selectors event-loop server with streamed bodies (default)")
    flavor_group.add_argument(
        "--threaded", dest="threaded", action="store_true",
        help="thread-per-connection server (the pre-async flavor)")
    c.add_argument("--max-body-bytes", type=int,
                   default=DEFAULT_MAX_BODY_BYTES, metavar="N",
                   help="reject any single request body larger than N "
                        "with a clean error instead of buffering it")
    c.set_defaults(func=cmd_cache_serve, threaded=False)

    c = cache_sub.add_parser("gc",
                             help="bound the store: TTL-expire old entries "
                                  "and/or LRU-evict to a byte budget "
                                  "(pinned manifests kept)")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--max-bytes", type=int, default=None,
                   help="target store size in bytes")
    c.add_argument("--max-age-seconds", type=float, default=None,
                   help="expire entries whose payload blob is older than "
                        "this, regardless of the byte budget")
    c.add_argument("--grace-seconds", type=float, default=0.0,
                   help="never delete blobs younger than this; use > 0 "
                        "when builders may be publishing concurrently")
    c.add_argument("--dry-run", action="store_true",
                   help="price the eviction plan (keys, bytes, "
                        "per-namespace totals) without deleting anything")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_gc)

    c = cache_sub.add_parser("export", help="pack the store into one archive")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--output", required=True, help="archive path (.tar.gz)")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_export)

    c = cache_sub.add_parser("import",
                             help="merge an exported archive into the store")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--input", required=True, help="archive path (.tar.gz)")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_import)

    p = sub.add_parser("telemetry",
                       help="flight-recorder dumps and metrics history")
    telemetry_sub = p.add_subparsers(dest="telemetry_command", required=True)

    c = telemetry_sub.add_parser(
        "report", help="render a flight-recorder crash dump")
    c.add_argument("dump", metavar="CRASH.json",
                   help="crash dump written by the flight recorder")
    c.add_argument("--trace", default="", metavar="TRACE.json",
                   help="Chrome trace export of the same build; events "
                        "are cross-linked to the spans they ran inside")
    c.add_argument("--json", action="store_true",
                   help="print the validated dump as JSON")
    c.set_defaults(func=cmd_telemetry_report)

    c = telemetry_sub.add_parser(
        "history", help="fetch a live process's bounded metrics history")
    c.add_argument("--coordinator", default="", metavar="HOST:PORT",
                   help="read the farm-wide history from a coordinator")
    c.add_argument("--store-server", default="", metavar="HOST:PORT",
                   help="read a store server's sampler history")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_telemetry_history)

    p = sub.add_parser("bench", help="predict a workload run")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--workload", required=True)
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--option", action="append", metavar="KEY=VALUE",
                   help="build option (repeatable)")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
