"""xaas-deploy — the command-line deployment tool (paper Sec. 5.2).

"We introduce a new deployment tool customized for HPC specialization, but
all other steps of container management ... are conducted with standard and
existing container tools." This module is that tool for the simulated world:

    python -m repro.cli discover --system ault23
    python -m repro.cli analyze --app gromacs
    python -m repro.cli intersect --app gromacs --system ault25
    python -m repro.cli ir-build --app lulesh
    python -m repro.cli deploy --app lulesh --system ault01-04 --mode ir
    python -m repro.cli bench --app gromacs --system ault23 --workload testB
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps import default_ir_sweep, gromacs_model, llamacpp_model, lulesh_model
from repro.containers import ArtifactCache, BlobStore
from repro.core import (
    build_ir_container,
    build_source_image,
    default_selection,
    deploy_batch,
    deploy_ir_container,
    deploy_source_container,
    intersect_specializations,
)
from repro.discovery import analyze_build_script, get_system
from repro.discovery.system import SYSTEMS
from repro.perf import build_app, run_workload

APPS = {
    "gromacs": lambda: gromacs_model(scale=0.02),
    "lulesh": lulesh_model,
    "llama.cpp": llamacpp_model,
}


def _app(name: str):
    try:
        return APPS[name]()
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; known: {sorted(APPS)}")


def cmd_discover(args) -> int:
    """Print the system-features JSON (Fig. 4b)."""
    spec = get_system(args.system)
    print(json.dumps(spec.detect_features(), indent=2, sort_keys=True))
    return 0


def cmd_analyze(args) -> int:
    """Print the application's specialization points (Fig. 4a)."""
    app = _app(args.app)
    print(json.dumps(analyze_build_script(app.tree), indent=2, sort_keys=True))
    return 0


def cmd_intersect(args) -> int:
    """Print the common specialization points (Fig. 4c) and the defaults."""
    app = _app(args.app)
    system = get_system(args.system)
    common = intersect_specializations(analyze_build_script(app.tree), system)
    out = common.to_json()
    out["operator_default_selection"] = default_selection(common, system)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def cmd_ir_build(args) -> int:
    """Run the IR-container pipeline and print the dedup statistics."""
    app = _app(args.app)
    configs, _ = default_ir_sweep(args.app)
    result = build_ir_container(app, configs, compile_irs=not args.stats_only)
    if args.json:
        print(json.dumps({
            "app": args.app,
            "stats": result.stats.to_json(),
            "image_digest": result.image.digest,
            "image_size_bytes": result.image.total_size,
        }, indent=2, sort_keys=True))
        return 0
    print(result.stats.summary())
    print(f"image digest: {result.image.digest}")
    print(f"image size: {result.image.total_size} bytes")
    return 0


def cmd_deploy(args) -> int:
    """Deploy a source or IR container to a system and predict a run."""
    app = _app(args.app)
    system = get_system(args.system)
    store = BlobStore()
    if args.mode == "source":
        arch = "arm64" if system.architecture == "arm64" else "amd64"
        sc = build_source_image(app, store, arch=arch)
        dep = deploy_source_container(
            sc, system, store,
            build_host=None if system.supports_container_build
            else get_system("dev-machine"))
        artifact, tag = dep.artifact, dep.tag
        print("selection:", json.dumps(dep.selection, sort_keys=True))
    else:
        configs, chosen = default_ir_sweep(args.app)
        result = build_ir_container(app, configs)
        dep = deploy_ir_container(result, app, chosen, system, store)
        artifact, tag = dep.artifact, dep.tag
        print(f"lowered ISA: {dep.simd_name}")
    print(f"image tag: {tag}")
    if args.workload:
        report = run_workload(artifact, system, args.workload, threads=args.threads)
        print(report)
    return 0


def cmd_deploy_batch(args) -> int:
    """Build one IR container and deploy it to many systems in one batch."""
    from repro.core import IRDeploymentError

    app = _app(args.app)
    systems = []
    for name in args.systems.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            systems.append(get_system(name))
        except KeyError as exc:
            raise SystemExit(exc.args[0])
    if not systems:
        raise SystemExit("--systems needs at least one system name")
    configs, chosen = default_ir_sweep(args.app)
    store = BlobStore()
    cache = ArtifactCache()
    result = build_ir_container(app, configs, store=store, cache=cache)
    try:
        batch = deploy_batch(result, app, chosen, systems, store, cache=cache,
                             skip_incompatible=args.skip_incompatible)
    except IRDeploymentError as exc:
        raise SystemExit(
            f"deploy-batch failed: {exc}\n"
            "(--skip-incompatible deploys to the compatible systems only)")
    if args.json:
        print(json.dumps({
            "app": args.app,
            "plan": {
                "groups": [{"family": g.family, "simd": g.simd_name,
                            "systems": list(g.systems)}
                           for g in batch.plan.groups],
                "incompatible": batch.plan.incompatible,
            },
            "deployments": [{"system": dep.system.name, "tag": dep.tag,
                             "simd": dep.simd_name,
                             "lowered_count": dep.lowered_count}
                            for dep in batch.deployments],
            "lowerings_performed": batch.lowerings_performed,
            "lowerings_reused": batch.lowerings_reused,
            "build_stats": result.stats.to_json(),
        }, indent=2, sort_keys=True))
        return 0
    print(f"plan: {batch.plan.summary()}")
    for dep in batch.deployments:
        print(f"  {dep.system.name:<12} isa={dep.simd_name:<10} tag={dep.tag}")
    for name, reason in batch.plan.incompatible.items():
        print(f"  {name:<12} SKIPPED: {reason}")
    print(f"lowerings: {batch.lowerings_performed} performed, "
          f"{batch.lowerings_reused} reused from cache")
    return 0


def cmd_bench(args) -> int:
    """Build natively and predict one workload run."""
    app = _app(args.app)
    system = get_system(args.system)
    options = dict(kv.split("=", 1) for kv in (args.option or []))
    artifact = build_app(app, options, build_system=system, label="cli")
    report = run_workload(artifact, system, args.workload, threads=args.threads)
    print(report)
    for kernel, seconds in sorted(report.kernel_seconds.items()):
        print(f"  {kernel:<16} {seconds:10.3f} s")
    print(f"  {'library':<16} {report.library_seconds:10.3f} s")
    print(f"  {'gpu':<16} {report.gpu_seconds:10.3f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xaas-deploy",
        description="XaaS container deployment tool (simulated substrates)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="detect a system's features (Fig. 4b)")
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser("analyze", help="extract specialization points (Fig. 4a)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("intersect", help="intersect app x system (Fig. 4c)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_intersect)

    p = sub.add_parser("ir-build", help="run the IR-container pipeline (Fig. 7)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--stats-only", action="store_true",
                   help="dedup analysis without compiling IRs")
    p.add_argument("--json", action="store_true",
                   help="machine-readable pipeline + cache statistics")
    p.set_defaults(func=cmd_ir_build)

    p = sub.add_parser("deploy", help="deploy a container to a system (Figs. 6/8)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--mode", choices=("source", "ir"), default="source")
    p.add_argument("--workload", default="")
    p.add_argument("--threads", type=int, default=16)
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser("deploy-batch",
                       help="deploy one IR container to many systems at once")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--systems", required=True,
                   help="comma-separated system names (e.g. ault23,ault25)")
    p.add_argument("--skip-incompatible", action="store_true",
                   help="skip systems the IR container cannot run on")
    p.add_argument("--json", action="store_true",
                   help="machine-readable plan + reuse statistics")
    p.set_defaults(func=cmd_deploy_batch)

    p = sub.add_parser("bench", help="predict a workload run")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--workload", required=True)
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--option", action="append", metavar="KEY=VALUE",
                   help="build option (repeatable)")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
