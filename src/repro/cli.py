"""xaas-deploy — the command-line deployment tool (paper Sec. 5.2).

"We introduce a new deployment tool customized for HPC specialization, but
all other steps of container management ... are conducted with standard and
existing container tools." This module is that tool for the simulated world:

    python -m repro.cli discover --system ault23
    python -m repro.cli analyze --app gromacs
    python -m repro.cli intersect --app gromacs --system ault25
    python -m repro.cli ir-build --app lulesh
    python -m repro.cli deploy --app lulesh --system ault01-04 --mode ir
    python -m repro.cli bench --app gromacs --system ault23 --workload testB

Build commands accept ``--store DIR`` to work against a persistent artifact
store (sharded file backend): repeated builds — including in fresh
processes — replay preprocessed text, IR modules, and lowered machine
modules from disk instead of recomputing them. The store is managed by the
``cache`` subcommands::

    python -m repro.cli ir-build --app lulesh --store /tmp/xaas-store
    python -m repro.cli deploy --app lulesh --system ault23 --mode ir \
        --store /tmp/xaas-store --json
    python -m repro.cli cache stats --store /tmp/xaas-store --json
    python -m repro.cli cache gc --store /tmp/xaas-store --max-bytes 1000000
    python -m repro.cli cache export --store /tmp/xaas-store --output warm.tar.gz
    python -m repro.cli cache import --store /tmp/other-store --input warm.tar.gz
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps import default_ir_sweep, gromacs_model, llamacpp_model, lulesh_model
from repro.containers import ArtifactCache, BlobStore
from repro.store import FileBackend, export_store, import_store
from repro.core import (
    build_ir_container,
    build_source_image,
    default_selection,
    deploy_batch,
    deploy_ir_container,
    deploy_source_container,
    intersect_specializations,
)
from repro.discovery import analyze_build_script, get_system
from repro.discovery.system import SYSTEMS
from repro.perf import build_app, run_workload

APPS = {
    "gromacs": lambda: gromacs_model(scale=0.02),
    "lulesh": lulesh_model,
    "llama.cpp": llamacpp_model,
}


def _app(name: str):
    try:
        return APPS[name]()
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; known: {sorted(APPS)}")


def _open_store(args) -> tuple[BlobStore, ArtifactCache]:
    """The build substrate: persistent when ``--store DIR`` is given.

    With a file-backed store, the ArtifactCache loads its access-ordered
    index from disk — a fresh process starts warm from whatever earlier
    builds persisted.
    """
    store_dir = getattr(args, "store", None)
    store = BlobStore(FileBackend(store_dir)) if store_dir else BlobStore()
    return store, ArtifactCache(store)


def _cache_delta(before: dict, after: dict) -> dict:
    """Per-namespace {hits, misses} traffic between two cache snapshots."""
    out: dict[str, dict[str, int]] = {}
    for namespace, (hits, misses) in after.items():
        prev_hits, prev_misses = before.get(namespace, (0, 0))
        if hits - prev_hits or misses - prev_misses:
            out[namespace] = {"hits": hits - prev_hits,
                              "misses": misses - prev_misses}
    return out


def cmd_discover(args) -> int:
    """Print the system-features JSON (Fig. 4b)."""
    spec = get_system(args.system)
    print(json.dumps(spec.detect_features(), indent=2, sort_keys=True))
    return 0


def cmd_analyze(args) -> int:
    """Print the application's specialization points (Fig. 4a)."""
    app = _app(args.app)
    print(json.dumps(analyze_build_script(app.tree), indent=2, sort_keys=True))
    return 0


def cmd_intersect(args) -> int:
    """Print the common specialization points (Fig. 4c) and the defaults."""
    app = _app(args.app)
    system = get_system(args.system)
    common = intersect_specializations(analyze_build_script(app.tree), system)
    out = common.to_json()
    out["operator_default_selection"] = default_selection(common, system)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def cmd_ir_build(args) -> int:
    """Run the IR-container pipeline and print the dedup statistics."""
    app = _app(args.app)
    configs, _ = default_ir_sweep(args.app)
    store, cache = _open_store(args)
    result = build_ir_container(app, configs, store=store, cache=cache,
                                compile_irs=not args.stats_only)
    if args.store and not args.stats_only:
        # Pin the image manifest: GC follows digest references inside
        # pinned blobs, so config and layers stay deployable too.
        cache.pin(f"image/{args.app}", result.image.digest)
    if args.json:
        print(json.dumps({
            "app": args.app,
            "stats": result.stats.to_json(),
            "image_digest": result.image.digest,
            "image_size_bytes": result.image.total_size,
        }, indent=2, sort_keys=True))
        return 0
    print(result.stats.summary())
    print(f"image digest: {result.image.digest}")
    print(f"image size: {result.image.total_size} bytes")
    return 0


def cmd_deploy(args) -> int:
    """Deploy a source or IR container to a system and predict a run."""
    app = _app(args.app)
    system = get_system(args.system)
    store, cache = _open_store(args)
    if args.mode == "source":
        arch = "arm64" if system.architecture == "arm64" else "amd64"
        sc = build_source_image(app, store, arch=arch)
        dep = deploy_source_container(
            sc, system, store,
            build_host=None if system.supports_container_build
            else get_system("dev-machine"))
        artifact, tag = dep.artifact, dep.tag
        build_stats = None
        deploy_delta: dict = {}
        if not args.json:
            print("selection:", json.dumps(dep.selection, sort_keys=True))
    else:
        configs, chosen = default_ir_sweep(args.app)
        result = build_ir_container(app, configs, store=store, cache=cache)
        before = cache.snapshot()
        dep = deploy_ir_container(result, app, chosen, system, store,
                                  cache=cache)
        artifact, tag = dep.artifact, dep.tag
        deploy_delta = _cache_delta(before, cache.snapshot())
        build_stats = result.stats.to_json()
        if args.store:
            cache.pin(f"image/{args.app}", result.image.digest)
            cache.pin(f"deploy/{args.app}@{system.name}", dep.image.digest)
        if not args.json:
            print(f"lowered ISA: {dep.simd_name}")
    if args.json:
        blob = {
            "app": args.app, "system": system.name, "mode": args.mode,
            "tag": dep.tag,
            # The cold-start acceptance check: a warm persistent store
            # makes every build op zero and every deploy lookup a hit.
            "deploy_cache": deploy_delta,
        }
        if build_stats is not None:
            blob["build_stats"] = build_stats
            blob["simd"] = dep.simd_name
            blob["lowered_count"] = dep.lowered_count
        if args.workload:
            report = run_workload(artifact, system, args.workload,
                                  threads=args.threads)
            blob["workload"] = {
                "name": args.workload,
                "total_seconds": report.total_seconds,
                "kernel_seconds": dict(sorted(report.kernel_seconds.items())),
                "library_seconds": report.library_seconds,
                "gpu_seconds": report.gpu_seconds,
            }
        print(json.dumps(blob, indent=2, sort_keys=True))
        return 0
    print(f"image tag: {tag}")
    if args.workload:
        report = run_workload(artifact, system, args.workload, threads=args.threads)
        print(report)
    return 0


def cmd_deploy_batch(args) -> int:
    """Build one IR container and deploy it to many systems in one batch."""
    from repro.core import IRDeploymentError

    app = _app(args.app)
    systems = []
    for name in args.systems.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            systems.append(get_system(name))
        except KeyError as exc:
            raise SystemExit(exc.args[0])
    if not systems:
        raise SystemExit("--systems needs at least one system name")
    configs, chosen = default_ir_sweep(args.app)
    store, cache = _open_store(args)
    result = build_ir_container(app, configs, store=store, cache=cache)
    if args.store:
        cache.pin(f"image/{args.app}", result.image.digest)
    try:
        batch = deploy_batch(result, app, chosen, systems, store, cache=cache,
                             skip_incompatible=args.skip_incompatible)
    except IRDeploymentError as exc:
        raise SystemExit(
            f"deploy-batch failed: {exc}\n"
            "(--skip-incompatible deploys to the compatible systems only)")
    if args.json:
        print(json.dumps({
            "app": args.app,
            "plan": {
                "groups": [{"family": g.family, "simd": g.simd_name,
                            "systems": list(g.systems)}
                           for g in batch.plan.groups],
                "incompatible": batch.plan.incompatible,
            },
            "deployments": [{"system": dep.system.name, "tag": dep.tag,
                             "simd": dep.simd_name,
                             "lowered_count": dep.lowered_count}
                            for dep in batch.deployments],
            "lowerings_performed": batch.lowerings_performed,
            "lowerings_reused": batch.lowerings_reused,
            "build_stats": result.stats.to_json(),
        }, indent=2, sort_keys=True))
        return 0
    print(f"plan: {batch.plan.summary()}")
    for dep in batch.deployments:
        print(f"  {dep.system.name:<12} isa={dep.simd_name:<10} tag={dep.tag}")
    for name, reason in batch.plan.incompatible.items():
        print(f"  {name:<12} SKIPPED: {reason}")
    print(f"lowerings: {batch.lowerings_performed} performed, "
          f"{batch.lowerings_reused} reused from cache")
    return 0


def _cache_for_store(args) -> ArtifactCache:
    if not args.store:
        raise SystemExit("cache commands need --store DIR")
    return ArtifactCache(BlobStore(FileBackend(args.store)))


def cmd_cache_stats(args) -> int:
    """Report store size, index entries per namespace, and pins."""
    stats = _cache_for_store(args).stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"blobs: {stats['blobs']} ({stats['total_bytes']} bytes)")
    print(f"index entries: {stats['entries']}")
    for namespace, count in stats["entries_by_namespace"].items():
        print(f"  {namespace:<12} {count}")
    for name, digest in sorted(stats["pins"].items()):
        print(f"pin {name} -> {digest}")
    return 0


def cmd_cache_gc(args) -> int:
    """LRU-evict until the store fits ``--max-bytes``; pins are sacred."""
    report = _cache_for_store(args).gc(args.max_bytes,
                                       grace_seconds=args.grace_seconds)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    print(f"store: {report.before_bytes} -> {report.after_bytes} bytes "
          f"(budget {report.max_bytes}, freed {report.freed_bytes})")
    print(f"evicted {report.evicted_entries} entries, "
          f"deleted {report.deleted_blobs} blobs, "
          f"{report.pinned_blobs} pinned blobs kept")
    if not report.within_budget:
        print("warning: pinned blobs alone exceed the budget")
    return 0


def cmd_cache_export(args) -> int:
    """Pack the whole store (blobs + refs) into one archive."""
    backend = FileBackend(args.store) if args.store else None
    if backend is None:
        raise SystemExit("cache commands need --store DIR")
    summary = export_store(backend, args.output)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"exported {summary['blobs']} blobs "
          f"({summary['blob_bytes']} bytes), {summary['refs']} refs "
          f"-> {summary['path']}")
    return 0


def cmd_cache_import(args) -> int:
    """Merge an exported archive into the store (idempotent by digest)."""
    if not args.store:
        raise SystemExit("cache commands need --store DIR")
    summary = import_store(FileBackend(args.store), args.input)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"imported {summary['blobs_added']} blobs "
          f"({summary['blobs_skipped']} already present), "
          f"merged {summary['refs_merged']} refs from {summary['path']}")
    return 0


def cmd_bench(args) -> int:
    """Build natively and predict one workload run."""
    app = _app(args.app)
    system = get_system(args.system)
    options = dict(kv.split("=", 1) for kv in (args.option or []))
    artifact = build_app(app, options, build_system=system, label="cli")
    report = run_workload(artifact, system, args.workload, threads=args.threads)
    print(report)
    for kernel, seconds in sorted(report.kernel_seconds.items()):
        print(f"  {kernel:<16} {seconds:10.3f} s")
    print(f"  {'library':<16} {report.library_seconds:10.3f} s")
    print(f"  {'gpu':<16} {report.gpu_seconds:10.3f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xaas-deploy",
        description="XaaS container deployment tool (simulated substrates)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="detect a system's features (Fig. 4b)")
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser("analyze", help="extract specialization points (Fig. 4a)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("intersect", help="intersect app x system (Fig. 4c)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_intersect)

    store_help = "persistent artifact-store directory (file backend)"

    p = sub.add_parser("ir-build", help="run the IR-container pipeline (Fig. 7)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--stats-only", action="store_true",
                   help="dedup analysis without compiling IRs")
    p.add_argument("--store", default="", help=store_help)
    p.add_argument("--json", action="store_true",
                   help="machine-readable pipeline + cache statistics")
    p.set_defaults(func=cmd_ir_build)

    p = sub.add_parser("deploy", help="deploy a container to a system (Figs. 6/8)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--mode", choices=("source", "ir"), default="source")
    p.add_argument("--workload", default="")
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--store", default="", help=store_help)
    p.add_argument("--json", action="store_true",
                   help="machine-readable tag + build/deploy cache statistics")
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser("deploy-batch",
                       help="deploy one IR container to many systems at once")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--systems", required=True,
                   help="comma-separated system names (e.g. ault23,ault25)")
    p.add_argument("--skip-incompatible", action="store_true",
                   help="skip systems the IR container cannot run on")
    p.add_argument("--store", default="", help=store_help)
    p.add_argument("--json", action="store_true",
                   help="machine-readable plan + reuse statistics")
    p.set_defaults(func=cmd_deploy_batch)

    p = sub.add_parser("cache",
                       help="inspect and manage a persistent artifact store")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    c = cache_sub.add_parser("stats", help="store size and index statistics")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_stats)

    c = cache_sub.add_parser("gc",
                             help="LRU-evict entries until the store fits a "
                                  "byte budget (pinned manifests kept)")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--max-bytes", type=int, required=True,
                   help="target store size in bytes")
    c.add_argument("--grace-seconds", type=float, default=0.0,
                   help="never delete blobs younger than this; use > 0 "
                        "when builders may be publishing concurrently")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_gc)

    c = cache_sub.add_parser("export", help="pack the store into one archive")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--output", required=True, help="archive path (.tar.gz)")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_export)

    c = cache_sub.add_parser("import",
                             help="merge an exported archive into the store")
    c.add_argument("--store", required=True, help=store_help)
    c.add_argument("--input", required=True, help="archive path (.tar.gz)")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_cache_import)

    p = sub.add_parser("bench", help="predict a workload run")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--workload", required=True)
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--option", action="append", metavar="KEY=VALUE",
                   help="build option (repeatable)")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
