"""xaas-deploy — the command-line deployment tool (paper Sec. 5.2).

"We introduce a new deployment tool customized for HPC specialization, but
all other steps of container management ... are conducted with standard and
existing container tools." This module is that tool for the simulated world:

    python -m repro.cli discover --system ault23
    python -m repro.cli analyze --app gromacs
    python -m repro.cli intersect --app gromacs --system ault25
    python -m repro.cli ir-build --app lulesh
    python -m repro.cli deploy --app lulesh --system ault01-04 --mode ir
    python -m repro.cli bench --app gromacs --system ault23 --workload testB
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps import gromacs_model, llamacpp_model, lulesh_configs, lulesh_model
from repro.containers import BlobStore
from repro.core import (
    build_ir_container,
    build_source_image,
    default_selection,
    deploy_ir_container,
    deploy_source_container,
    intersect_specializations,
)
from repro.discovery import analyze_build_script, get_system
from repro.discovery.system import SYSTEMS
from repro.perf import build_app, run_workload

APPS = {
    "gromacs": lambda: gromacs_model(scale=0.02),
    "lulesh": lulesh_model,
    "llama.cpp": llamacpp_model,
}


def _app(name: str):
    try:
        return APPS[name]()
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; known: {sorted(APPS)}")


def cmd_discover(args) -> int:
    """Print the system-features JSON (Fig. 4b)."""
    spec = get_system(args.system)
    print(json.dumps(spec.detect_features(), indent=2, sort_keys=True))
    return 0


def cmd_analyze(args) -> int:
    """Print the application's specialization points (Fig. 4a)."""
    app = _app(args.app)
    print(json.dumps(analyze_build_script(app.tree), indent=2, sort_keys=True))
    return 0


def cmd_intersect(args) -> int:
    """Print the common specialization points (Fig. 4c) and the defaults."""
    app = _app(args.app)
    system = get_system(args.system)
    common = intersect_specializations(analyze_build_script(app.tree), system)
    out = common.to_json()
    out["operator_default_selection"] = default_selection(common, system)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def cmd_ir_build(args) -> int:
    """Run the IR-container pipeline and print the dedup statistics."""
    app = _app(args.app)
    if args.app == "lulesh":
        configs = lulesh_configs()
    else:
        from repro.apps import five_isa_configs
        configs = five_isa_configs()
    result = build_ir_container(app, configs, compile_irs=not args.stats_only)
    print(result.stats.summary())
    print(f"image digest: {result.image.digest}")
    print(f"image size: {result.image.total_size} bytes")
    return 0


def cmd_deploy(args) -> int:
    """Deploy a source or IR container to a system and predict a run."""
    app = _app(args.app)
    system = get_system(args.system)
    store = BlobStore()
    if args.mode == "source":
        arch = "arm64" if system.architecture == "arm64" else "amd64"
        sc = build_source_image(app, store, arch=arch)
        dep = deploy_source_container(
            sc, system, store,
            build_host=None if system.supports_container_build
            else get_system("dev-machine"))
        artifact, tag = dep.artifact, dep.tag
        print("selection:", json.dumps(dep.selection, sort_keys=True))
    else:
        if args.app == "lulesh":
            configs = lulesh_configs()
            chosen = {"WITH_MPI": "OFF", "WITH_OPENMP": "ON"}
        else:
            from repro.apps import five_isa_configs
            configs = five_isa_configs()
            chosen = configs[-1]
        result = build_ir_container(app, configs)
        dep = deploy_ir_container(result, app, chosen, system, store)
        artifact, tag = dep.artifact, dep.tag
        print(f"lowered ISA: {dep.simd_name}")
    print(f"image tag: {tag}")
    if args.workload:
        report = run_workload(artifact, system, args.workload, threads=args.threads)
        print(report)
    return 0


def cmd_bench(args) -> int:
    """Build natively and predict one workload run."""
    app = _app(args.app)
    system = get_system(args.system)
    options = dict(kv.split("=", 1) for kv in (args.option or []))
    artifact = build_app(app, options, build_system=system, label="cli")
    report = run_workload(artifact, system, args.workload, threads=args.threads)
    print(report)
    for kernel, seconds in sorted(report.kernel_seconds.items()):
        print(f"  {kernel:<16} {seconds:10.3f} s")
    print(f"  {'library':<16} {report.library_seconds:10.3f} s")
    print(f"  {'gpu':<16} {report.gpu_seconds:10.3f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xaas-deploy",
        description="XaaS container deployment tool (simulated substrates)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="detect a system's features (Fig. 4b)")
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser("analyze", help="extract specialization points (Fig. 4a)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("intersect", help="intersect app x system (Fig. 4c)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.set_defaults(func=cmd_intersect)

    p = sub.add_parser("ir-build", help="run the IR-container pipeline (Fig. 7)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--stats-only", action="store_true",
                   help="dedup analysis without compiling IRs")
    p.set_defaults(func=cmd_ir_build)

    p = sub.add_parser("deploy", help="deploy a container to a system (Figs. 6/8)")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--mode", choices=("source", "ir"), default="source")
    p.add_argument("--workload", default="")
    p.add_argument("--threads", type=int, default=16)
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser("bench", help="predict a workload run")
    p.add_argument("--app", required=True, choices=sorted(APPS))
    p.add_argument("--system", required=True, choices=sorted(SYSTEMS))
    p.add_argument("--workload", required=True)
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--option", action="append", metavar="KEY=VALUE",
                   help="build option (repeatable)")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
