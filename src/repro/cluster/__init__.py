"""The build-farm cluster: coordinator/worker scheduling over a shared store.

The single-process pipeline (:mod:`repro.pipeline`) runs one build on one
core; this package fans the same stage graph out across worker processes
that share one artifact store (:mod:`repro.store`). The division of labor:

* the **coordinator** (:mod:`repro.cluster.coordinator`) holds the job
  graph — stage-level jobs gated on artifact keys — behind a
  work-stealing queue with leases, crash re-queueing, and idempotent
  completion;
* **workers** (:mod:`repro.cluster.worker`) pull jobs and run the actual
  pipeline stages, publishing every artifact through the store's
  content-addressed cache — the store *is* the data plane, the wire
  carries keys and counts only;
* the **client** (:mod:`repro.cluster.client`) plans a build, probes the
  store's ``lower`` index so already-lowered ISAs deploy first
  (store-aware scheduling), and aggregates the results.

Entry points: ``repro.cli cluster serve|worker|build``, the
:class:`LocalCluster` helper, and ``deploy-batch --workers N``.
"""

from repro.cluster.client import (
    ClusterBuildReport,
    CoordinatorClient,
    CoordinatorUnreachable,
    LocalCluster,
    cluster_build,
)
from repro.cluster.coordinator import Coordinator, JobQueue
from repro.cluster.jobs import BuildSpec, ClusterError, Job
from repro.cluster.journal import Journal
from repro.cluster.worker import ClusterWorker

__all__ = [
    "BuildSpec", "ClusterBuildReport", "ClusterError",
    "ClusterWorker", "Coordinator", "CoordinatorClient",
    "CoordinatorUnreachable", "Job", "JobQueue", "Journal",
    "LocalCluster", "cluster_build",
]
