"""Submitter side of the build farm: plan, probe the store, submit, wait.

:func:`cluster_build` is the cluster analogue of
:func:`repro.pipeline.batch.deploy_batch`: it decomposes one
"build this app, deploy it to these systems" request into stage-level jobs
(:mod:`repro.cluster.jobs`), submits them to a coordinator, and aggregates
the results. Scheduling is **store-aware**: before planning the deployment
phase, the client probes the shared store's ``lower`` index
(:func:`repro.core.deployment.lowering_cache_keys`); ISA groups whose
machine modules are already present get *no* lower job — their artifact
key is declared done at submit, their systems' deploy jobs are ready
immediately and run at the front, overlapping with the cold ISAs' compiles.

:class:`LocalCluster` packages coordinator + N workers for tests, the
``deploy-batch --workers N`` CLI path (worker threads sharing one
in-process store), and the benchmarks (worker subprocesses sharing one
file-backed store — real multi-core parallelism).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field, replace

from repro.cluster.coordinator import Coordinator
from repro.cluster.jobs import (
    BuildSpec,
    ClusterError,
    Job,
    deploy_job,
    ir_compile_job,
    lower_job,
    lower_key,
    preprocess_job,
)
from repro.cluster.worker import ClusterWorker
from repro.containers.store import ArtifactCache, BlobStore
from repro.store.wire import WireError, round_trip
from repro.telemetry import events as _events
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.util.retry import RetryPolicy


class CoordinatorUnreachable(ClusterError):
    """A wire-level failure reaching the coordinator (refused, reset,
    timeout, broken frame) — the retryable kind, unlike semantic errors
    the coordinator itself returned. Subclasses :class:`ClusterError` so
    every existing handler (worker backoff, CLI messages) still fires."""


#: Coordinator ops ride the same backoff envelope as store ops: enough
#: attempts to span a coordinator restart, bounded so a genuinely dead
#: farm surfaces within the deadline.
DEFAULT_COORDINATOR_RETRY = RetryPolicy(max_attempts=6, base_delay=0.1,
                                        max_delay=2.0, deadline=30.0)


class CoordinatorClient:
    """One round-trip per operation against a coordinator server.

    Every operation the coordinator applies idempotently retries through
    ``retry`` on wire-level failures: reads trivially, ``renew`` (lease
    extension), ``complete``/``fail`` (duplicate terminal reports are
    acknowledged-and-ignored server-side), ``fetch`` (a lost response
    costs one lease expiry, never a lost job), and ``submit`` (a resend
    that hits "duplicate job id" proves the first send landed — treated
    as success). Only the destructive telemetry drain never retries.
    Each retry bumps the ``cluster.reconnects`` counter in ``registry``
    — workers push it over heartbeats, so `cluster top` shows who is
    riding out a flaky coordinator link.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retry: RetryPolicy | None = None,
                 registry: MetricsRegistry | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_COORDINATOR_RETRY
        self.registry = registry if registry is not None else MetricsRegistry()
        self._reconnects = self.registry.counter("cluster.reconnects")
        #: Lease length reported by the last successful fetch; workers
        #: pace their renewal heartbeat from it.
        self.lease_seconds: float | None = None

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Adopt the caller's registry. Workers call this so the
        reconnect counter rides their heartbeat deltas farm-ward instead
        of sitting in a private registry nobody scrapes."""
        self.registry = registry
        self._reconnects = registry.counter("cluster.reconnects")

    #: Header fields bulky enough to overflow the one-line header frame
    #: (a traced job can push hundreds of spans); they ride a JSON body.
    _BODY_FIELDS = ("spans", "metrics")

    def _call(self, header: dict, retryable: bool = False,
              on_retry=None) -> dict:
        body = b""
        extra = {key: header[key] for key in self._BODY_FIELDS
                 if header.get(key) is not None}
        if extra:
            header = {key: value for key, value in header.items()
                      if key not in extra}
            body = json.dumps(extra).encode("utf-8")
            header["size"] = len(body)
            header["body_json"] = True
        cmd = str(header.get("cmd", ""))

        def exchange() -> dict:
            try:
                resp, payload = round_trip(self.host, self.port, header, body,
                                           timeout=self.timeout)
            except (WireError, OSError) as exc:
                # OSError covers the pre-framing failures (connection
                # refused, reset, timeout) — they must hit the same
                # ClusterError paths (worker backoff, CLI error message)
                # as a broken frame.
                raise CoordinatorUnreachable(
                    f"coordinator unreachable: {exc}") from exc
            if resp.pop("body_json", False) and payload:
                # Bulk response fields (telemetry span drains) arrive as a
                # JSON body; fold them back into the response dict.
                resp.update(json.loads(payload.decode("utf-8")))
            if not resp.get("ok"):
                raise ClusterError(resp.get("error", "coordinator error"))
            return resp

        if not (retryable and self.retry.enabled):
            return exchange()

        def note(attempt: int, delay: float, exc: Exception) -> None:
            self._reconnects.inc()
            _events.emit("warn", "coordinator op retry", op=cmd,
                         attempt=attempt, delay=round(delay, 3),
                         error=str(exc))
            if on_retry is not None:
                on_retry(attempt, delay, exc)

        return self.retry.call(exchange, retry_on=(CoordinatorUnreachable,),
                               on_retry=note)

    def ping(self) -> bool:
        return self._call({"cmd": "ping"}, retryable=True).get("server") == \
            "cluster-coordinator"

    def submit(self, jobs: list[Job], done_keys: tuple[str, ...] = ()) -> int:
        resent = False

        def saw_resend(_attempt: int, _delay: float, _exc: Exception) -> None:
            nonlocal resent
            resent = True

        try:
            return int(self._call({
                "cmd": "submit", "jobs": [job.to_json() for job in jobs],
                "done_keys": list(done_keys)},
                retryable=True, on_retry=saw_resend)["submitted"])
        except ClusterError as exc:
            # A retried submit answering "duplicate job id" means the
            # first send was applied and only its *response* was lost —
            # the batch is registered; report it as submitted.
            if resent and "duplicate job id" in str(exc):
                return len(jobs)
            raise

    def fetch(self, worker_id: str, metrics: dict | None = None) -> Job | None:
        header: dict = {"cmd": "fetch", "worker": worker_id}
        if metrics:
            header["metrics"] = metrics
        resp = self._call(header, retryable=True)
        if resp.get("idle"):
            return None
        if resp.get("lease_seconds") is not None:
            self.lease_seconds = float(resp["lease_seconds"])
        return Job.from_json(resp["job"])

    def renew(self, job_id: str, worker_id: str,
              metrics: dict | None = None) -> bool:
        header: dict = {"cmd": "renew", "job_id": job_id, "worker": worker_id}
        if metrics:
            header["metrics"] = metrics
        return bool(self._call(header, retryable=True)["renewed"])

    def complete(self, job_id: str, worker_id: str, result: dict,
                 spans: list | None = None,
                 metrics: dict | None = None) -> bool:
        header: dict = {"cmd": "complete", "job_id": job_id,
                        "worker": worker_id, "result": result}
        if spans:
            header["spans"] = spans
        if metrics:
            header["metrics"] = metrics
        return bool(self._call(header, retryable=True)["applied"])

    def fail(self, job_id: str, worker_id: str, error: str,
             spans: list | None = None, metrics: dict | None = None) -> str:
        header: dict = {"cmd": "fail", "job_id": job_id,
                        "worker": worker_id, "error": error}
        if spans:
            header["spans"] = spans
        if metrics:
            header["metrics"] = metrics
        return str(self._call(header, retryable=True)["state"])

    def status(self, job_ids: list[str] | None = None) -> dict[str, dict]:
        header: dict = {"cmd": "status"}
        if job_ids is not None:
            header["job_ids"] = list(job_ids)
        return self._call(header, retryable=True)["jobs"]

    def stats(self) -> dict:
        return self._call({"cmd": "stats"}, retryable=True)["stats"]

    def telemetry(self, drain_spans: bool = False,
                  worker_metrics: bool = False) -> dict:
        """The coordinator's live farm aggregates (the `cluster top`
        payload): ``{"telemetry": {...}, "spans": [...], "history":
        {...}}``. With ``drain_spans`` the returned spans are removed
        from the coordinator's buffer (one-shot collection for trace
        export); ``history`` is the heartbeat-fed farm metric history."""
        header: dict = {"cmd": "telemetry"}
        if drain_spans:
            header["drain_spans"] = True
        if worker_metrics:
            header["worker_metrics"] = True
        # A drain is a destructive read — a resend after a lost response
        # would silently discard the first drain's spans.
        resp = self._call(header, retryable=not drain_spans)
        return {"telemetry": resp.get("telemetry", {}),
                "spans": resp.get("spans", []),
                "history": resp.get("history", {})}

    def goodbye(self, worker_id: str) -> int:
        return int(self._call({"cmd": "goodbye",
                               "worker": worker_id})["requeued"])

    #: wait() polling backs off geometrically to this cap — a multi-minute
    #: farm build should not cost 50 status round-trips a second.
    MAX_WAIT_POLL_SECONDS = 0.5

    def wait(self, job_ids: list[str], timeout: float = 300.0,
             poll_seconds: float = 0.02) -> dict[str, dict]:
        """Block until every job is done; raise on any terminal failure.

        ``timeout`` is a *stall* timeout, not a wall-clock budget: the
        deadline resets every time another job completes, so an
        arbitrarily large healthy wave never trips it — only a wave in
        which nothing finishes for ``timeout`` seconds does.

        A coordinator outage mid-wait does not raise: the poll keeps
        reconnecting with backoff (on top of each status call's own
        retries) until the stall deadline — a restarted-and-resumed
        coordinator picks the build back up transparently.
        """
        deadline = time.monotonic() + timeout
        delay = poll_seconds
        done_count = -1
        while True:
            try:
                jobs = self.status(job_ids)
            except CoordinatorUnreachable as exc:
                if time.monotonic() > deadline:
                    raise ClusterError(
                        f"coordinator unreachable for {timeout:.0f}s "
                        f"while waiting on {len(job_ids)} job(s): {exc}"
                    ) from exc
                self._reconnects.inc()
                _events.emit("warn", "coordinator unreachable; "
                             "waiting to reconnect", error=str(exc),
                             retry_in=round(delay, 3))
                time.sleep(delay)
                delay = min(delay * 2, self.MAX_WAIT_POLL_SECONDS)
                continue
            failed = {job_id: rec for job_id, rec in jobs.items()
                      if rec["state"] == "failed"}
            if failed:
                details = "; ".join(
                    f"{job_id}: {rec['error']}" for job_id, rec
                    in sorted(failed.items()))
                raise ClusterError(f"{len(failed)} job(s) failed: {details}")
            if all(rec["state"] == "done" for rec in jobs.values()):
                return jobs
            now_done = sum(rec["state"] == "done" for rec in jobs.values())
            if now_done > done_count:
                done_count = now_done
                deadline = time.monotonic() + timeout
            if time.monotonic() > deadline:
                pending = sorted((job_id, rec) for job_id, rec in jobs.items()
                                 if rec["state"] != "done")
                details = "; ".join(
                    f"{job_id} [{rec['state']}"
                    + (f": {rec['error']}" if rec["error"] else "") + "]"
                    for job_id, rec in pending[:5])
                raise ClusterError(
                    f"timed out waiting for {len(pending)} job(s): {details}")
            time.sleep(delay)
            delay = min(delay * 2, self.MAX_WAIT_POLL_SECONDS)


# -- cluster build -------------------------------------------------------------


@dataclass
class ClusterBuildReport:
    """Everything one ``cluster build`` produced, keys and counts only."""

    app: str
    plan_summary: str
    image_digest: str
    # One entry per deployed system, in the order the systems were requested.
    deployments: list[dict] = field(default_factory=list)
    # ISA groups as {"family", "simd", "systems"} dicts — the same shape
    # `deploy-batch --json` prints, so the farm path stays drop-in.
    plan_groups: list[dict] = field(default_factory=list)
    incompatible: dict[str, str] = field(default_factory=dict)
    warm_groups: list[str] = field(default_factory=list)
    cold_groups: list[str] = field(default_factory=list)
    lowerings_performed: int = 0
    lowerings_reused: int = 0
    # Store-stats ledger: new ``lower`` index entries this run. Equal to
    # ``lowerings_performed`` exactly when no worker duplicated a lowering.
    lower_entries_created: int = 0
    build_stats: dict = field(default_factory=dict)
    jobs: dict[str, dict] = field(default_factory=dict)

    @property
    def duplicate_lowerings(self) -> int:
        return self.lowerings_performed - self.lower_entries_created

    def to_json(self) -> dict:
        return {
            "app": self.app,
            # Same "plan" object shape as `deploy-batch --json` — scripts
            # reading plan.groups/plan.incompatible see one schema on the
            # classic and farm paths alike.
            "plan": {"summary": self.plan_summary,
                     "groups": self.plan_groups,
                     "incompatible": self.incompatible},
            "image_digest": self.image_digest,
            "deployments": self.deployments,
            "incompatible": self.incompatible,
            "warm_groups": self.warm_groups,
            "cold_groups": self.cold_groups,
            "lowerings_performed": self.lowerings_performed,
            "lowerings_reused": self.lowerings_reused,
            "lower_entries_created": self.lower_entries_created,
            "duplicate_lowerings": self.duplicate_lowerings,
            "build_stats": self.build_stats,
            "jobs": self.jobs,
        }


def _lower_entry_count(cache: ArtifactCache) -> int:
    return sum(1 for record in cache.entries().values()
               if record.namespace == "lower")


def cluster_build(client: CoordinatorClient, app_name: str,
                  system_names: list[str], store: BlobStore,
                  cache: ArtifactCache | None = None,
                  configs: list[dict] | None = None,
                  options: dict[str, str] | None = None,
                  scale: float | None = None,
                  simd_override: str | None = None,
                  skip_incompatible: bool = False,
                  counters_shared_with_workers: bool = False,
                  job_timeout: float = 300.0) -> ClusterBuildReport:
    """Build one IR container and deploy it to many systems via the farm.

    The client performs no compilation itself: it submits the sharded
    preprocess/ir-compile jobs, then *replays* the warm build from the
    shared store (deserialization only) to obtain the manifests it needs
    for deployment planning, probes the ``lower`` index for warm ISAs, and
    submits the lower/deploy wave. All artifacts flow through ``store``.

    ``counters_shared_with_workers`` declares that ``cache`` is the very
    object the workers publish through (thread-mode
    :class:`LocalCluster`); lowering totals then come from this cache's
    own hit/miss counters instead of per-job sums, which overlapping jobs
    on other threads would otherwise skew.
    """
    from repro.apps import default_ir_sweep
    from repro.core import build_ir_container, lowering_cache_keys
    from repro.discovery import get_system
    from repro.pipeline.batch import plan_batch

    if cache is None:
        cache = ArtifactCache(store)
    if not system_names:
        raise ClusterError("cluster build needs at least one system")
    if configs is None or options is None:
        default_configs, default_options = default_ir_sweep(app_name)
        configs = default_configs if configs is None else configs
        options = default_options if options is None else options
    build = BuildSpec(app=app_name, configs=tuple(configs), scale=scale)
    app = build.resolve_app()
    systems = [get_system(name) for name in system_names]

    # Job ids AND artifact keys are namespaced per submission. Ids so that
    # repeated builds against one long-lived coordinator never collide;
    # keys because the coordinator's published-key set is *memory of this
    # batch's sequencing*, not of store contents — the store is probed
    # fresh each build (a key published last week says nothing once GC has
    # evicted the artifacts behind it), so a stale unscoped key would let
    # gated deploys run before their lower job.
    batch_id = uuid.uuid4().hex[:8]

    def _batched(jobs: list[Job]) -> list[Job]:
        # Captured at submission: when the caller opened a recorded span
        # (`cluster build --trace`), every job carries the trace context
        # and the whole farm's spans correlate under one trace id.
        ctx = _trace.current()
        return [replace(job, job_id=f"{batch_id}/{job.job_id}",
                        requires=tuple(f"{batch_id}/{key}"
                                       for key in job.requires),
                        produces=tuple(f"{batch_id}/{key}"
                                       for key in job.produces),
                        trace=ctx)
                for job in jobs]

    # Phase 1+2: sharded configure/preprocess/ir-compile, one job pair per
    # configuration. The shared store dedups cross-config work: the first
    # worker to publish an artifact wins, everyone else hits.
    with _trace.span("cluster.build.stage_wave",
                     attrs={"app": app_name, "configs": len(configs)}):
        stage_jobs = _batched([preprocess_job(build, cfg) for cfg in configs]
                              + [ir_compile_job(build, cfg) for cfg in configs])
        client.submit(stage_jobs)
        job_results = client.wait([job.job_id for job in stage_jobs],
                                  timeout=job_timeout)

    # Replay the warm build locally: every artifact now resolves from the
    # store, so this is deserialization, not compilation. Sync the index
    # with the shared ref first — the workers published through their own
    # cache handles, and without the merge this client would miss every
    # entry and silently redo the fan-out's work serially.
    with _trace.span("cluster.build.replay", attrs={"app": app_name}):
        if cache.persistent:
            cache.entries()
        result = build_ir_container(app, [dict(c) for c in configs],
                                    store=store, cache=cache)
        plan = plan_batch(result, app, options, systems,
                          simd_override=simd_override,
                          skip_incompatible=skip_incompatible)

    # Phase 3: store-aware scheduling. Probe the lower index per ISA
    # group; warm groups' deploy jobs are born ready (their lower key is
    # declared done), cold groups get one lower job each and their deploys
    # gate on it — cold compiles overlap with warm deploys.
    index_entries = cache.entries()
    index_keys = set(index_entries)
    needed_by_group = [
        (group, lowering_cache_keys(result, options, group.simd_name, cache))
        for group in plan.groups]
    # One batched existence probe covers every digest warm routing relies
    # on (N per-key `has` round-trips become one `has_many`): an index
    # entry whose blob a GC since removed must route its group cold, not
    # fail mid-deploy.
    present = store.has_many(sorted({
        index_entries[key].digest for _, needed in needed_by_group
        for key in needed if key in index_entries}))
    warm_groups: list[str] = []
    cold_groups: list[str] = []
    done_keys: list[str] = []
    lower_jobs: list[Job] = []
    warm_deploys: list[Job] = []
    cold_deploys: list[Job] = []
    for group, needed in needed_by_group:
        token = f"{group.family}/{group.simd_name}"
        warm = needed <= index_keys and all(
            present.get(index_entries[key].digest, False) for key in needed)
        (warm_groups if warm else cold_groups).append(token)
        if warm:
            done_keys.append(f"{batch_id}/" + lower_key(
                build, options, group.family, group.simd_name))
        else:
            lower_jobs.append(lower_job(build, options, group.family,
                                        group.simd_name))
        bucket = warm_deploys if warm else cold_deploys
        for name in group.systems:
            bucket.append(deploy_job(build, options, name, group.family,
                                     group.simd_name,
                                     simd_override=simd_override))

    lower_entries_before = _lower_entry_count(cache)
    counters_before = cache.snapshot().get("lower", (0, 0))
    # Submission order is queue order: cold lowers first (the long poles
    # start immediately), then the warm deploys they overlap with.
    with _trace.span("cluster.build.deploy_wave",
                     attrs={"app": app_name, "warm": len(warm_groups),
                            "cold": len(cold_groups)}):
        lower_jobs = _batched(lower_jobs)
        warm_deploys = _batched(warm_deploys)
        cold_deploys = _batched(cold_deploys)
        deploy_wave = lower_jobs + warm_deploys + cold_deploys
        client.submit(deploy_wave, done_keys=tuple(done_keys))
        job_results.update(client.wait([job.job_id for job in deploy_wave],
                                       timeout=job_timeout))

    performed = sum(rec["result"].get("lowerings_performed", 0)
                    for rec in job_results.values()
                    if rec.get("result"))
    reused = sum(rec["result"].get("lowerings_reused", 0)
                 for rec in job_results.values() if rec.get("result"))
    if counters_shared_with_workers:
        counters_after = cache.snapshot().get("lower", (0, 0))
        reused = counters_after[0] - counters_before[0]
        performed = counters_after[1] - counters_before[1]

    by_system = {}
    for job in warm_deploys + cold_deploys:
        rec = job_results[job.job_id]
        if rec.get("result"):
            by_system[rec["result"]["system"]] = rec["result"]
    deployments = [by_system[name] for name in
                   [s.name for s in systems] if name in by_system]

    return ClusterBuildReport(
        app=app_name,
        plan_summary=plan.summary(),
        image_digest=result.image.digest,
        deployments=deployments,
        plan_groups=[{"family": g.family, "simd": g.simd_name,
                      "systems": list(g.systems)} for g in plan.groups],
        incompatible=dict(plan.incompatible),
        warm_groups=warm_groups,
        cold_groups=cold_groups,
        lowerings_performed=performed,
        lowerings_reused=reused,
        lower_entries_created=_lower_entry_count(cache) - lower_entries_before,
        build_stats=result.stats.to_json(),
        jobs={job_id: {"state": rec["state"], "worker": rec["worker"],
                       "attempts": rec["attempts"], "result": rec["result"]}
              for job_id, rec in job_results.items()},
    )


# -- local cluster -------------------------------------------------------------


def autoscale_decision(ready_depth: int, running: int, live_workers: int,
                       min_workers: int, max_workers: int,
                       scale_threshold: float,
                       drained_seconds: float,
                       cooldown_seconds: float) -> str | None:
    """The elastic policy, as a pure function (unit-testable without a
    farm): ``"up"`` when the backlog per live worker exceeds the
    threshold and the fleet has headroom, ``"down"`` when the farm has
    been fully drained (nothing ready, nothing running) past the cooldown
    and the fleet is above its floor, ``None`` otherwise.

    ``ready_depth`` counts claimable jobs (shared queue plus every
    per-worker deque); blocked jobs are deliberately excluded — they
    cannot be executed yet, so spawning workers for them buys nothing.
    """
    if live_workers < max_workers and live_workers > 0 \
            and ready_depth / live_workers > scale_threshold:
        return "up"
    if live_workers > min_workers and ready_depth == 0 and running == 0 \
            and drained_seconds >= cooldown_seconds:
        return "down"
    return None


class LocalCluster:
    """A coordinator plus N workers, self-hosted for one process's benefit.

    ``mode="thread"`` spawns worker threads sharing one in-process
    store/cache — the default for tests and ``deploy-batch --workers N``
    (any :class:`BlobStore` works, including a plain memory-backed one).
    ``mode="process"`` spawns ``repro.cli cluster worker`` subprocesses
    that open their own handle on ``store_dir`` (a
    :class:`~repro.store.backend.FileBackend` directory) — real multi-core
    parallelism, used by the cluster benchmark and CI.

    ``elastic=True`` (thread mode) starts ``min_workers`` and lets a
    monitor thread drive the fleet against coordinator queue depth: scale
    *up* one worker whenever the claimable backlog per live worker
    exceeds ``scale_threshold``, scale *down* one idle worker after the
    farm has been drained for ``scale_cooldown_seconds`` — never below
    ``min_workers``, never above ``max_workers``. Retiring is a clean
    lease handoff: the worker's own stop event ends its loop, and its
    ``goodbye`` re-queues anything it still owned. Decisions are recorded
    in :attr:`scale_events`.
    """

    def __init__(self, workers: int = 2, mode: str = "thread",
                 store: BlobStore | None = None,
                 cache: ArtifactCache | None = None,
                 store_dir: str = "",
                 lease_seconds: float = 60.0,
                 job_max_workers: int | None = 1,
                 elastic: bool = False,
                 min_workers: int = 1,
                 max_workers: int | None = None,
                 scale_threshold: float = 2.0,
                 scale_poll_seconds: float = 0.1,
                 scale_cooldown_seconds: float = 2.0,
                 local_tier_dir: str = ""):
        if mode not in ("thread", "process"):
            raise ClusterError(f"unknown LocalCluster mode {mode!r}")
        if mode == "process" and not store_dir:
            raise ClusterError("process-mode LocalCluster needs store_dir "
                               "(workers open their own FileBackend)")
        if elastic and mode != "thread":
            raise ClusterError("elastic scaling drives in-process worker "
                               "threads; process-mode fleets are fixed-size")
        if local_tier_dir and mode != "process":
            raise ClusterError("local_tier_dir applies to process-mode "
                               "workers (thread-mode workers share one "
                               "in-process cache; a private tier per worker "
                               "would sit behind it unused)")
        if store is None:
            if store_dir:
                from repro.store import FileBackend
                store = BlobStore(FileBackend(store_dir))
            else:
                store = BlobStore()
        self.mode = mode
        self.n_workers = max(1, workers)
        self.elastic = elastic
        self.min_workers = max(1, min_workers)
        self.max_workers = max(self.min_workers,
                               max_workers if max_workers is not None
                               else self.n_workers)
        self.scale_threshold = scale_threshold
        self.scale_poll_seconds = scale_poll_seconds
        self.scale_cooldown_seconds = scale_cooldown_seconds
        self.local_tier_dir = local_tier_dir
        #: [{"action": "up"|"down", "workers": fleet size after}] in
        #: decision order — what the elastic tests (and curious callers)
        #: assert against.
        self.scale_events: list[dict] = []
        self.store = store
        self.cache = cache if cache is not None else ArtifactCache(
            store, flush_every=ClusterWorker.FLUSH_EVERY)
        self.store_dir = store_dir
        self.job_max_workers = job_max_workers
        # A fixed fleet size lets the scheduler treat "excluded by every
        # worker" as terminal; an elastic fleet keeps that open — workers
        # may yet join.
        self.coordinator = Coordinator(
            lease_seconds=lease_seconds,
            expected_workers=None if elastic else self.n_workers)
        self.client: CoordinatorClient | None = None
        self.workers: list[ClusterWorker] = []
        self._threads: list[threading.Thread] = []
        self._procs: list[subprocess.Popen] = []
        self._stop = threading.Event()
        # Per-worker stop events (global stop sets them all) — what lets
        # the autoscaler retire exactly one worker.
        self._worker_stops: dict[str, threading.Event] = {}
        self._spawn_lock = threading.Lock()
        self._next_worker = 0
        self._scaler: threading.Thread | None = None

    def _spawn_worker(self, host: str, port: int) -> ClusterWorker:
        with self._spawn_lock:
            index = self._next_worker
            self._next_worker += 1
            worker = ClusterWorker(
                CoordinatorClient(host, port), self.store,
                cache=self.cache, worker_id=f"local-{index}",
                max_workers=self.job_max_workers)
            worker_stop = threading.Event()
            self._worker_stops[worker.worker_id] = worker_stop
            self.workers.append(worker)
            thread = threading.Thread(
                target=worker.run, kwargs={"stop": worker_stop},
                name=f"cluster-{worker.worker_id}", daemon=True)
            thread.start()
            self._threads.append(thread)
            return worker

    def _live_worker_ids(self) -> list[str]:
        return [worker.worker_id
                for worker, thread in zip(self.workers, self._threads)
                if thread.is_alive()
                and not self._worker_stops[worker.worker_id].is_set()]

    def _autoscale_loop(self, host: str, port: int) -> None:
        drained_since: float | None = None
        while not self._stop.wait(self.scale_poll_seconds):
            summary = self.coordinator.queue.telemetry_summary()
            states = summary["jobs"]["states"]
            ready = summary["shared_queue_depth"] + sum(
                entry.get("queue_depth", 0)
                for entry in summary["workers"].values())
            running = states.get("running", 0)
            now = time.monotonic()
            if ready == 0 and running == 0:
                drained_since = drained_since if drained_since is not None \
                    else now
            else:
                drained_since = None
            live = self._live_worker_ids()
            action = autoscale_decision(
                ready, running, len(live),
                self.min_workers, self.max_workers, self.scale_threshold,
                now - drained_since if drained_since is not None else 0.0,
                self.scale_cooldown_seconds)
            if action == "up":
                self._spawn_worker(host, port)
                self.scale_events.append(
                    {"action": "up", "workers": len(live) + 1})
                _events.emit("info", "autoscale up",
                             workers=len(live) + 1, ready_depth=ready,
                             running=running)
            elif action == "down":
                # Retire an *idle* worker: per-worker stop ends its loop;
                # its goodbye returns any owned queue entries. Prefer the
                # newest — the oldest tiers/caches are the warmest.
                idle = [wid for wid in live
                        if summary["workers"]
                        .get(wid, {}).get("running", 0) == 0]
                if idle:
                    self._worker_stops[idle[-1]].set()
                    drained_since = now  # one retirement per cooldown
                    self.scale_events.append(
                        {"action": "down", "workers": len(live) - 1})
                    _events.emit("info", "autoscale down",
                                 workers=len(live) - 1, retired=idle[-1])

    def start(self) -> "LocalCluster":
        host, port = self.coordinator.start()
        self.client = CoordinatorClient(host, port)
        if self.mode == "thread":
            initial = self.min_workers if self.elastic else self.n_workers
            for _ in range(initial):
                self._spawn_worker(host, port)
            if self.elastic:
                self._scaler = threading.Thread(
                    target=self._autoscale_loop, args=(host, port),
                    name="cluster-autoscaler", daemon=True)
                self._scaler.start()
        else:
            env = dict(os.environ)
            src_dir = os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))
            env["PYTHONPATH"] = src_dir + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
            for i in range(self.n_workers):
                argv = [sys.executable, "-m", "repro.cli", "cluster",
                        "worker", "--coordinator", f"{host}:{port}",
                        "--store", self.store_dir,
                        "--worker-id", f"proc-{i}"]
                if self.local_tier_dir:
                    argv += ["--local-tier", self.local_tier_dir]
                self._procs.append(subprocess.Popen(
                    argv, env=env, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL))
        return self

    def build(self, app_name: str, system_names: list[str],
              **kwargs) -> ClusterBuildReport:
        assert self.client is not None, "LocalCluster not started"
        kwargs.setdefault("counters_shared_with_workers",
                          self.mode == "thread")
        return cluster_build(self.client, app_name, system_names,
                             self.store, cache=self.cache, **kwargs)

    def drain_spans(self) -> list:
        """Collect (and clear) every span the farm recorded: coordinator
        job-lifecycle spans, worker-pushed spans already absorbed there,
        and any thread-mode worker spans a failed push left behind."""
        spans = self.coordinator.queue.telemetry.recorder.drain()
        for worker in self.workers:
            spans.extend(worker.recorder.drain())
        return spans

    def stop(self) -> None:
        self._stop.set()
        # Quiesce the autoscaler before signalling workers: it can be
        # mid-decision, and a worker spawned after this loop would never
        # see its stop event.
        if self._scaler is not None:
            self._scaler.join(timeout=10)
        for event in self._worker_stops.values():
            event.set()
        for thread in self._threads:
            thread.join(timeout=10)
        for proc in self._procs:
            proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
        self.coordinator.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
