"""The build-farm coordinator: job queue, leases, and the wire server.

The scheduler is a work-stealing queue over artifact-key dependencies:

* A job is **blocked** until every key in ``requires`` has been published
  (by a completed job, or up front via ``done_keys`` when the submitter's
  store probe found the artifacts already present — that probe is what
  makes scheduling store-aware).
* Ready jobs land on a per-worker deque when their affinity token already
  has an owner (the worker whose in-process cache holds the live objects),
  otherwise on the shared deque. An idle worker drains its own deque
  first, then the shared one, then **steals** from the back of the longest
  other deque — affinity is a hint, saturation wins.
* A fetched job is **leased**: if the worker neither completes nor fails
  it before the lease expires (crash, hang, dropped connection), the next
  request re-queues it with the dead worker excluded, so a poisoned
  worker cannot re-claim the job it just lost.
* Completions are **idempotent**: a lease-expired worker that comes back
  and reports a result the coordinator already has is acknowledged and
  ignored — artifact publishes went through the content-addressed store,
  so the duplicate's work was a no-op by construction.

The coordinator never touches artifact bytes. Workers publish through the
shared store backend; the wire protocol (same line-framed JSON as
:mod:`repro.store.remote`) carries job specs, artifact keys, and small
JSON results only.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

import json

from repro.cluster.jobs import ClusterError, Job
from repro.cluster.journal import JOURNAL_VERSION, Journal
from repro.store.wire import read_exact, read_message, write_message
from repro.telemetry import events as _events
from repro.telemetry.farm import FarmTelemetry
from repro.telemetry.trace import Span, new_span_id, service_name

#: A worker that missed its lease by this much is presumed dead.
DEFAULT_LEASE_SECONDS = 60.0
#: A job is abandoned after failing on this many distinct attempts.
DEFAULT_MAX_ATTEMPTS = 3

BLOCKED, READY, RUNNING, DONE, FAILED = \
    "blocked", "ready", "running", "done", "failed"


@dataclass
class JobRecord:
    job: Job
    state: str = BLOCKED
    attempts: int = 0
    excluded: set = field(default_factory=set)   # worker ids
    worker: str = ""
    lease_deadline: float = 0.0
    result: dict | None = None
    error: str = ""
    finished_at: float = 0.0  # monotonic time of reaching DONE/FAILED
    # Telemetry stamps (epoch seconds — comparable across processes) and
    # the span id the coordinator minted for the current execution; the
    # lifecycle spans are recorded when the job reaches a terminal state.
    submitted_at: float = 0.0
    started_at: float = 0.0
    run_span_id: str = ""

    def to_json(self) -> dict:
        return {"state": self.state, "attempts": self.attempts,
                "worker": self.worker, "result": self.result,
                "error": self.error,
                "excluded": sorted(self.excluded)}


@dataclass
class _WorkerInfo:
    last_seen: float = 0.0
    queue: deque = field(default_factory=deque)  # job ids with affinity here


class JobQueue:
    """Thread-safe scheduler state; the server is a thin wire veneer over it.

    Also usable directly in-process — :class:`LocalCluster` threads and the
    scheduler unit tests drive it without a socket in between.
    """

    def __init__(self, lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 expected_workers: int | None = None):
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        #: Fixed fleet size, when known (LocalCluster): once this many
        #: workers have registered, "excluded by every worker" is
        #: terminal — nobody else is coming. None = open cluster; new
        #: workers may join, so single-worker exclusion keeps waiting.
        self.expected_workers = expected_workers
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._published: set[str] = set()
        self._workers: dict[str, _WorkerInfo] = {}
        self._shared: deque = deque()            # job ids without a bound owner
        self._affinity_owner: dict[str, str] = {}
        #: Optional :class:`~repro.cluster.journal.Journal` — when set,
        #: submissions checkpoint synchronously and terminal transitions
        #: mark it dirty for the write-behind autosave. Assigned by the
        #: coordinator *after* any restore, so replaying old state never
        #: re-checkpoints itself mid-restore.
        self.journal: Journal | None = None
        #: Farm-wide aggregates: worker heartbeat metric deltas, pushed
        #: spans, job durations/throughput. Fed by the request handlers,
        #: read by the ``telemetry`` wire op (`repro cluster top`).
        self.telemetry = FarmTelemetry()

    # -- submission ------------------------------------------------------------

    #: A long-lived coordinator prunes finished records past this many
    #: (down to half), so serving months of batches stays bounded. Far
    #: above any one batch's job count. Never pruned: non-terminal
    #: records, records whose batch (the ``<id>/`` job-id prefix) still
    #: has non-terminal siblings, and records finished more recently than
    #: the grace window — a submitter that just saw its last job finish
    #: must still be able to poll the result.
    PRUNE_THRESHOLD = 4096
    PRUNE_GRACE_SECONDS = 600.0

    def submit(self, jobs: list[Job], done_keys: tuple[str, ...] = ()) -> int:
        """Register jobs; ``done_keys`` marks artifacts already in the store."""
        now_epoch = time.time()
        with self._lock:
            self._prune_finished_locked()
            self._published.update(done_keys)
            for job in jobs:
                if job.job_id in self._records:
                    raise ClusterError(f"duplicate job id {job.job_id!r}")
                record = JobRecord(job=job, submitted_at=now_epoch)
                self._records[job.job_id] = record
                self._maybe_ready_locked(record)
            count = len(jobs)
        # Outside the lock (the checkpoint snapshot re-acquires it):
        # synchronous, so the specs are durable before submit returns.
        if self.journal is not None:
            self.journal.save_now()
        return count

    @staticmethod
    def _batch_of(job_id: str) -> str:
        return job_id.split("/", 1)[0]

    def _prune_finished_locked(self) -> None:
        if len(self._records) <= self.PRUNE_THRESHOLD:
            return
        now = time.monotonic()
        still_needed: set = set()
        active_batches: set = set()
        for job_id, record in self._records.items():
            if record.state not in (DONE, FAILED):
                still_needed.update(record.job.requires)
                active_batches.add(self._batch_of(job_id))
        for job_id in list(self._records):  # insertion order: oldest first
            if len(self._records) <= self.PRUNE_THRESHOLD // 2:
                break
            record = self._records[job_id]
            if record.state not in (DONE, FAILED):
                continue
            if self._batch_of(job_id) in active_batches:
                continue  # a sibling is in flight; its submitter polls us
            if now - record.finished_at < self.PRUNE_GRACE_SECONDS:
                continue  # its submitter may not have seen the result yet
            for key in record.job.produces:
                if key not in still_needed:
                    self._published.discard(key)
            del self._records[job_id]
        # Keys no surviving record references — e.g. warm-group done_keys
        # from pruned batches, which no record ever *produced* — go too;
        # keys are batch-scoped, so nothing future can want them back.
        referenced: set = set()
        affinities: set = set()
        for record in self._records.values():
            referenced.update(record.job.requires)
            referenced.update(record.job.produces)
            if record.job.affinity:
                affinities.add(record.job.affinity)
        self._published &= referenced
        # Affinity claims age out with their batches too: keep tokens a
        # surviving record still carries or whose (scoped) key a survivor
        # references; months-old locality hints for pruned batches only
        # pin worker ids for nothing. A rerun re-claims on completion.
        live = referenced | {self._unscoped_key(k) for k in referenced} \
            | affinities
        for token in [t for t in self._affinity_owner if t not in live]:
            del self._affinity_owner[token]

    def _maybe_ready_locked(self, record: JobRecord) -> None:
        if record.state != BLOCKED:
            return
        if all(key in self._published for key in record.job.requires):
            record.state = READY
            self._enqueue_locked(record)

    def _enqueue_locked(self, record: JobRecord) -> None:
        owner = self._affinity_owner.get(record.job.affinity, "")
        if owner and owner in self._workers:
            self._workers[owner].queue.append(record.job.job_id)
        else:
            self._shared.append(record.job.job_id)

    # -- fetching (pull-based; any request doubles as a heartbeat) -------------

    def fetch(self, worker_id: str, now: float | None = None) -> Job | None:
        now = time.monotonic() if now is None else now
        with self._lock:
            info = self._touch_locked(worker_id, now)
            self._expire_leases_locked(now)
            job_id = (self._pop_eligible_locked(info.queue, worker_id)
                      or self._pop_eligible_locked(self._shared, worker_id)
                      or self._steal_locked(worker_id))
            if job_id is None:
                return None
            record = self._records[job_id]
            record.state = RUNNING
            record.worker = worker_id
            record.lease_deadline = now + self.lease_seconds
            record.started_at = time.time()
            affinity = record.job.affinity
            if affinity and affinity not in self._affinity_owner:
                self._affinity_owner[affinity] = worker_id
            if record.job.trace and record.job.trace.get("trace_id"):
                # Re-parent the job's trace context onto a span id minted
                # for *this* execution: the worker's spans nest under the
                # coordinator's ``cluster.job.run`` span (recorded when
                # the job finishes), which itself parents to the
                # submitter's request span.
                record.run_span_id = new_span_id()
                return replace(record.job, trace={
                    "trace_id": record.job.trace["trace_id"],
                    "parent_span_id": record.run_span_id})
            return record.job

    def _touch_locked(self, worker_id: str, now: float) -> _WorkerInfo:
        info = self._workers.setdefault(worker_id, _WorkerInfo())
        info.last_seen = now
        return info

    def _pop_eligible_locked(self, queue: deque, worker_id: str) -> str | None:
        """Pop the first job this worker may run; keep the rest in order."""
        for _ in range(len(queue)):
            job_id = queue.popleft()
            record = self._records.get(job_id)
            if record is None or record.state != READY:
                continue  # completed or re-queued elsewhere; drop stale entry
            if worker_id in record.excluded:
                queue.append(job_id)  # someone else's; rotate it to the back
                continue
            return job_id
        return None

    def _steal_locked(self, worker_id: str) -> str | None:
        victims = sorted(
            ((len(info.queue), wid) for wid, info in self._workers.items()
             if wid != worker_id and info.queue),
            reverse=True)
        for _count, victim in victims:
            job_id = self._pop_eligible_locked(
                self._workers[victim].queue, worker_id)
            if job_id is not None:
                return job_id
        return None

    # -- completion / failure --------------------------------------------------

    def complete(self, job_id: str, worker_id: str, result: dict) -> bool:
        """Record a result; returns False for a duplicate (already done).

        A duplicate completion is *acknowledged*, not an error: the job was
        re-queued past a dead lease, both executions published the same
        content-addressed artifacts, and only the first result is kept.
        """
        with self._lock:
            self._touch_locked(worker_id, time.monotonic())
            record = self._require_locked(job_id)
            if record.state in (DONE, FAILED):
                # DONE: classic duplicate. FAILED: a zombie finishing a
                # job the queue already gave up on — accepting it would
                # resurrect a terminal failure the submitter has acted
                # on (publishing keys, unblocking dependents) with no one
                # left to collect the results.
                return False
            record.state = DONE
            record.worker = worker_id
            record.result = result
            record.error = ""
            record.finished_at = time.monotonic()
            self._note_finished_locked(record, failed=False)
            self._published.update(record.job.produces)
            if self.journal is not None:
                self.journal.mark_dirty()  # folded in by autosave
            # Locality claim: the worker that just *published* these keys
            # is where jobs whose affinity token names them should run —
            # its local store tier holds the bytes before anyone else's.
            # Authoritative (not setdefault): the producer supersedes a
            # claim left by whoever first fetched a same-token job.
            # Affinity tokens are unscoped artifact keys while produces
            # are batch-prefixed, so claim the unscoped form too.
            for key in record.job.produces:
                self._affinity_owner[key] = worker_id
                unscoped = self._unscoped_key(key)
                if unscoped != key:
                    self._affinity_owner[unscoped] = worker_id
            for other in self._records.values():
                self._maybe_ready_locked(other)
            return True

    @staticmethod
    def _unscoped_key(key: str) -> str:
        """Strip the ``<batch_id>/`` prefix the submitting client scopes
        artifact keys with. Batch ids are short hex — no ``:`` — while
        every artifact key starts with a ``stage:...`` segment, so a
        colon-free first path segment can only be a batch prefix."""
        head, sep, rest = key.partition("/")
        if sep and ":" not in head:
            return rest
        return key

    def _note_finished_locked(self, record: JobRecord, failed: bool) -> None:
        """Feed one terminal job into the farm aggregates and — when the
        job carried a trace — record its lifecycle spans (queue wait and
        execution) into the telemetry recorder."""
        now = time.time()
        duration = max(0.0, now - record.started_at) \
            if record.started_at else 0.0
        self.telemetry.note_job(duration, failed=failed,
                                kind=record.job.kind)
        trace_ctx = record.job.trace
        if not trace_ctx or not trace_ctx.get("trace_id"):
            return
        trace_id = trace_ctx["trace_id"]
        parent = trace_ctx.get("parent_span_id")
        attrs = {"job_id": record.job.job_id, "kind": record.job.kind,
                 "worker": record.worker, "state": record.state}
        recorder = self.telemetry.recorder
        if record.submitted_at and record.started_at:
            recorder.record(Span(
                name="cluster.job.queued", trace_id=trace_id,
                span_id=new_span_id(), parent_id=parent,
                start=record.submitted_at,
                duration=max(0.0, record.started_at - record.submitted_at),
                process=service_name() or "coordinator", pid=os.getpid(),
                attrs=attrs))
        if record.started_at:
            recorder.record(Span(
                name="cluster.job.run", trace_id=trace_id,
                # The span id handed to the worker as its parent — the
                # worker-side spans pushed with the result nest under it.
                span_id=record.run_span_id or new_span_id(),
                parent_id=parent, start=record.started_at,
                duration=duration,
                process=service_name() or "coordinator", pid=os.getpid(),
                attrs=attrs))

    def fail(self, job_id: str, worker_id: str, error: str) -> str:
        """A worker reported failure; re-queue without it, or give up."""
        with self._lock:
            self._touch_locked(worker_id, time.monotonic())
            record = self._require_locked(job_id)
            if record.state != RUNNING or record.worker != worker_id:
                return record.state  # stale report from a lost lease
            state = self._requeue_locked(record, worker_id, error)
            # An execution failure on every live worker is terminal even
            # below max_attempts: a fully-excluded READY job would rotate
            # in the queues unclaimable forever, hanging the submitter on
            # a timeout instead of surfacing the real error. The whole
            # fleet must be known-registered first: 2+ workers seen, or
            # the full expected fleet of a fixed-size cluster (covers
            # ``--workers 1``) — with fewer, peers may simply not have
            # polled yet, and the job must wait for them.
            fleet_known = len(self._workers) >= 2 or (
                self.expected_workers is not None
                and len(self._workers) >= self.expected_workers)
            if state == READY and fleet_known and \
                    all(w in record.excluded for w in self._workers):
                record.state = FAILED
                record.finished_at = time.monotonic()
                self._note_finished_locked(record, failed=True)
                state = FAILED
            if self.journal is not None:
                self.journal.mark_dirty()
            return state

    def _requeue_locked(self, record: JobRecord, worker_id: str,
                        error: str) -> str:
        record.excluded.add(worker_id)
        record.attempts += 1
        record.error = error
        record.worker = ""
        if self._affinity_owner.get(record.job.affinity) == worker_id:
            del self._affinity_owner[record.job.affinity]  # let another adopt
        if record.attempts >= self.max_attempts:
            record.state = FAILED
            record.finished_at = time.monotonic()
            self._note_finished_locked(record, failed=True)
            _events.emit("error", "job failed permanently",
                         job_id=record.job.job_id, worker=worker_id,
                         attempts=record.attempts, error=error)
        else:
            record.state = READY
            self._enqueue_locked(record)
            _events.emit("warn", "job requeued",
                         job_id=record.job.job_id, worker=worker_id,
                         attempts=record.attempts, error=error)
        return record.state

    def _expire_leases_locked(self, now: float) -> None:
        for record in self._records.values():
            if record.state == RUNNING and record.lease_deadline < now:
                _events.emit("warn", "lease expired",
                             job_id=record.job.job_id, worker=record.worker,
                             attempts=record.attempts,
                             lease_seconds=self.lease_seconds)
                self._requeue_locked(record, record.worker,
                                     f"lease expired on {record.worker!r}")

    def renew(self, job_id: str, worker_id: str,
              now: float | None = None) -> bool:
        """Extend a running job's lease — the heartbeat for long jobs.

        Only the current assignee can renew; a zombie whose lease already
        expired (and whose job was re-queued or re-leased) gets False and
        should stop working on it.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            self._touch_locked(worker_id, now)
            record = self._require_locked(job_id)
            if record.state != RUNNING or record.worker != worker_id:
                return False
            record.lease_deadline = now + self.lease_seconds
            return True

    def goodbye(self, worker_id: str) -> int:
        """A worker is leaving: re-queue its running jobs immediately."""
        with self._lock:
            requeued = 0
            for record in self._records.values():
                if record.state == RUNNING and record.worker == worker_id:
                    self._requeue_locked(record, worker_id,
                                         f"worker {worker_id!r} disconnected")
                    requeued += 1
            info = self._workers.pop(worker_id, None)
            if info is not None:
                self._shared.extend(info.queue)
            for affinity in [a for a, w in self._affinity_owner.items()
                             if w == worker_id]:
                del self._affinity_owner[affinity]
            if requeued and self.journal is not None:
                self.journal.mark_dirty()
            return requeued

    # -- introspection ---------------------------------------------------------

    def _require_locked(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise ClusterError(f"unknown job {job_id!r}") from None

    def status(self, job_ids: list[str] | None = None,
               now: float | None = None) -> dict[str, dict]:
        """Job states; doubles as the liveness tick — a polling submitter
        expires dead workers' leases even when no worker is polling."""
        with self._lock:
            self._expire_leases_locked(time.monotonic() if now is None
                                       else now)
            ids = list(self._records) if job_ids is None else job_ids
            return {job_id: self._require_locked(job_id).to_json()
                    for job_id in ids}

    def stats(self) -> dict:
        with self._lock:
            counts: dict[str, int] = {}
            for record in self._records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return {
                "jobs": len(self._records),
                "states": counts,
                "workers": sorted(self._workers),
                "published_keys": len(self._published),
                "affinity_owners": dict(sorted(self._affinity_owner.items())),
            }

    def telemetry_summary(self, include_worker_metrics: bool = False) -> dict:
        """The live farm view behind the ``telemetry`` wire op: per-worker
        queue depth / running count / liveness from the scheduler joined
        with the heartbeat-fed :class:`FarmTelemetry` aggregates."""
        now = time.monotonic()
        with self._lock:
            self._expire_leases_locked(now)
            workers = {
                worker_id: {
                    "queue_depth": len(info.queue),
                    "running": 0,
                    "last_seen_seconds": round(max(0.0, now - info.last_seen),
                                               3),
                } for worker_id, info in self._workers.items()}
            counts: dict[str, int] = {}
            for record in self._records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
                if record.state == RUNNING and record.worker in workers:
                    workers[record.worker]["running"] += 1
            shared_depth = len(self._shared)
            total = len(self._records)
        out = self.telemetry.summary(
            workers=workers, include_worker_metrics=include_worker_metrics)
        out["shared_queue_depth"] = shared_depth
        out["jobs"] = {"total": total, "states": counts}
        return out

    # -- checkpoint / restore (coordinator durability) -------------------------

    def checkpoint_state(self) -> dict:
        """A JSON-safe snapshot of everything a restarted coordinator
        needs: job specs, scheduler states, terminal results, the
        published-key set, and affinity claims. Deliberately *not*
        persisted: leases (monotonic deadlines die with the process —
        running jobs are re-queued on restore instead) and worker
        registrations (workers re-register by reconnecting)."""
        with self._lock:
            return {
                "version": JOURNAL_VERSION,
                "published": sorted(self._published),
                "affinity_owner": dict(self._affinity_owner),
                "records": [{
                    "job": record.job.to_json(),
                    "state": record.state,
                    "attempts": record.attempts,
                    "excluded": sorted(record.excluded),
                    "worker": record.worker,
                    "result": record.result,
                    "error": record.error,
                    "submitted_at": record.submitted_at,
                } for record in self._records.values()],
            }

    def restore(self, state: dict) -> dict:
        """Rebuild scheduler state from a :meth:`checkpoint_state` snapshot.

        Terminal jobs come back with their results so polling submitters
        can still collect them. Non-terminal jobs — including ones that
        were *running* when the old process died — re-enter as blocked and
        are promoted through the normal readiness check, so a mid-crash
        job is simply re-queued lease-free. Records already present (a
        submitter re-submitted before we restored) are kept, not
        overwritten. Returns counts for the restore event."""
        counts = {"jobs": 0, "done": 0, "failed": 0, "requeued": 0,
                  "pending": 0}
        now = time.monotonic()
        with self._lock:
            self._published.update(state.get("published", ()))
            for token, owner in dict(state.get("affinity_owner",
                                               {})).items():
                self._affinity_owner.setdefault(token, owner)
            for blob in state.get("records", ()):
                job = Job.from_json(blob["job"])
                if job.job_id in self._records:
                    continue
                record = JobRecord(
                    job=job,
                    attempts=int(blob.get("attempts", 0)),
                    excluded=set(blob.get("excluded", ())),
                    result=blob.get("result"),
                    error=str(blob.get("error", "")),
                    submitted_at=float(blob.get("submitted_at") or 0.0))
                saved = blob.get("state", BLOCKED)
                counts["jobs"] += 1
                if saved in (DONE, FAILED):
                    record.state = saved
                    record.worker = str(blob.get("worker", ""))
                    # finished_at is monotonic (prune bookkeeping only);
                    # restamp so the grace window restarts from now.
                    record.finished_at = now
                    counts["done" if saved == DONE else "failed"] += 1
                else:
                    # BLOCKED, READY and RUNNING all come back as
                    # schedulable work: the lease died with the old
                    # process, and readiness is recomputed below.
                    record.state = BLOCKED
                    record.worker = ""
                    counts["requeued" if saved == RUNNING
                           else "pending"] += 1
                self._records[job.job_id] = record
            for record in self._records.values():
                self._maybe_ready_locked(record)
        return counts


# -- wire server ---------------------------------------------------------------


#: Reject request bodies larger than this — the coordinator protocol
#: carries job specs, metric deltas, and span batches, never blobs.
MAX_REQUEST_BODY_BYTES = 16 * 1024 * 1024


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one request per connection
        queue: JobQueue = self.server.queue  # type: ignore[attr-defined]
        try:
            req = read_message(self.rfile)
            # Bulk optional fields (worker span batches, metric deltas)
            # ride a JSON body declared by ``size`` + ``body_json`` so a
            # chatty traced job can never overflow the one-line header
            # frame; the decoded object extends the header in place.
            size = int(req.get("size") or 0)
            if size > MAX_REQUEST_BODY_BYTES:
                raise ClusterError(f"request body too large ({size} bytes)")
            if size > 0:
                body = read_exact(self.rfile, size)
                if req.pop("body_json", False):
                    req.update(json.loads(body.decode("utf-8")))
            cmd = req.get("cmd")
            if cmd == "ping":
                write_message(self.wfile, {"ok": True,
                                           "server": "cluster-coordinator"})
            elif cmd == "submit":
                jobs = [Job.from_json(blob) for blob in req.get("jobs", ())]
                n = queue.submit(jobs, tuple(req.get("done_keys", ())))
                write_message(self.wfile, {"ok": True, "submitted": n})
            elif cmd == "fetch":
                # Heartbeats double as the telemetry channel: a ``metrics``
                # field carries the worker's registry delta since its last
                # successful send (see repro.telemetry.farm).
                queue.telemetry.absorb_metrics(req.get("worker", ""),
                                               req.get("metrics"))
                job = queue.fetch(req["worker"])
                if job is None:
                    write_message(self.wfile, {"ok": True, "idle": True})
                else:
                    # lease_seconds rides along so the worker can pace its
                    # renewal heartbeat without a config channel.
                    write_message(self.wfile, {
                        "ok": True, "job": job.to_json(),
                        "lease_seconds": queue.lease_seconds})
            elif cmd == "renew":
                queue.telemetry.absorb_metrics(req.get("worker", ""),
                                               req.get("metrics"))
                renewed = queue.renew(req["job_id"], req["worker"])
                write_message(self.wfile, {"ok": True, "renewed": renewed})
            elif cmd == "complete":
                queue.telemetry.absorb_metrics(req.get("worker", ""),
                                               req.get("metrics"))
                queue.telemetry.absorb_spans(req.get("spans"))
                applied = queue.complete(req["job_id"], req["worker"],
                                         req.get("result") or {})
                write_message(self.wfile, {"ok": True, "applied": applied})
            elif cmd == "fail":
                queue.telemetry.absorb_metrics(req.get("worker", ""),
                                               req.get("metrics"))
                queue.telemetry.absorb_spans(req.get("spans"))
                state = queue.fail(req["job_id"], req["worker"],
                                   req.get("error", ""))
                write_message(self.wfile, {"ok": True, "state": state})
            elif cmd == "status":
                write_message(self.wfile, {
                    "ok": True, "jobs": queue.status(req.get("job_ids"))})
            elif cmd == "stats":
                write_message(self.wfile, {"ok": True, "stats": queue.stats()})
            elif cmd == "telemetry":
                out = {"ok": True, "telemetry": queue.telemetry_summary(
                    include_worker_metrics=bool(req.get("worker_metrics")))}
                recorder = queue.telemetry.recorder
                spans = (recorder.drain() if req.get("drain_spans")
                         else recorder.spans())
                # Spans and the farm metric history go in the response
                # body — a farm-wide drain can hold far more than one
                # header line may carry.
                payload = json.dumps(
                    {"spans": [span.to_json() for span in spans],
                     "history": queue.telemetry.history.to_json()},
                ).encode("utf-8")
                out["size"] = len(payload)
                out["body_json"] = True
                write_message(self.wfile, out, payload)
            elif cmd == "goodbye":
                requeued = queue.goodbye(req["worker"])
                write_message(self.wfile, {"ok": True, "requeued": requeued})
            else:
                write_message(self.wfile, {"ok": False,
                                           "error": f"unknown command {cmd!r}"})
        except Exception as exc:  # surface to the client, keep the server up
            try:
                write_message(self.wfile, {"ok": False, "error": str(exc)})
            except OSError:  # pragma: no cover - client already gone
                pass


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    # A resumed coordinator must rebind the port its crashed predecessor
    # held — whose server-side sockets linger in TIME_WAIT.
    allow_reuse_address = True


class Coordinator:
    """Serve a :class:`JobQueue` to workers and submitters over TCP.

    Same lifecycle as :class:`repro.store.remote.StoreServer`: ``start()``
    returns the bound address (port 0 lets the OS pick), ``stop()`` shuts
    the serve loop down, and the instance doubles as a context manager.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 expected_workers: int | None = None,
                 journal: Journal | None = None, resume: bool = False):
        self.queue = JobQueue(lease_seconds=lease_seconds,
                              max_attempts=max_attempts,
                              expected_workers=expected_workers)
        self.journal = journal
        if journal is not None:
            journal.source = self.queue.checkpoint_state
            if resume:
                state = journal.load()
                if state is not None:
                    counts = self.queue.restore(state)
                    _events.emit("info", "coordinator state restored",
                                 ref=journal.ref_name, **counts)
            # Attach only after any restore: replaying the checkpoint
            # must not itself trigger checkpoints.
            self.queue.journal = journal
            journal.start()
        self._server = _CoordinatorServer(
            (host, port), _Handler, bind_and_activate=True)
        self._server.daemon_threads = True
        self._server.queue = self.queue  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="cluster-coordinator",
                                        daemon=True)
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.journal is not None:
            self.journal.stop()  # final zero-lag checkpoint

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
