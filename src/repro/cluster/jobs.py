"""The build farm's job model: stage-level work items with artifact-key deps.

One ``cluster build`` decomposes into four job kinds, mirroring the
pipeline stages (:mod:`repro.pipeline.stages`) and the deployment step:

* ``preprocess`` — configure one build configuration and preprocess its
  translation units into the shared store (one job per configuration);
* ``ir-compile`` — compile the surviving equivalence classes of one
  configuration to IR (one job per configuration, after its preprocess);
* ``lower`` — lower one configuration's IRs for one ISA group (one job per
  *cold* ISA — warm ISAs are already in the store and get no job at all);
* ``deploy`` — specialize one system from the shared store (one job per
  system, gated on its ISA's ``lower`` artifact key).

Jobs carry *artifact keys*, not payloads: a job's ``requires`` names the
keys that must be published before it can run, and its ``produces`` names
the keys its completion publishes. The actual artifacts — preprocessed
text, IR modules, machine modules — move exclusively through the shared
:mod:`repro.store` backend; the coordinator and workers exchange keys only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.stages import config_name


class ClusterError(RuntimeError):
    """A cluster-level failure: bad job spec, failed job, protocol error."""


@dataclass(frozen=True)
class Job:
    """One schedulable unit of build work."""

    job_id: str
    kind: str                       # preprocess | ir-compile | lower | deploy
    spec: dict                      # JSON-safe work description
    requires: tuple[str, ...] = ()  # artifact keys gating readiness
    produces: tuple[str, ...] = ()  # artifact keys published on completion
    #: Scheduling hint: jobs sharing an affinity token prefer the worker
    #: that claimed the token (its local store tier and in-process cache
    #: hold the artifacts), but any idle worker may steal them. Tokens are
    #: *artifact keys* — a job's primary input key, or its output key when
    #: it has no gating input — so ownership flows from producer to
    #: consumer: the worker that published ``pp:app:cfg`` is where the
    #: ``ir-compile`` needing that key prefers to run. Deliberately not
    #: batch-scoped: a warm rerun's keys match the previous batch's, so
    #: locality survives across builds.
    affinity: str = ""
    #: Trace context (``{"trace_id", "parent_span_id"}``) carried from the
    #: submitter through the coordinator to the executing worker, so one
    #: ``cluster build`` yields a single correlated span tree. ``None`` on
    #: untraced builds — the field adds no wire bytes then.
    trace: dict | None = None

    def to_json(self) -> dict:
        blob = {
            "job_id": self.job_id, "kind": self.kind, "spec": self.spec,
            "requires": list(self.requires), "produces": list(self.produces),
            "affinity": self.affinity,
        }
        if self.trace is not None:
            blob["trace"] = dict(self.trace)
        return blob

    @classmethod
    def from_json(cls, blob: dict) -> "Job":
        return cls(job_id=blob["job_id"], kind=blob["kind"],
                   spec=dict(blob.get("spec", {})),
                   requires=tuple(blob.get("requires", ())),
                   produces=tuple(blob.get("produces", ())),
                   affinity=blob.get("affinity", ""),
                   trace=blob.get("trace"))


@dataclass(frozen=True)
class BuildSpec:
    """What every job needs to reconstruct the build: app + configurations.

    App models are code, not data — the spec names one and the worker
    rebuilds it deterministically, exactly like the lowering targets are
    recovered by name from the target registry.
    """

    app: str
    configs: tuple = ()
    scale: float | None = None
    arch_family: str = "x86_64"

    def to_json(self) -> dict:
        blob = {"app": self.app, "configs": [dict(c) for c in self.configs],
                "arch_family": self.arch_family}
        if self.scale is not None:
            blob["scale"] = self.scale
        return blob

    @classmethod
    def from_json(cls, blob: dict) -> "BuildSpec":
        return cls(app=blob["app"],
                   configs=tuple(dict(c) for c in blob.get("configs", ())),
                   scale=blob.get("scale"),
                   arch_family=blob.get("arch_family", "x86_64"))

    def resolve_app(self):
        """Instantiate the named app model (deterministic per spec)."""
        from repro.apps import app_model
        try:
            return app_model(self.app, self.scale)
        except KeyError as exc:
            raise ClusterError(exc.args[0]) from None


# -- artifact keys -------------------------------------------------------------
#
# Symbolic names for "this stage's artifacts are in the store". The real
# store entries are content-addressed cache keys; these coarser keys are
# what the scheduler sequences on (one per stage x configuration x ISA).


def preprocess_key(build: BuildSpec, options: dict[str, str]) -> str:
    return f"pp:{build.app}:{config_name(options)}"


def ir_key(build: BuildSpec, options: dict[str, str]) -> str:
    return f"ir:{build.app}:{config_name(options)}"


def lower_key(build: BuildSpec, options: dict[str, str],
              family: str, simd_name: str) -> str:
    return f"lower:{build.app}:{config_name(options)}:{family}/{simd_name}"


def deploy_key(build: BuildSpec, options: dict[str, str], system: str) -> str:
    return f"deploy:{build.app}:{config_name(options)}:{system}"


# -- job constructors ----------------------------------------------------------


# Affinity tokens are the artifact keys data actually flows through, so
# the coordinator can route a job to the worker whose local store tier
# already holds its inputs:
#
# * ``preprocess`` has no inputs — its token is its *output* key, claimed
#   on completion, so the downstream ``ir-compile`` lands on the same
#   worker;
# * ``ir-compile`` and ``deploy`` take their primary input key — they
#   follow the producer;
# * ``lower`` also takes its *output* key: its inputs are every config's
#   IR (one shared producer), and keying on the input would serialize all
#   ISAs onto one worker — the per-ISA output key keeps lowering parallel
#   while still making the deploys of that ISA follow their lowerer.


def preprocess_job(build: BuildSpec, options: dict[str, str]) -> Job:
    name = config_name(options)
    return Job(job_id=f"pp/{build.app}/{name}", kind="preprocess",
               spec={"build": build.to_json(), "config": dict(options)},
               produces=(preprocess_key(build, options),),
               affinity=preprocess_key(build, options))

def ir_compile_job(build: BuildSpec, options: dict[str, str]) -> Job:
    name = config_name(options)
    return Job(job_id=f"ir/{build.app}/{name}", kind="ir-compile",
               spec={"build": build.to_json(), "config": dict(options)},
               requires=(preprocess_key(build, options),),
               produces=(ir_key(build, options),),
               affinity=preprocess_key(build, options))


def lower_job(build: BuildSpec, options: dict[str, str],
              family: str, simd_name: str) -> Job:
    token = f"{family}/{simd_name}"
    return Job(job_id=f"lower/{build.app}/{config_name(options)}/{token}",
               kind="lower",
               spec={"build": build.to_json(), "options": dict(options),
                     "simd": simd_name, "family": family},
               requires=tuple(ir_key(build, c) for c in build.configs),
               produces=(lower_key(build, options, family, simd_name),),
               affinity=lower_key(build, options, family, simd_name))


def deploy_job(build: BuildSpec, options: dict[str, str], system: str,
               family: str, simd_name: str,
               simd_override: str | None = None) -> Job:
    spec = {"build": build.to_json(), "options": dict(options),
            "system": system}
    if simd_override:
        spec["simd_override"] = simd_override
    return Job(job_id=f"deploy/{build.app}/{config_name(options)}/{system}",
               kind="deploy", spec=spec,
               requires=(lower_key(build, options, family, simd_name),),
               produces=(deploy_key(build, options, system),),
               affinity=lower_key(build, options, family, simd_name))
