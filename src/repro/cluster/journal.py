"""Coordinator durability: checkpoint batch/job state through store refs.

The coordinator's scheduler state (job specs, dependency keys, terminal
results) historically lived only in memory — one crash lost every
in-flight batch. The :class:`Journal` checkpoints that state through the
*existing* artifact-store ref machinery: the whole
:meth:`~repro.cluster.coordinator.JobQueue.checkpoint_state` snapshot is
serialized to JSON and written to a single named ref with
``compare_and_set_ref``, so durability inherits whatever the store
already provides (atomic file replace for :class:`FileBackend`, the
server's serialized swap for :class:`RemoteBackend`) and the journal
survives exactly as long as the artifacts it describes.

Write discipline:

* **Synchronous on submit** — an accepted batch is durable before the
  submitter's ``submit`` call returns, so a crash can never lose job
  *specs*.
* **Write-behind for completions** — terminal transitions mark the
  journal dirty and a background thread folds them into the next
  checkpoint (``autosave_interval``). A crash loses at most the last
  interval's completions; the jobs re-run idempotently through the
  content-addressed store, producing byte-identical artifacts.
* **CAS, not blind set** — each write swaps against the bytes this
  journal last observed. A conflict (another coordinator instance
  writing the same ref) is re-read and retried a bounded number of
  times, then surfaced as an event rather than silently clobbered.

On ``cluster serve --resume`` the coordinator loads the ref and calls
:meth:`JobQueue.restore`: terminal jobs come back with their results,
ready/blocked jobs re-enter the scheduler, and jobs that were *running*
at the crash are re-queued lease-free — their leases died with the
process, and duplicate completions from pre-crash workers are already
idempotent at the queue level.

A store outage never takes the coordinator down with it: a failed
checkpoint emits a ``warn`` event, stays dirty, and the autosave thread
retries next interval (the store client's own retry/backoff layer rides
out brief restarts underneath).
"""

from __future__ import annotations

import json
import threading

from repro.store.wire import WireError
from repro.telemetry import events as _events
from repro.telemetry.registry import MetricsRegistry

__all__ = ["JOURNAL_REF", "Journal"]

#: Default ref the coordinator checkpoints into. Namespaced like the
#: cache index refs so ref listings group it naturally.
JOURNAL_REF = "cluster-journal/coordinator"

#: Checkpoint schema version — bumped on incompatible layout changes; a
#: loader seeing a newer version refuses rather than misreads.
JOURNAL_VERSION = 1

#: CAS attempts per checkpoint before giving up (each conflict re-reads
#: the ref first, so this only spins on a genuinely contended ref).
CAS_ATTEMPTS = 4

#: Store errors a checkpoint absorbs (dirty state is retried next tick).
_STORE_ERRORS = (OSError, WireError)


class Journal:
    """Checkpoint/restore a state snapshot through one store ref via CAS.

    ``backend`` is any :class:`~repro.store.backend.Backend` (the shared
    store the artifacts already live in). ``source`` is a zero-argument
    callable returning the JSON-serializable state to persist — wired to
    :meth:`JobQueue.checkpoint_state` by the coordinator.
    """

    def __init__(self, backend, ref_name: str = JOURNAL_REF,
                 autosave_interval: float = 0.5,
                 registry: "MetricsRegistry | None" = None,
                 source=None):
        self.backend = backend
        self.ref_name = ref_name
        self.autosave_interval = autosave_interval
        self.source = source
        self.registry = registry if registry is not None else MetricsRegistry()
        self._checkpoints = self.registry.counter("cluster.journal.checkpoints")
        self._failures = self.registry.counter("cluster.journal.failures")
        self._conflicts = self.registry.counter("cluster.journal.conflicts")
        self._bytes = self.registry.counter("cluster.journal.bytes_written")
        self._dirty_gauge = self.registry.gauge("cluster.journal.dirty")
        #: The ref bytes this journal last observed — the CAS expectation.
        self._last_known: bytes | None = None
        self._loaded = False
        self._dirty = threading.Event()
        self._stop = threading.Event()
        self._save_lock = threading.Lock()
        self._thread: threading.Thread | None = None

    # -- load / restore --------------------------------------------------------

    def load(self) -> dict | None:
        """Read the checkpoint ref; None when absent (fresh coordinator).

        Also primes the CAS expectation, so the first save after a resume
        swaps against the state it restored from.
        """
        data = self.backend.get_ref(self.ref_name)
        self._loaded = True
        if data is None:
            self._last_known = None
            return None
        state = json.loads(data.decode("utf-8"))
        version = int(state.get("version", 0))
        if version > JOURNAL_VERSION:
            raise RuntimeError(
                f"journal ref {self.ref_name!r} has version {version}; "
                f"this coordinator understands <= {JOURNAL_VERSION}")
        self._last_known = data
        return state

    # -- save ------------------------------------------------------------------

    def mark_dirty(self) -> None:
        """Note that state changed; the autosave thread (or the next
        explicit :meth:`flush`) folds it into a checkpoint."""
        self._dirty.set()
        self._dirty_gauge.set(1)

    def save_now(self) -> bool:
        """Checkpoint synchronously (submit path). Store errors are
        absorbed — the state stays dirty and autosave retries — because a
        momentarily-unreachable store must degrade durability, not
        availability."""
        self.mark_dirty()
        return self.flush()

    def flush(self) -> bool:
        """Write a checkpoint if dirty; True when the journal is clean
        (either after a successful write, or already clean)."""
        if self.source is None or not self._dirty.is_set():
            return True
        with self._save_lock:
            if not self._dirty.is_set():  # raced with another flusher
                return True
            # Clear *before* snapshotting: a transition that lands during
            # the write re-dirties and is caught next tick, never lost.
            self._dirty.clear()
            self._dirty_gauge.set(0)
            state = self.source()
            data = json.dumps(state, sort_keys=True).encode("utf-8")
            try:
                if self._write_cas(data):
                    self._checkpoints.inc()
                    self._bytes.inc(len(data))
                    return True
            except _STORE_ERRORS as exc:
                _events.emit("warn", "journal checkpoint failed; will retry",
                             ref=self.ref_name, bytes=len(data),
                             error=f"{type(exc).__name__}: {exc}")
            self._failures.inc()
            self.mark_dirty()
            return False

    def _write_cas(self, data: bytes) -> bool:
        """Swap the ref against the last-observed bytes, re-reading on
        conflict. Checkpoints are whole-state, so the newest write wins;
        CAS only guards against a *concurrent* coordinator silently
        interleaving (split-brain), which is surfaced, not absorbed."""
        if not self._loaded:
            # Never read the ref yet (journal without --resume): adopt
            # whatever is there as the expectation first.
            self._last_known = self.backend.get_ref(self.ref_name)
            self._loaded = True
        for attempt in range(CAS_ATTEMPTS):
            if self.backend.compare_and_set_ref(self.ref_name,
                                                self._last_known, data):
                self._last_known = data
                return True
            self._conflicts.inc()
            _events.emit("warn", "journal CAS conflict",
                         ref=self.ref_name, attempt=attempt + 1)
            self._last_known = self.backend.get_ref(self.ref_name)
        return False

    # -- autosave thread -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None or self.autosave_interval is None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._autosave_loop,
                                        name="cluster-journal", daemon=True)
        self._thread.start()

    def _autosave_loop(self) -> None:
        interval = float(self.autosave_interval or 0.5)
        while not self._stop.wait(interval):
            try:
                self.flush()
            except Exception:  # pragma: no cover - never kill the thread
                pass

    def stop(self) -> None:
        """Final checkpoint + thread join. Crash-only coordinators never
        get here — that is the whole point — but a clean shutdown leaves
        a zero-lag journal behind."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        try:
            self.flush()
        except Exception:  # pragma: no cover - store gone at shutdown
            pass
