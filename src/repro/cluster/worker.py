"""Cluster workers: pull jobs, run pipeline stages, publish via the store.

A worker owns one connection target (the coordinator) and one shared-store
handle (:class:`~repro.containers.store.BlobStore` over a file or remote
backend — or an in-process store handed over by :class:`LocalCluster`).
Every artifact a job produces goes through the worker's
:class:`~repro.containers.store.ArtifactCache`; job *results* are small
JSON summaries (counts, tags, digests) — the coordinator never sees
payload bytes.

Stage execution reuses the pipeline verbatim:

* ``preprocess`` / ``ir-compile`` jobs run the actual
  :mod:`repro.pipeline.stages` classes over one configuration, so a
  sharded build produces byte-for-byte the same cache entries a monolithic
  :func:`~repro.core.build_ir_container` would;
* ``lower`` / ``deploy`` jobs rebuild the IR container *warm* (every
  stage resolves from the store; a worker-local memo keeps one live
  result per build spec) and then run
  :func:`~repro.core.deployment.lower_configuration` or
  :func:`~repro.core.deployment.deploy_ir_container`.
"""

from __future__ import annotations

import os
import random
import re
import threading
import time
from collections import OrderedDict

from repro.cluster.jobs import BuildSpec, ClusterError, Job
from repro.containers.store import BULK_FLUSH_EVERY, ArtifactCache, BlobStore
from repro.store.backend import FileBackend
from repro.store.tiered import TieredBackend
from repro.pipeline.engine import Pipeline
from repro.pipeline.stages import (
    ConfigureStage,
    IRCompileStage,
    OpenMPStage,
    PreprocessStage,
    VectorizeStage,
)
from repro.pipeline.stats import PipelineStats
from repro.telemetry import events as _events
from repro.telemetry import trace as _trace
from repro.telemetry.registry import (
    MetricsRegistry,
    empty_snapshot,
    is_empty_snapshot,
    sample_process_gauges,
    snapshot_delta,
    sync_dropped_counter,
)

#: Live IR-container results memoized per worker (keyed by build spec).
#: Two is enough for one build plus a straggler from a previous one.
RESULT_MEMO_SIZE = 2

#: A worker exits after the coordinator has been unreachable for this
#: long — wall clock, not a strike count, so the tolerance is independent
#: of how fast polls fail. Long enough to ride out a coordinator restart
#: plus ``cluster serve --resume``; short enough that an orphaned
#: subprocess worker terminates instead of spinning forever.
#: ``cluster worker --max-coordinator-downtime`` overrides it.
DEFAULT_MAX_COORDINATOR_DOWNTIME = 10.0


def _snapshot_delta(before: dict, after: dict, namespace: str) -> dict:
    hits_before, misses_before = before.get(namespace, (0, 0))
    hits, misses = after.get(namespace, (0, 0))
    return {"hits": hits - hits_before, "misses": misses - misses_before}


class ClusterWorker:
    """Executes jobs against a shared store; one instance per process/thread.

    ``store``/``cache`` may be shared with other in-process workers (the
    :class:`ArtifactCache` is thread-safe); subprocess workers open their
    own over the same persistent backend and converge through the store's
    CAS index instead.
    """

    #: Index saves are batched this hard in worker-owned caches
    #: (:data:`repro.containers.store.BULK_FLUSH_EVERY`): a
    #: thousand-publish preprocess job costs O(n) index bytes instead of
    #: O(n^2). Safe because :meth:`run_one` flushes before announcing
    #: completion — no artifact key is published before its artifacts —
    #: and the lease-renewal heartbeat flushes mid-job, bounding how long
    #: a concurrent GC could see the job's blobs as unindexed orphans.
    FLUSH_EVERY = BULK_FLUSH_EVERY

    def __init__(self, client, store: BlobStore,
                 cache: ArtifactCache | None = None,
                 worker_id: str = "",
                 max_workers: int | None = 1,
                 registry: MetricsRegistry | None = None,
                 local_tier_dir: str = "",
                 tier_flush_interval: float | None = None,
                 max_coordinator_downtime: float | None = None):
        self.client = client
        self.worker_id = worker_id or f"worker-{id(self):x}"
        self.max_coordinator_downtime = (
            DEFAULT_MAX_COORDINATOR_DOWNTIME
            if max_coordinator_downtime is None else max_coordinator_downtime)
        #: Per-worker metrics, shipped to the coordinator as heartbeat
        #: deltas. Subprocess workers (``cluster worker``) share this
        #: registry with their store backend so wire-client latencies ride
        #: along; thread-mode LocalCluster workers own one each.
        self.registry = registry if registry is not None else MetricsRegistry()
        # The client counts its coordinator reconnects; rebinding it onto
        # this registry puts them on the heartbeat channel (`cluster top`
        # shows who is riding out a flaky coordinator link).
        rebind = getattr(client, "bind_registry", None)
        if rebind is not None:
            rebind(self.registry)
        self.tier: TieredBackend | None = None
        if local_tier_dir:
            # The ccache topology: a worker-private FileBackend tier in
            # front of the (typically remote) shared store. The tier dir
            # is keyed by worker_tier_id, so restarting the same worker id
            # re-warms from its own disk while two workers sharing a
            # --local-tier root never collide. The tier's counters live in
            # this worker's registry — heartbeat deltas carry hit/miss/
            # flush rates to the coordinator without extra wire traffic.
            if cache is not None:
                raise ClusterError(
                    "local_tier_dir and an externally-built cache are "
                    "mutually exclusive: the cache must read through the "
                    "tier, not around it")
            local = FileBackend(
                os.path.join(local_tier_dir, self.worker_tier_id))
            self.tier = TieredBackend(
                local, store.backend,
                flush_interval=tier_flush_interval,
                registry=self.registry, tier_id=self.worker_tier_id)
            store = BlobStore(self.tier)
        self.store = store
        self.cache = cache if cache is not None \
            else ArtifactCache(store, flush_every=self.FLUSH_EVERY)
        #: Thread-pool width for per-TU loops *inside* a job. Defaults to 1:
        #: cluster parallelism comes from many workers, not nested pools.
        self.max_workers = max_workers
        self.jobs_done = 0
        self.jobs_failed = 0
        self.recorder = _trace.TraceRecorder()
        self._jobs_done = self.registry.counter("cluster.worker.jobs_done")
        self._jobs_failed = self.registry.counter("cluster.worker.jobs_failed")
        self._metrics_lock = threading.Lock()
        self._metrics_sent = empty_snapshot()
        self._memo: OrderedDict[str, object] = OrderedDict()
        self._apps: OrderedDict[str, object] = OrderedDict()
        self._memo_lock = threading.Lock()

    @property
    def worker_tier_id(self) -> str:
        """Stable, filesystem-safe identity for this worker's local tier
        directory: the worker id with anything outside ``[A-Za-z0-9._-]``
        replaced. Restarting ``--worker-id w1`` reuses ``w1``'s tier."""
        return re.sub(r"[^A-Za-z0-9._-]", "_", self.worker_id) or "worker"

    def _pop_metrics_delta(self) -> dict | None:
        """The registry delta since the last pop, or None when idle.

        Shared by the fetch loop and the lease-renewal heartbeat thread
        (hence the lock). The delta is committed when popped: if the send
        it rides on then fails, those increments are lost — acceptable,
        because a coordinator that is down loses far more than one
        heartbeat's telemetry.
        """
        with self._metrics_lock:
            # Resource gauges and the span-ring drop count ride every
            # heartbeat delta — the farm view stays current without a
            # dedicated telemetry channel.
            sample_process_gauges(self.registry)
            sync_dropped_counter(self.registry, "telemetry.spans_dropped",
                                 self.recorder.dropped)
            snap = self.registry.snapshot()
            delta = snapshot_delta(snap, self._metrics_sent)
            if is_empty_snapshot(delta):
                return None
            self._metrics_sent = snap
            return delta

    def _drain_spans(self) -> list[dict] | None:
        spans = self.recorder.drain()
        return [span.to_json() for span in spans] if spans else None

    # -- loop ------------------------------------------------------------------

    def run_one(self) -> bool:
        """Fetch and execute one job; False when the queue had none."""
        job = self.client.fetch(self.worker_id,
                                metrics=self._pop_metrics_delta())
        if job is None:
            return False
        stop_renewal = self._start_lease_renewal(job.job_id)
        started = time.perf_counter()
        try:
            result = self._execute_traced(job)
            if self.cache.persistent:
                # Publish-before-announce: the completion report releases
                # jobs that *require* this one's artifact keys, so every
                # batched index entry must be on the shared store first.
                self.cache.flush_index()
            if self.tier is not None:
                # And every blob behind those entries: an index save with
                # no dirty keys never touches a ref, so the tier's
                # ref-write flush hook cannot be relied on here.
                self.tier.flush()
        except Exception as exc:
            self.registry.histogram("cluster.worker.job_seconds",
                                    kind=job.kind).observe(
                time.perf_counter() - started)
            self.jobs_failed += 1
            self._jobs_failed.inc()
            stop_renewal()
            self.client.fail(job.job_id, self.worker_id, str(exc),
                             spans=self._drain_spans(),
                             metrics=self._pop_metrics_delta())
            return True
        self.registry.histogram("cluster.worker.job_seconds",
                                kind=job.kind).observe(
            time.perf_counter() - started)
        stop_renewal()
        self.jobs_done += 1
        self._jobs_done.inc()
        self.client.complete(job.job_id, self.worker_id, result,
                             spans=self._drain_spans(),
                             metrics=self._pop_metrics_delta())
        return True

    def _execute_traced(self, job: Job):
        """Run :meth:`execute`, under a recorded span when the job carries
        a trace context — the span (and any the stages open) is pushed to
        the coordinator with the completion report."""
        if not job.trace:
            return self._execute_logged(job)
        with _trace.recording(self.recorder), \
                _trace.span(f"cluster.worker.{job.kind}", parent=job.trace,
                            attrs={"job_id": job.job_id,
                                   "worker": self.worker_id}):
            return self._execute_logged(job)

    def _execute_logged(self, job: Job):
        """Run :meth:`execute`; any escape — handled failure or crash —
        leaves an error event behind. Emitted inside the still-active job
        span, so the event carries the failing execution's trace/span ids
        (what a crash dump cross-links against the Chrome export)."""
        try:
            return self.execute(job)
        except BaseException as exc:
            _events.emit("error", "job execution failed",
                         job_id=job.job_id, kind=job.kind,
                         worker=self.worker_id,
                         error=f"{type(exc).__name__}: {exc}")
            raise

    def _start_lease_renewal(self, job_id: str):
        """Heartbeat the lease while a long job executes.

        Without this, any job outlasting the lease would be "expired" off
        a perfectly healthy worker and re-run elsewhere. Renewal failing
        (coordinator gone, or we *did* lose the lease to a real expiry)
        just stops the heartbeat — completion reporting handles the rest
        idempotently. Returns a stop function.
        """
        from repro.cluster.coordinator import DEFAULT_LEASE_SECONDS
        lease = (getattr(self.client, "lease_seconds", None)
                 or DEFAULT_LEASE_SECONDS)
        interval = min(max(0.05, lease / 3.0), 15.0)
        stop = threading.Event()

        def _renew_loop() -> None:
            while not stop.wait(interval):
                try:
                    # The renewal heartbeat doubles as the mid-job
                    # telemetry channel — long jobs surface their counters
                    # in `cluster top` before they complete.
                    if not self.client.renew(job_id, self.worker_id,
                                             metrics=self._pop_metrics_delta()):
                        return
                except ClusterError:
                    return
                if self.cache.persistent:
                    # Piggyback an index flush on the heartbeat: batched
                    # entries become visible (and GC-protected) every
                    # interval, not only at job completion.
                    try:
                        self.cache.flush_index()
                        if self.tier is not None:
                            self.tier.flush()
                    except Exception as exc:
                        # Survivable — the flush re-runs on the next beat
                        # and completion's flush is the backstop — but an
                        # operator watching events must see a store that
                        # is rejecting index writes, not silence.
                        _events.emit(
                            "warn", "heartbeat index flush failed; "
                            "retrying next beat", worker=self.worker_id,
                            job_id=job_id,
                            error=f"{type(exc).__name__}: {exc}")

        thread = threading.Thread(target=_renew_loop, daemon=True,
                                  name=f"lease-{self.worker_id}")
        thread.start()

        def _stop() -> None:
            stop.set()
            thread.join(timeout=5)

        return _stop

    #: Idle polling backs off geometrically from ``poll_seconds`` up to
    #: this cap, and snaps back on the first job — a long-lived service
    #: worker costs ~1 connection/second at rest, not 50.
    MAX_POLL_SECONDS = 1.0

    def run(self, stop: threading.Event | None = None,
            poll_seconds: float = 0.02,
            max_idle_seconds: float | None = None) -> None:
        """Pull until stopped (or idle past ``max_idle_seconds``).

        The idle cutoff is how subprocess workers terminate in tests and
        CI; a service deployment runs without one and lives until the
        coordinator goes away.
        """
        idle_since: float | None = None
        down_since: float | None = None
        delay = poll_seconds
        while stop is None or not stop.is_set():
            try:
                busy = self.run_one()
                if down_since is not None:
                    _events.emit("info", "coordinator link restored",
                                 worker=self.worker_id,
                                 downtime=round(time.monotonic() - down_since,
                                                2))
                down_since = None
            except ClusterError as exc:
                # Coordinator unreachable (restarting, or gone for good).
                # The client already retried each call with backoff; the
                # loop-level policy is *time-based*: keep re-polling until
                # the coordinator has been down max_coordinator_downtime
                # seconds — long enough for a restart + --resume — then
                # exit so an orphaned worker terminates instead of
                # spinning.
                now = time.monotonic()
                down_since = down_since if down_since is not None else now
                if now - down_since >= self.max_coordinator_downtime:
                    _events.emit("error", "coordinator down too long; "
                                 "worker exiting", worker=self.worker_id,
                                 downtime=round(now - down_since, 2),
                                 limit=self.max_coordinator_downtime,
                                 error=str(exc))
                    return
                busy = False
            if busy:
                idle_since = None
                delay = poll_seconds
                continue
            now = time.monotonic()
            idle_since = idle_since if idle_since is not None else now
            if max_idle_seconds is not None \
                    and now - idle_since >= max_idle_seconds:
                break
            # Jitter the reconnect backoff when the coordinator is down:
            # a fleet whose polls failed together must not retry in
            # lockstep against a just-restarted coordinator.
            wait_for = delay if down_since is None \
                else delay * (0.5 + random.random())
            if stop is not None and stop.wait(wait_for):
                break
            if stop is None:
                time.sleep(wait_for)
            delay = min(delay * 2, self.MAX_POLL_SECONDS)
        try:
            self.client.goodbye(self.worker_id)
        except ClusterError:  # pragma: no cover - coordinator already gone
            pass
        # Release pooled wire sessions (RemoteBackend-backed stores keep a
        # warm connection pool); shared backends just drop their idle
        # sockets — the next user reconnects lazily.
        close = getattr(self.store.backend, "close", None)
        if close is not None:
            close()

    # -- job execution ---------------------------------------------------------

    def execute(self, job: Job) -> dict:
        if self.cache.persistent:
            # Sync the in-memory index with the shared ref: this job was
            # scheduled because upstream jobs *announced* their artifact
            # keys, and the whole point of the gate is that we resolve
            # their entries as hits instead of redoing the work.
            self.cache.entries()
        if job.kind == "preprocess":
            return self._run_preprocess(job.spec)
        if job.kind == "ir-compile":
            return self._run_ir_compile(job.spec)
        if job.kind == "lower":
            return self._run_lower(job.spec)
        if job.kind == "deploy":
            return self._run_deploy(job.spec)
        raise ClusterError(f"unknown job kind {job.kind!r}")

    def _resolve_app(self, build: BuildSpec):
        """App models are deterministic per spec; build each once per worker
        (a GROMACS-sized synthetic tree is expensive to regenerate per job).
        """
        from repro.util.hashing import stable_hash
        key = stable_hash({"app": build.app, "scale": build.scale})
        with self._memo_lock:
            if key in self._apps:
                self._apps.move_to_end(key)
                return self._apps[key]
        app = build.resolve_app()
        with self._memo_lock:
            self._apps[key] = app
            while len(self._apps) > RESULT_MEMO_SIZE:
                self._apps.popitem(last=False)
        return app

    def _stage_inputs(self, build: BuildSpec, configs: list[dict]) -> dict:
        from repro.perf.model import default_build_environment
        return {
            "app": self._resolve_app(build), "configs": configs,
            "env": default_build_environment(),
            "arch_family": build.arch_family,
            "stats": PipelineStats(configurations=len(configs)),
            "cache": self.cache, "max_workers": self.max_workers,
        }

    def _run_stages(self, stages: list, inputs: dict) -> PipelineStats:
        pipeline = Pipeline("cluster-job", inputs=tuple(inputs))
        for stage in stages:
            pipeline.register(stage)
        pipeline.run(inputs)
        stats: PipelineStats = inputs["stats"]
        # Fold the build's pipeline counters into the worker registry so
        # the next heartbeat delta carries them farm-ward.
        stats.publish_to(self.registry)
        return stats

    def _run_preprocess(self, spec: dict) -> dict:
        build = BuildSpec.from_json(spec["build"])
        stats = self._run_stages(
            [ConfigureStage(), PreprocessStage()],
            self._stage_inputs(build, [dict(spec["config"])]))
        return {"configure_ops": stats.configure_ops,
                "preprocess_ops": stats.preprocess_ops,
                "tus": stats.total_tus}

    def _run_ir_compile(self, spec: dict) -> dict:
        build = BuildSpec.from_json(spec["build"])
        stats = self._run_stages(
            [ConfigureStage(), PreprocessStage(), OpenMPStage(),
             VectorizeStage(), IRCompileStage()],
            self._stage_inputs(build, [dict(spec["config"])]))
        return {"configure_ops": stats.configure_ops,
                "preprocess_ops": stats.preprocess_ops,
                "ir_compile_ops": stats.ir_compile_ops,
                "final_irs": stats.final_irs}

    def _build_result(self, build: BuildSpec):
        """The warm full build every lower/deploy job starts from.

        Every stage resolves through the shared store (configurations, the
        preprocess jobs' text, the ir-compile jobs' modules), so this costs
        deserialization, not compilation; the memo amortizes even that
        across the jobs of one batch.
        """
        from repro.core import build_ir_container
        from repro.util.hashing import stable_hash
        key = stable_hash(build.to_json())
        with self._memo_lock:
            if key in self._memo:
                self._memo.move_to_end(key)
                return self._memo[key]
        app = self._resolve_app(build)
        result = build_ir_container(app, [dict(c) for c in build.configs],
                                    store=self.store, cache=self.cache,
                                    arch_family=build.arch_family,
                                    max_workers=self.max_workers)
        with self._memo_lock:
            self._memo[key] = (app, result)
            while len(self._memo) > RESULT_MEMO_SIZE:
                self._memo.popitem(last=False)
        return app, result

    def _run_lower(self, spec: dict) -> dict:
        from repro.core import lower_configuration
        build = BuildSpec.from_json(spec["build"])
        _app, result = self._build_result(build)
        before = self.cache.snapshot()
        count = lower_configuration(result, dict(spec["options"]),
                                    spec["simd"], cache=self.cache)
        delta = _snapshot_delta(before, self.cache.snapshot(), "lower")
        return {"simd": spec["simd"], "family": spec.get("family", ""),
                "lowerings": count,
                "lowerings_performed": delta["misses"],
                "lowerings_reused": delta["hits"]}

    def _run_deploy(self, spec: dict) -> dict:
        from repro.core import deploy_ir_container
        from repro.discovery import get_system
        build = BuildSpec.from_json(spec["build"])
        app, result = self._build_result(build)
        system = get_system(spec["system"])
        before = self.cache.snapshot()
        dep = deploy_ir_container(result, app, dict(spec["options"]), system,
                                  self.store,
                                  simd_override=spec.get("simd_override"),
                                  cache=self.cache)
        delta = _snapshot_delta(before, self.cache.snapshot(), "lower")
        return {"system": system.name, "tag": dep.tag,
                "simd": dep.simd_name, "lowered_count": dep.lowered_count,
                "image_digest": dep.image.digest,
                "lowerings_performed": delta["misses"],
                "lowerings_reused": delta["hits"]}
