"""The compiler substrate: a self-contained Clang/LLVM analog.

Pipeline stages, matching the paper's analysis of where specialization
decisions bind (Sec. 3.1):

========================  =====================================================
Stage                     Module
========================  =====================================================
Preprocessing (``-D``)    :mod:`repro.compiler.preprocessor`
Parse/AST                 :mod:`repro.compiler.lexer`, :mod:`~repro.compiler.parser`
IR generation             :mod:`repro.compiler.frontend`, :mod:`~repro.compiler.ir`
Analyses & passes         :mod:`repro.compiler.passes`
ISA lowering (``-msimd``) :mod:`repro.compiler.lowering`, :mod:`~repro.compiler.target`
Reference execution       :mod:`repro.compiler.interpreter`
Driver & flag taxonomy    :mod:`repro.compiler.driver`
========================  =====================================================
"""

from repro.compiler.driver import (
    Compiler,
    CompileOptions,
    CompileResult,
    classify_flags,
    make_resolver,
)
from repro.compiler.frontend import compile_source_to_ir
from repro.compiler.interpreter import Interpreter, run_function
from repro.compiler.lowering import MachineModule, lower_module
from repro.compiler.passes import analyze_vectorizable, detect_openmp, vectorize
from repro.compiler.preprocessor import Preprocessor, PreprocessorError
from repro.compiler.target import ALL_TARGETS, TargetMachine, get_target

__all__ = [
    "Compiler",
    "CompileOptions",
    "CompileResult",
    "classify_flags",
    "make_resolver",
    "compile_source_to_ir",
    "Interpreter",
    "run_function",
    "MachineModule",
    "lower_module",
    "analyze_vectorizable",
    "detect_openmp",
    "vectorize",
    "Preprocessor",
    "PreprocessorError",
    "ALL_TARGETS",
    "TargetMachine",
    "get_target",
]
