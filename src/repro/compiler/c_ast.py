"""AST node definitions for the C subset.

The frontend (:mod:`repro.compiler.frontend`) lowers these nodes to the
structured IR; the OpenMP-detection pass (:mod:`repro.compiler.passes`)
walks them looking for ``omp`` pragma annotations, mirroring the Clang AST
analysis described in Sec. 4.3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class CType:
    """A scalar C type with optional pointer depth (``double*`` etc.)."""

    name: str  # int | long | float | double | void | char | bool
    pointer: int = 0
    const: bool = False
    unsigned: bool = False

    def __str__(self) -> str:
        out = ("const " if self.const else "") + ("unsigned " if self.unsigned else "") + self.name
        return out + "*" * self.pointer

    @property
    def is_pointer(self) -> bool:
        return self.pointer > 0

    @property
    def is_float(self) -> bool:
        return self.pointer == 0 and self.name in ("float", "double")

    @property
    def elem_bits(self) -> int:
        """Bit width of the scalar element (pointers report their pointee)."""
        return {"char": 8, "bool": 8, "int": 32, "long": 64,
                "float": 32, "double": 64, "void": 0}[self.name]

    def pointee(self) -> "CType":
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.name, self.pointer - 1, self.const, self.unsigned)


# -- expressions ------------------------------------------------------------

class Expr:
    """Base class for expressions (children() enables generic walks)."""

    def children(self) -> Iterator["Expr"]:
        return iter(())


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float
    is_single: bool = False  # 1.0f vs 1.0


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class Name(Expr):
    ident: str


@dataclass
class BinOp(Expr):
    op: str  # + - * / % < > <= >= == != && || & | ^ << >>
    lhs: Expr
    rhs: Expr

    def children(self):
        yield self.lhs
        yield self.rhs


@dataclass
class UnOp(Expr):
    op: str  # - ! ~
    operand: Expr

    def children(self):
        yield self.operand


@dataclass
class Cast(Expr):
    type: CType
    operand: Expr

    def children(self):
        yield self.operand


@dataclass
class Call(Expr):
    callee: str
    args: list[Expr]

    def children(self):
        yield from self.args


@dataclass
class Index(Expr):
    base: Expr
    index: Expr

    def children(self):
        yield self.base
        yield self.index


@dataclass
class Assign(Expr):
    """Assignment and compound assignment (target = Name or Index)."""

    op: str  # = += -= *= /=
    target: Expr
    value: Expr

    def children(self):
        yield self.target
        yield self.value


# -- statements ---------------------------------------------------------------

class Stmt:
    """Base class for statements; ``pragmas`` holds attached #pragma text."""

    pragmas: list[str] = []

    def children_stmts(self) -> Iterator["Stmt"]:
        return iter(())

    def children_exprs(self) -> Iterator[Expr]:
        return iter(())


@dataclass
class Decl(Stmt):
    type: CType
    name: str
    init: Optional[Expr] = None
    pragmas: list[str] = field(default_factory=list)

    def children_exprs(self):
        if self.init is not None:
            yield self.init


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    pragmas: list[str] = field(default_factory=list)

    def children_exprs(self):
        yield self.expr


@dataclass
class If(Stmt):
    cond: Expr
    then: "Block"
    orelse: Optional["Block"] = None
    pragmas: list[str] = field(default_factory=list)

    def children_stmts(self):
        yield self.then
        if self.orelse is not None:
            yield self.orelse

    def children_exprs(self):
        yield self.cond


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: "Block"
    pragmas: list[str] = field(default_factory=list)

    def children_stmts(self):
        if self.init is not None:
            yield self.init
        yield self.body

    def children_exprs(self):
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step


@dataclass
class While(Stmt):
    cond: Expr
    body: "Block"
    pragmas: list[str] = field(default_factory=list)

    def children_stmts(self):
        yield self.body

    def children_exprs(self):
        yield self.cond


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    pragmas: list[str] = field(default_factory=list)

    def children_exprs(self):
        if self.value is not None:
            yield self.value


@dataclass
class Break(Stmt):
    pragmas: list[str] = field(default_factory=list)


@dataclass
class Continue(Stmt):
    pragmas: list[str] = field(default_factory=list)


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)
    pragmas: list[str] = field(default_factory=list)

    def children_stmts(self):
        yield from self.stmts


# -- top level ----------------------------------------------------------------

@dataclass
class Param:
    type: CType
    name: str


@dataclass
class FuncDef:
    ret_type: CType
    name: str
    params: list[Param]
    body: Optional[Block]  # None => extern declaration
    is_static: bool = False
    pragmas: list[str] = field(default_factory=list)

    @property
    def is_declaration(self) -> bool:
        return self.body is None


@dataclass
class GlobalDecl:
    type: CType
    name: str
    init: Optional[Expr] = None
    is_extern: bool = False


@dataclass
class TranslationUnitAST:
    """A parsed file: functions and globals, in declaration order."""

    functions: list[FuncDef] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for fn in self.functions:
            if fn.name == name and not fn.is_declaration:
                return fn
        raise KeyError(f"no function definition named {name!r}")

    def walk_stmts(self) -> Iterator[Stmt]:
        """Depth-first iteration over every statement in the unit."""
        stack: list[Stmt] = [fn.body for fn in self.functions if fn.body is not None]
        while stack:
            stmt = stack.pop()
            yield stmt
            stack.extend(stmt.children_stmts())
