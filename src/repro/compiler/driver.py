"""Clang-like compiler driver: flag parsing, classification, and pipelines.

The XaaS IR pipeline treats the compiler as a black box with a known flag
taxonomy (Sec. 4.3): ``-D``/``-I``/``-fopenmp`` shape the IR; ``-m<isa>`` and
``-O`` only shape the final machine code. :func:`classify_flags` encodes that
taxonomy and is what lets the pipeline drop target/optimization flags when
deciding whether two compile commands can share one IR file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir
from repro.compiler.frontend import lower_unit
from repro.compiler.lowering import MachineModule, lower_module
from repro.compiler.parser import parse
from repro.compiler.preprocessor import IncludeResolver, Preprocessor, PreprocessResult
from repro.compiler.target import ALL_TARGETS, TargetMachine, get_target


class DriverError(ValueError):
    pass


# Flags the driver understands, by pipeline stage.
_SIMD_FLAG_PREFIX = "-msimd="
_TARGET_FLAG_PREFIX = "--target="


@dataclass(frozen=True)
class FlagClassification:
    """Compile-command flags split by the pipeline stage that consumes them."""

    frontend: tuple[str, ...]  # -D / -U / -I / -fopenmp: shape the IR
    target: tuple[str, ...]    # -msimd= / --target=: shape machine code only
    opt: tuple[str, ...]       # -O levels: shape machine code only
    other: tuple[str, ...]     # -c, -o, warnings...: no effect on output


def classify_flags(flags: list[str]) -> FlagClassification:
    """Split flags by consuming stage; order within a class is preserved."""
    frontend: list[str] = []
    target: list[str] = []
    opt: list[str] = []
    other: list[str] = []
    i = 0
    while i < len(flags):
        flag = flags[i]
        if flag.startswith(("-D", "-U")) or flag == "-fopenmp":
            frontend.append(flag)
        elif flag == "-I":
            if i + 1 >= len(flags):
                raise DriverError("-I requires an argument")
            frontend.append(f"-I{flags[i + 1]}")
            i += 1
        elif flag.startswith("-I"):
            frontend.append(flag)
        elif flag.startswith(_SIMD_FLAG_PREFIX) or flag.startswith(_TARGET_FLAG_PREFIX) \
                or flag.startswith("-march=") or flag.startswith("-mcpu="):
            target.append(flag)
        elif flag.startswith("-O"):
            opt.append(flag)
        elif flag in ("-o", "-MF", "-MT"):
            i += 1  # skip the argument too
            other.append(flag)
        else:
            other.append(flag)
        i += 1
    return FlagClassification(tuple(frontend), tuple(target), tuple(opt), tuple(other))


@dataclass
class CompileOptions:
    """Parsed form of a compile command's flags."""

    defines: dict[str, str | None] = field(default_factory=dict)
    include_dirs: list[str] = field(default_factory=list)
    fopenmp: bool = False
    opt_level: int = 0
    simd: str | None = None       # GROMACS-style SIMD name, e.g. "AVX_512"
    target_family: str = "x86_64"

    @classmethod
    def from_flags(cls, flags: list[str]) -> "CompileOptions":
        opts = cls()
        i = 0
        while i < len(flags):
            flag = flags[i]
            if flag.startswith("-D"):
                body = flag[2:]
                if "=" in body:
                    name, value = body.split("=", 1)
                    opts.defines[name] = value
                else:
                    opts.defines[body] = None
            elif flag.startswith("-U"):
                opts.defines.pop(flag[2:], None)
            elif flag == "-I":
                opts.include_dirs.append(flags[i + 1])
                i += 1
            elif flag.startswith("-I"):
                opts.include_dirs.append(flag[2:])
            elif flag == "-fopenmp":
                opts.fopenmp = True
            elif flag.startswith("-O"):
                level = flag[2:] or "1"
                opts.opt_level = {"0": 0, "1": 1, "2": 2, "3": 3, "s": 2, "fast": 3}.get(level, 2)
            elif flag.startswith(_SIMD_FLAG_PREFIX):
                opts.simd = flag[len(_SIMD_FLAG_PREFIX):]
            elif flag.startswith(_TARGET_FLAG_PREFIX):
                opts.target_family = flag[len(_TARGET_FLAG_PREFIX):]
            i += 1
        return opts

    def resolve_target(self) -> TargetMachine:
        """Pick the TargetMachine named by -msimd=, or the scalar default.

        The scalar level exists in both families, so "None" resolves
        through --target: aarch64 builds get the ARM scalar machine.
        """
        arm = self.target_family in ("aarch64", "arm64")
        if self.simd is None or self.simd == "None":
            return get_target("ARM_None" if arm else "None")
        return get_target(self.simd)


@dataclass
class CompileResult:
    """Everything produced for one translation unit."""

    name: str
    preprocessed: PreprocessResult
    module: ir.Module
    uses_openmp: bool


class Compiler:
    """The full simulated toolchain: preprocess -> parse -> IR -> lower.

    An include resolver maps header names to text; the build system supplies
    one backed by its virtual source tree.
    """

    def __init__(self, include_resolver: IncludeResolver | None = None):
        self.include_resolver = include_resolver

    def preprocess(self, source: str, flags: list[str],
                   filename: str = "<source>") -> PreprocessResult:
        opts = CompileOptions.from_flags(flags)
        defines = dict(opts.defines)
        if opts.fopenmp:
            defines.setdefault("_OPENMP", "202011")
        pp = Preprocessor(defines, self.include_resolver)
        return pp.preprocess(source, filename)

    def compile_to_ir(self, source: str, flags: list[str],
                      name: str = "unit") -> CompileResult:
        """Frontend half of the pipeline — this is what IR containers store.

        Only frontend-relevant flags are baked into the module; the
        classification is recorded so later stages can audit it.
        """
        opts = CompileOptions.from_flags(flags)
        pre = self.preprocess(source, flags, name)
        unit = parse(pre.text)
        classification = classify_flags(flags)
        module = lower_unit(unit, name=name, fopenmp=opts.fopenmp,
                            frontend_flags=classification.frontend)
        from repro.compiler.passes import detect_openmp
        return CompileResult(name, pre, module, detect_openmp(unit))

    def lower(self, module: ir.Module, flags: list[str]) -> MachineModule:
        """Backend half — run at deployment time in IR containers."""
        opts = CompileOptions.from_flags(flags)
        target = opts.resolve_target()
        return lower_module(module, target, opt_level=opts.opt_level)

    def compile(self, source: str, flags: list[str],
                name: str = "unit") -> tuple[CompileResult, MachineModule]:
        """Traditional one-shot compilation (what specialized builds do)."""
        result = self.compile_to_ir(source, flags, name)
        return result, self.lower(result.module, flags)


def compile_to_ir_cached(compiler: Compiler, source: str, flags: list[str],
                         name: str = "unit", cache=None,
                         context_key=None) -> tuple[str, ir.Module, bool]:
    """Cache-aware frontend: ``(canonical IR text, module, freshly compiled)``.

    The cache key covers the source text, the frontend-relevant flags, and a
    caller-supplied ``context_key`` capturing everything the include
    resolver can reach (source-tree and generated-header digests) — the
    parts of compilation state the compiler itself cannot see. Entries are
    payload-only artifacts (``cache`` is an
    :class:`~repro.containers.store.ArtifactCache`): the payload *is* the
    canonical IR text, and :func:`repro.compiler.ir.parse_module` rebuilds
    the live module when the hit comes from a persistent store another
    process warmed — zero frontend work in the cold process.
    """
    if cache is None:
        result = compiler.compile_to_ir(source, flags, name)
        return result.module.render(), result.module, True
    from repro.util.hashing import content_digest
    parts = {"src": content_digest(source), "name": name,
             "fe": sorted(classify_flags(list(flags)).frontend),
             "ctx": context_key}
    entry = cache.get("ir", parts)
    if entry is not None:
        module = entry.obj
        if module is None:
            module = ir.parse_module(entry.payload)
            # Promote the parsed module so later hits in this process share
            # one live identity (deployments compare modules by object).
            cache.put("ir", parts, entry.payload, obj=module)
        return entry.payload, module, False
    result = compiler.compile_to_ir(source, flags, name)
    text = result.module.render()
    cache.put("ir", parts, text, obj=result.module)
    return text, result.module, True


def make_resolver(headers: dict[str, str]) -> IncludeResolver:
    """Build an include resolver from a name -> text mapping."""

    def resolver(name: str, system: bool) -> str | None:
        return headers.get(name)

    return resolver
