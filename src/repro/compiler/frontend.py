"""Frontend: lowering the C-subset AST to the structured IR.

Only *frontend-relevant* inputs influence the produced IR: the preprocessed
source text and the ``-fopenmp`` flag (which decides whether ``omp`` pragmas
become loop attributes or are discarded, exactly like Clang). Target flags
(``-m<isa>``) and optimization levels deliberately play no role here — that
separation is what the IR-container pipeline exploits (Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import c_ast as A
from repro.compiler import ir
from repro.compiler.parser import parse

# Known pure math builtins: calls to these do not block vectorization and the
# interpreter implements them directly.
PURE_BUILTINS = {
    "sqrt", "sqrtf", "fabs", "fabsf", "exp", "expf", "log", "logf",
    "sin", "cos", "pow", "fmin", "fmax", "floor", "ceil", "rsqrt",
}


class FrontendError(ValueError):
    pass


def ctype_to_ir(ctype: A.CType) -> str:
    base = {"int": "i32", "long": "i64", "float": "f32", "double": "f64",
            "void": "void", "char": "i8", "bool": "i1"}[ctype.name]
    for _ in range(ctype.pointer):
        base = ir.pointer_to(base)
    return base


def _common_type(a: str, b: str) -> str:
    """C-style usual arithmetic conversion for our scalar types."""
    order = ["i1", "i8", "i32", "i64", "f32", "f64"]
    if a.startswith("ptr") or b.startswith("ptr"):
        raise FrontendError(f"arithmetic on pointer types {a}, {b}")
    return order[max(order.index(a), order.index(b))]


@dataclass
class _Scope:
    names: dict[str, tuple[str, str]] = field(default_factory=dict)  # src -> (reg, type)


class _FunctionLowering:
    def __init__(self, fn: A.FuncDef, fopenmp: bool, global_types: dict[str, str]):
        self.fn = fn
        self.fopenmp = fopenmp
        self.scopes: list[_Scope] = [_Scope()]
        self.temp_counter = 0
        self.rename_counter: dict[str, int] = {}
        self.global_types = global_types

    # -- naming ----------------------------------------------------------------

    def _fresh_temp(self, hint: str = "t") -> str:
        self.temp_counter += 1
        return f".{hint}{self.temp_counter}"

    def _declare(self, src_name: str, typ: str) -> str:
        n = self.rename_counter.get(src_name, 0)
        self.rename_counter[src_name] = n + 1
        reg = src_name if n == 0 else f"{src_name}.{n}"
        self.scopes[-1].names[src_name] = (reg, typ)
        return reg

    def _lookup(self, src_name: str) -> tuple[str, str]:
        for scope in reversed(self.scopes):
            if src_name in scope.names:
                return scope.names[src_name]
        if src_name in self.global_types:
            return f"@{src_name}", self.global_types[src_name]
        raise FrontendError(f"function {self.fn.name}: undeclared identifier {src_name!r}")

    # -- main -------------------------------------------------------------------

    def lower(self) -> ir.Function:
        params = []
        for p in self.fn.params:
            typ = ctype_to_ir(p.type)
            reg = self._declare(p.name, typ)
            params.append((reg, typ))
        body = ir.Region()
        self._lower_block(self.fn.body, body)
        ret_type = ctype_to_ir(self.fn.ret_type)
        if ret_type == "void" and not (body.ops and isinstance(body.ops[-1], ir.ReturnOp)):
            body.ops.append(ir.ReturnOp())
        return ir.Function(self.fn.name, params, ret_type, body)

    def _lower_block(self, block: A.Block, region: ir.Region) -> None:
        self.scopes.append(_Scope())
        try:
            for stmt in block.stmts:
                self._lower_stmt(stmt, region)
        finally:
            self.scopes.pop()

    # -- statements ----------------------------------------------------------------

    def _lower_stmt(self, stmt: A.Stmt, region: ir.Region) -> None:
        if isinstance(stmt, A.Decl):
            typ = ctype_to_ir(stmt.type)
            init_val = None
            if stmt.init is not None:
                init_val = self._coerce(self._lower_expr(stmt.init, region), typ, region)
            reg = self._declare(stmt.name, typ)
            if init_val is not None:
                region.ops.append(ir.Instr("copy", reg, [init_val], typ))
        elif isinstance(stmt, A.ExprStmt):
            self._lower_expr(stmt.expr, region, want_value=False)
        elif isinstance(stmt, A.If):
            cond = self._as_bool(self._lower_expr(stmt.cond, region), region)
            then = ir.Region()
            self._lower_block(stmt.then, then)
            orelse = ir.Region()
            if stmt.orelse is not None:
                self._lower_block(stmt.orelse, orelse)
            region.ops.append(ir.IfOp(cond, then, orelse))
        elif isinstance(stmt, A.For):
            self._lower_for(stmt, region)
        elif isinstance(stmt, A.While):
            cond_region = ir.Region()
            cond = self._as_bool(self._lower_expr(stmt.cond, cond_region), cond_region)
            body = ir.Region()
            self._lower_block(stmt.body, body)
            region.ops.append(ir.WhileOp(cond_region, cond, body))
        elif isinstance(stmt, A.Return):
            value = None
            if stmt.value is not None:
                value = self._coerce(self._lower_expr(stmt.value, region),
                                     ctype_to_ir(self.fn.ret_type), region)
            region.ops.append(ir.ReturnOp(value))
        elif isinstance(stmt, A.Break):
            region.ops.append(ir.BreakOp())
        elif isinstance(stmt, A.Continue):
            region.ops.append(ir.ContinueOp())
        elif isinstance(stmt, A.Block):
            self._lower_block(stmt, region)
        else:  # pragma: no cover - defensive
            raise FrontendError(f"unsupported statement {type(stmt).__name__}")

    def _lower_for(self, stmt: A.For, region: ir.Region) -> None:
        """Lower a for statement; canonical loops become ForOp."""
        canonical = self._try_canonical_for(stmt, region)
        if canonical is not None:
            forop = canonical
            self._attach_omp(stmt, forop)
            region.ops.append(forop)
            return
        # Fallback: generic lowering through WhileOp.
        self.scopes.append(_Scope())
        try:
            if stmt.init is not None:
                self._lower_stmt(stmt.init, region)
            cond_region = ir.Region()
            if stmt.cond is not None:
                cond = self._as_bool(self._lower_expr(stmt.cond, cond_region), cond_region)
            else:
                cond = ir.Const(1, "i1")
            body = ir.Region()
            self._lower_block(stmt.body, body)
            if stmt.step is not None:
                self._lower_expr(stmt.step, body, want_value=False)
            region.ops.append(ir.WhileOp(cond_region, cond, body))
        finally:
            self.scopes.pop()

    def _try_canonical_for(self, stmt: A.For, region: ir.Region) -> ir.ForOp | None:
        """Recognize ``for (int i = E; i < B; i++/i += c)`` shapes."""
        if not isinstance(stmt.init, A.Decl) or stmt.init.init is None:
            return None
        if not isinstance(stmt.cond, A.BinOp) or stmt.cond.op not in ("<", "<="):
            return None
        if not isinstance(stmt.cond.lhs, A.Name) or stmt.cond.lhs.ident != stmt.init.name:
            return None
        step_const = self._step_constant(stmt.step, stmt.init.name)
        if step_const is None or step_const <= 0:
            return None
        ivar_type = ctype_to_ir(stmt.init.type)
        if ivar_type not in ("i32", "i64"):
            return None
        start = self._coerce(self._lower_expr(stmt.init.init, region), ivar_type, region)
        bound = self._coerce(self._lower_expr(stmt.cond.rhs, region), ivar_type, region)
        if stmt.cond.op == "<=":
            tmp = self._fresh_temp("b")
            region.ops.append(ir.Instr(f"add.{ivar_type}", tmp,
                                       [bound, ir.Const(1, ivar_type)], ivar_type))
            bound = ir.Ref(tmp, ivar_type)
        self.scopes.append(_Scope())
        try:
            ivar_reg = self._declare(stmt.init.name, ivar_type)
            body = ir.Region()
            self._lower_block(stmt.body, body)
        finally:
            self.scopes.pop()
        attrs = {"bound_src": _expr_to_src(stmt.cond.rhs), "start_src": _expr_to_src(stmt.init.init)}
        return ir.ForOp(ivar_reg, start, bound, ir.Const(step_const, ivar_type), body, attrs)

    @staticmethod
    def _step_constant(step: A.Expr | None, ivar: str) -> int | None:
        """Return the loop increment if step is i++/i+=c, else None."""
        if step is None:
            return None
        if isinstance(step, A.Assign) and isinstance(step.target, A.Name) and step.target.ident == ivar:
            if step.op == "+=" and isinstance(step.value, A.IntLit):
                return step.value.value
            if step.op == "=" and isinstance(step.value, A.BinOp) and step.value.op == "+":
                lhs, rhs = step.value.lhs, step.value.rhs
                if isinstance(lhs, A.Name) and lhs.ident == ivar and isinstance(rhs, A.IntLit):
                    return rhs.value
        return None

    def _attach_omp(self, stmt: A.For, forop: ir.ForOp) -> None:
        """Translate OpenMP pragmas into loop attributes when -fopenmp is on."""
        for pragma in stmt.pragmas:
            words = pragma.split()
            if not words or words[0] != "omp":
                continue
            if not self.fopenmp:
                continue  # without -fopenmp the pragma is ignored, as in C compilers
            directive = " ".join(words[1:])
            if directive.startswith("parallel for") or directive.startswith("for"):
                forop.attrs["omp_parallel"] = True
                reds = _parse_reduction_clause(pragma)
                if reds:
                    forop.attrs["omp_reductions"] = reds
            elif directive.startswith("simd"):
                forop.attrs["omp_simd"] = True

    # -- expressions -------------------------------------------------------------------

    def _lower_expr(self, expr: A.Expr, region: ir.Region, want_value: bool = True) -> ir.Value:
        if isinstance(expr, A.IntLit):
            return ir.Const(expr.value, "i32")
        if isinstance(expr, A.FloatLit):
            return ir.Const(expr.value, "f32" if expr.is_single else "f64")
        if isinstance(expr, A.StrLit):
            return ir.Const(0, "ptr.i8")  # strings appear only in diagnostics
        if isinstance(expr, A.Name):
            reg, typ = self._lookup(expr.ident)
            return ir.Ref(reg, typ)
        if isinstance(expr, A.BinOp):
            return self._lower_binop(expr, region)
        if isinstance(expr, A.UnOp):
            return self._lower_unop(expr, region)
        if isinstance(expr, A.Cast):
            val = self._lower_expr(expr.operand, region)
            return self._coerce(val, ctype_to_ir(expr.type), region, explicit=True)
        if isinstance(expr, A.Call):
            return self._lower_call(expr, region)
        if isinstance(expr, A.Index):
            base, index, elem = self._lower_index(expr, region)
            dest = self._fresh_temp("ld")
            region.ops.append(ir.LoadOp(dest, base, index, elem))
            return ir.Ref(dest, elem)
        if isinstance(expr, A.Assign):
            return self._lower_assign(expr, region, want_value)
        raise FrontendError(f"unsupported expression {type(expr).__name__}")

    def _lower_index(self, expr: A.Index, region: ir.Region) -> tuple[ir.Ref, ir.Value, str]:
        base = self._lower_expr(expr.base, region)
        if not isinstance(base, ir.Ref) or not base.type.startswith("ptr."):
            raise FrontendError(f"indexing a non-pointer value in {self.fn.name}")
        index = self._coerce(self._lower_expr(expr.index, region), "i64", region)
        return base, index, ir.pointee(base.type)

    def _lower_binop(self, expr: A.BinOp, region: ir.Region) -> ir.Value:
        lhs = self._lower_expr(expr.lhs, region)
        rhs = self._lower_expr(expr.rhs, region)
        if expr.op in ("&&", "||"):
            lhs = self._as_bool(lhs, region)
            rhs = self._as_bool(rhs, region)
            dest = self._fresh_temp("b")
            op = "and.i1" if expr.op == "&&" else "or.i1"
            region.ops.append(ir.Instr(op, dest, [lhs, rhs], "i1"))
            return ir.Ref(dest, "i1")
        common = _common_type(lhs.type, rhs.type)
        lhs = self._coerce(lhs, common, region)
        rhs = self._coerce(rhs, common, region)
        if expr.op in ("<", ">", "<=", ">=", "==", "!="):
            pred = {"<": "lt", ">": "gt", "<=": "le", ">=": "ge", "==": "eq", "!=": "ne"}[expr.op]
            dest = self._fresh_temp("c")
            region.ops.append(ir.Instr(f"cmp.{pred}.{common}", dest, [lhs, rhs], "i1"))
            return ir.Ref(dest, "i1")
        opname = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                  "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}.get(expr.op)
        if opname is None:
            raise FrontendError(f"unsupported binary operator {expr.op!r}")
        if opname == "rem" and ir.is_float_type(common):
            raise FrontendError("% on floating-point operands")
        dest = self._fresh_temp()
        region.ops.append(ir.Instr(f"{opname}.{common}", dest, [lhs, rhs], common))
        return ir.Ref(dest, common)

    def _lower_unop(self, expr: A.UnOp, region: ir.Region) -> ir.Value:
        val = self._lower_expr(expr.operand, region)
        if expr.op == "-":
            dest = self._fresh_temp("n")
            region.ops.append(ir.Instr(f"neg.{val.type}", dest, [val], val.type))
            return ir.Ref(dest, val.type)
        if expr.op == "!":
            val = self._as_bool(val, region)
            dest = self._fresh_temp("b")
            region.ops.append(ir.Instr("not.i1", dest, [val], "i1"))
            return ir.Ref(dest, "i1")
        if expr.op == "~":
            dest = self._fresh_temp()
            region.ops.append(ir.Instr(f"bnot.{val.type}", dest, [val], val.type))
            return ir.Ref(dest, val.type)
        raise FrontendError(f"unsupported unary operator {expr.op!r}")

    def _lower_call(self, expr: A.Call, region: ir.Region) -> ir.Value:
        args = [self._lower_expr(a, region) for a in expr.args]
        if expr.callee in PURE_BUILTINS:
            # Math builtins operate in f64 (f32 for the -f suffixed forms).
            want = "f32" if expr.callee.endswith("f") else "f64"
            args = [self._coerce(a, want, region) for a in args]
            dest = self._fresh_temp("m")
            region.ops.append(ir.CallOp(dest, expr.callee, args, want))
            return ir.Ref(dest, want)
        dest = self._fresh_temp("r")
        region.ops.append(ir.CallOp(dest, expr.callee, args, "f64"))
        return ir.Ref(dest, "f64")

    def _lower_assign(self, expr: A.Assign, region: ir.Region, want_value: bool) -> ir.Value:
        if isinstance(expr.target, A.Name):
            reg, typ = self._lookup(expr.target.ident)
            if expr.op == "=":
                value = self._coerce(self._lower_expr(expr.value, region), typ, region)
            else:
                cur = ir.Ref(reg, typ)
                rhs = self._lower_expr(expr.value, region)
                common = _common_type(typ, rhs.type)
                opname = {"+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "rem"}[expr.op]
                tmp = self._fresh_temp()
                region.ops.append(ir.Instr(
                    f"{opname}.{common}", tmp,
                    [self._coerce(cur, common, region), self._coerce(rhs, common, region)], common))
                value = self._coerce(ir.Ref(tmp, common), typ, region)
            region.ops.append(ir.Instr("copy", reg, [value], typ))
            return ir.Ref(reg, typ)
        if isinstance(expr.target, A.Index):
            base, index, elem = self._lower_index(expr.target, region)
            if expr.op == "=":
                value = self._coerce(self._lower_expr(expr.value, region), elem, region)
            else:
                cur = self._fresh_temp("ld")
                region.ops.append(ir.LoadOp(cur, base, index, elem))
                rhs = self._lower_expr(expr.value, region)
                common = _common_type(elem, rhs.type)
                opname = {"+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "rem"}[expr.op]
                tmp = self._fresh_temp()
                region.ops.append(ir.Instr(
                    f"{opname}.{common}", tmp,
                    [self._coerce(ir.Ref(cur, elem), common, region),
                     self._coerce(rhs, common, region)], common))
                value = self._coerce(ir.Ref(tmp, common), elem, region)
            region.ops.append(ir.StoreOp(base, index, value, elem))
            return value
        raise FrontendError("invalid assignment target")

    # -- conversions ------------------------------------------------------------------------

    def _coerce(self, value: ir.Value, target: str, region: ir.Region,
                explicit: bool = False) -> ir.Value:
        if value.type == target:
            return value
        if value.type.startswith("ptr") or target.startswith("ptr"):
            if explicit:
                return ir.Ref(value.name, target) if isinstance(value, ir.Ref) else value
            raise FrontendError(f"implicit pointer conversion {value.type} -> {target}")
        if isinstance(value, ir.Const):
            if ir.is_float_type(target):
                return ir.Const(float(value.value), target)
            return ir.Const(int(value.value), target)
        kind = _cast_kind(value.type, target)
        dest = self._fresh_temp("x")
        region.ops.append(ir.Instr(f"cast.{kind}", dest, [value], target))
        return ir.Ref(dest, target)

    def _as_bool(self, value: ir.Value, region: ir.Region) -> ir.Value:
        if value.type == "i1":
            return value
        dest = self._fresh_temp("c")
        zero = ir.Const(0.0 if ir.is_float_type(value.type) else 0, value.type)
        region.ops.append(ir.Instr(f"cmp.ne.{value.type}", dest, [value, zero], "i1"))
        return ir.Ref(dest, "i1")


def _cast_kind(src: str, dst: str) -> str:
    sf, df = ir.is_float_type(src), ir.is_float_type(dst)
    if sf and df:
        return "fpext" if ir.type_bits(dst) > ir.type_bits(src) else "fptrunc"
    if sf and not df:
        return "fptosi"
    if not sf and df:
        return "sitofp"
    return "sext" if ir.type_bits(dst) > ir.type_bits(src) else "trunc"


def _parse_reduction_clause(pragma: str) -> list[str]:
    """Extract variable names from ``reduction(op: a, b)`` clauses."""
    out: list[str] = []
    idx = 0
    while True:
        pos = pragma.find("reduction", idx)
        if pos == -1:
            return out
        open_p = pragma.find("(", pos)
        close_p = pragma.find(")", open_p)
        if open_p == -1 or close_p == -1:
            return out
        clause = pragma[open_p + 1:close_p]
        if ":" in clause:
            _, variables = clause.split(":", 1)
            out.extend(v.strip() for v in variables.split(",") if v.strip())
        idx = close_p + 1


def _expr_to_src(expr: A.Expr) -> str:
    """Render an AST expression back to source-ish text (for trip-count hints)."""
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.FloatLit):
        return repr(expr.value)
    if isinstance(expr, A.Name):
        return expr.ident
    if isinstance(expr, A.BinOp):
        return f"({_expr_to_src(expr.lhs)} {expr.op} {_expr_to_src(expr.rhs)})"
    if isinstance(expr, A.UnOp):
        return f"({expr.op}{_expr_to_src(expr.operand)})"
    if isinstance(expr, A.Call):
        return f"{expr.callee}({', '.join(_expr_to_src(a) for a in expr.args)})"
    if isinstance(expr, A.Index):
        return f"{_expr_to_src(expr.base)}[{_expr_to_src(expr.index)}]"
    if isinstance(expr, A.Cast):
        return _expr_to_src(expr.operand)
    return "?"


def lower_unit(unit: A.TranslationUnitAST, name: str = "unit",
               fopenmp: bool = False, frontend_flags: tuple[str, ...] = ()) -> ir.Module:
    """Lower a parsed translation unit to an IR module."""
    module = ir.Module(name=name, frontend_flags=tuple(frontend_flags))
    global_types: dict[str, str] = {}
    for g in unit.globals:
        typ = ctype_to_ir(g.type)
        global_types[g.name] = typ
        init = None
        if isinstance(g.init, A.IntLit):
            init = g.init.value
        elif isinstance(g.init, A.FloatLit):
            init = g.init.value
        module.globals.append(ir.GlobalVar(g.name, typ, init))
    for fn in unit.functions:
        if fn.is_declaration:
            continue
        module.functions.append(_FunctionLowering(fn, fopenmp, global_types).lower())
    return module


def compile_source_to_ir(source: str, name: str = "unit", fopenmp: bool = False,
                         frontend_flags: tuple[str, ...] = ()) -> ir.Module:
    """Parse preprocessed source and lower it in one step."""
    return lower_unit(parse(source), name, fopenmp, frontend_flags)
