"""Reference interpreter for the structured IR.

The reproduction needs ground truth: tests compile small numerical kernels,
run them through the interpreter, and check that preprocessing decisions,
optimization passes and deployment-time vectorization never change computed
values (semantic preservation is the hidden premise of the whole IR-container
idea — lowering the *same* IR on two systems must give the same program).

Pointers are numpy arrays; scalars are Python ints/floats. Execution is
deliberately straightforward — clarity over speed, per the HPC-Python guides:
the *performance model* lives in :mod:`repro.perf`, not here.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.compiler import ir


class InterpError(RuntimeError):
    pass


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
}

_CMP = {
    "lt": lambda a, b: a < b,
    "gt": lambda a, b: a > b,
    "le": lambda a, b: a <= b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}

_BUILTINS = {
    "sqrt": math.sqrt, "sqrtf": math.sqrt,
    "fabs": abs, "fabsf": abs,
    "exp": math.exp, "expf": math.exp,
    "log": math.log, "logf": math.log,
    "sin": math.sin, "cos": math.cos,
    "pow": math.pow,
    "fmin": min, "fmax": max,
    "floor": math.floor, "ceil": math.ceil,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
}

_INT_TYPES = {"i1", "i8", "i32", "i64"}
_INT_MASKS = {"i8": 0xFF, "i32": 0xFFFFFFFF, "i64": 0xFFFFFFFFFFFFFFFF}


def _wrap_int(value: int, typ: str) -> int:
    """Two's-complement wraparound to the type's width."""
    if typ == "i1":
        return 1 if value else 0
    mask = _INT_MASKS[typ]
    value &= mask
    sign = (mask >> 1) + 1
    return value - (mask + 1) if value & sign else value


class Interpreter:
    """Executes functions of an IR module.

    ``externals`` supplies Python callables for non-builtin CallOps
    (the app models use this for library calls like ``dgemm_flops``).
    ``max_steps`` bounds total executed ops to catch runaway loops in tests.
    """

    def __init__(self, module: ir.Module, externals: dict | None = None,
                 max_steps: int = 50_000_000):
        self.module = module
        self.externals = externals or {}
        self.max_steps = max_steps
        self.steps = 0
        self.globals: dict[str, Any] = {}
        for g in module.globals:
            self.globals[f"@{g.name}"] = g.init if g.init is not None else 0

    def call(self, name: str, *args: Any) -> Any:
        """Call a function by name with Python/numpy arguments."""
        fn = self.module.function(name)
        if len(args) != len(fn.params):
            raise InterpError(f"{name}: expected {len(fn.params)} args, got {len(args)}")
        env: dict[str, Any] = dict(self.globals)
        for (pname, ptype), arg in zip(fn.params, args):
            if ptype.startswith("ptr.") and not isinstance(arg, np.ndarray):
                raise InterpError(f"{name}: parameter {pname} expects an array")
            env[pname] = arg
        try:
            self._run_region(fn.body, env)
        except _ReturnSignal as ret:
            self.globals.update({k: v for k, v in env.items() if k.startswith("@")})
            return ret.value
        self.globals.update({k: v for k, v in env.items() if k.startswith("@")})
        return None

    # -- execution ------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError(f"exceeded {self.max_steps} interpreter steps")

    def _value(self, v: ir.Value, env: dict) -> Any:
        if isinstance(v, ir.Const):
            return v.value
        try:
            return env[v.name]
        except KeyError:
            raise InterpError(f"read of undefined register %{v.name}") from None

    def _run_region(self, region: ir.Region, env: dict) -> None:
        for op in region.ops:
            self._tick()
            self._run_op(op, env)

    def _run_op(self, op: ir.Op, env: dict) -> None:
        if isinstance(op, ir.Instr):
            env_val = self._eval_instr(op, env)
            if op.dest is not None:
                env[op.dest] = env_val
        elif isinstance(op, ir.LoadOp):
            arr = self._value(op.base, env)
            idx = int(self._value(op.index, env))
            if not 0 <= idx < len(arr):
                raise InterpError(f"load out of bounds: index {idx}, length {len(arr)}")
            val = arr[idx]
            env[op.dest] = float(val) if ir.is_float_type(op.type) else int(val)
        elif isinstance(op, ir.StoreOp):
            arr = self._value(op.base, env)
            idx = int(self._value(op.index, env))
            if not 0 <= idx < len(arr):
                raise InterpError(f"store out of bounds: index {idx}, length {len(arr)}")
            arr[idx] = self._value(op.value, env)
        elif isinstance(op, ir.CallOp):
            args = [self._value(a, env) for a in op.args]
            if op.callee in _BUILTINS:
                result = _BUILTINS[op.callee](*args)
            elif op.callee in self.externals:
                result = self.externals[op.callee](*args)
            else:
                try:
                    self.module.function(op.callee)
                except KeyError:
                    raise InterpError(f"call to unknown function {op.callee!r}") from None
                result = self.call(op.callee, *args)
            if op.dest is not None:
                env[op.dest] = result
        elif isinstance(op, ir.ForOp):
            self._run_for(op, env)
        elif isinstance(op, ir.WhileOp):
            while True:
                self._run_region(op.cond_region, env)
                if not self._value(op.cond, env):
                    break
                try:
                    self._run_region(op.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(op, ir.IfOp):
            if self._value(op.cond, env):
                self._run_region(op.then, env)
            else:
                self._run_region(op.orelse, env)
        elif isinstance(op, ir.ReturnOp):
            raise _ReturnSignal(None if op.value is None else self._value(op.value, env))
        elif isinstance(op, ir.BreakOp):
            raise _BreakSignal()
        elif isinstance(op, ir.ContinueOp):
            raise _ContinueSignal()
        else:  # pragma: no cover - defensive
            raise InterpError(f"unknown op {type(op).__name__}")

    def _run_for(self, op: ir.ForOp, env: dict) -> None:
        i = int(self._value(op.start, env))
        bound = int(self._value(op.bound, env))
        step = int(self._value(op.step, env))
        while i < bound:
            env[op.var] = i
            try:
                self._run_region(op.body, env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            i += step

    def _eval_instr(self, op: ir.Instr, env: dict) -> Any:
        parts = op.op.split(".")
        base = parts[0]
        if base == "copy":
            return self._cast_to(self._value(op.args[0], env), op.type)
        if base == "cast":
            return self._cast_to(self._value(op.args[0], env), op.type)
        if base == "neg":
            return -self._value(op.args[0], env)
        if base == "not":
            return 0 if self._value(op.args[0], env) else 1
        if base == "bnot":
            return _wrap_int(~int(self._value(op.args[0], env)), op.type)
        if base == "cmp":
            pred = parts[1]
            a = self._value(op.args[0], env)
            b = self._value(op.args[1], env)
            return 1 if _CMP[pred](a, b) else 0
        if base in ("div", "rem"):
            a = self._value(op.args[0], env)
            b = self._value(op.args[1], env)
            if ir.is_float_type(op.type):
                if b == 0.0:
                    raise InterpError("floating division by zero")
                return a / b
            if b == 0:
                raise InterpError("integer division by zero")
            # C semantics: truncation toward zero.
            q = abs(int(a)) // abs(int(b))
            if (a < 0) != (b < 0):
                q = -q
            return q if base == "div" else int(a) - q * int(b)
        if base in _BINOPS:
            a = self._value(op.args[0], env)
            b = self._value(op.args[1], env)
            result = _BINOPS[base](a, b)
            return self._cast_to(result, op.type)
        raise InterpError(f"unknown instruction {op.op!r}")

    @staticmethod
    def _cast_to(value: Any, typ: str) -> Any:
        if typ.startswith("ptr"):
            return value
        if typ in _INT_TYPES:
            return _wrap_int(int(value), typ)
        if typ == "f32":
            return float(np.float32(value))
        return float(value)


def run_function(module: ir.Module, name: str, *args: Any,
                 externals: dict | None = None) -> Any:
    """One-shot convenience: interpret ``name(*args)`` in a fresh interpreter."""
    return Interpreter(module, externals).call(name, *args)
