"""Structured intermediate representation (IR) for the XaaS pipeline.

This is our analog of the LLVM IR the paper stores inside IR containers.  Two
properties matter for the reproduction:

1. **Target independence** — the IR depends on the preprocessed source and on
   frontend-relevant flags (``-D``, ``-fopenmp``) but *not* on ``-m<isa>`` or
   ``-O`` flags, which are consumed later by :mod:`repro.compiler.lowering`.
   This is the property that lets the IR-container pipeline drop
   vectorization flags when comparing configurations (Sec. 4.3).
2. **Canonical fingerprinting** — :meth:`Module.fingerprint` renders the IR
   to a canonical text (virtual registers renumbered, deterministic field
   order) and hashes it, giving the dedup pipeline its identity notion.
3. **Serializability** — :func:`parse_module` is the inverse of
   :meth:`Module.render`: the canonical text is a complete serialization,
   so a cold process can reconstruct a live module from a persistent
   artifact store (:mod:`repro.store`) without re-running the frontend.
   Renumbering preserves *name classes* (frontend temporaries keep their
   ``.`` prefix, globals their ``@``) because the optimizer and the
   vectorization legality analysis treat the classes differently — a
   parsed module must fold, DCE and vectorize exactly like the original.

Unlike LLVM we keep *structured* control flow (regions with ``for``/``if``
ops, in the spirit of MLIR's ``scf`` dialect) instead of a flat CFG: loop
structure is what the deployment-time vectorizer and the performance model
consume, and a region IR keeps those analyses honest and simple.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.util.hashing import content_digest

# -- types -------------------------------------------------------------------

SCALAR_TYPES = ("i1", "i8", "i32", "i64", "f32", "f64", "void")


def is_float_type(t: str) -> bool:
    return t.startswith("f")


def type_bits(t: str) -> int:
    if t.startswith("ptr"):
        return 64
    return {"i1": 1, "i8": 8, "i32": 32, "i64": 64, "f32": 32, "f64": 64, "void": 0}[t]


def pointer_to(elem: str) -> str:
    return f"ptr.{elem}"


def pointee(t: str) -> str:
    if not t.startswith("ptr."):
        raise ValueError(f"{t} is not a pointer type")
    return t[len("ptr."):]


# -- values -------------------------------------------------------------------

@dataclass(frozen=True)
class Const:
    """An immediate operand."""

    value: Union[int, float]
    type: str

    def render(self, names: dict[str, str]) -> str:
        if is_float_type(self.type):
            return f"{self.type} {float(self.value)!r}"
        return f"{self.type} {int(self.value)}"


@dataclass(frozen=True)
class Ref:
    """A reference to a virtual register (temporary or named variable)."""

    name: str
    type: str

    def render(self, names: dict[str, str]) -> str:
        return f"{self.type} %{names.get(self.name, self.name)}"


Value = Union[Const, Ref]


# -- operations -----------------------------------------------------------------

class Op:
    """Base class for region items."""

    def operands(self) -> Iterator[Value]:
        return iter(())

    def regions(self) -> Iterator["Region"]:
        return iter(())


@dataclass
class Instr(Op):
    """Three-address instruction: ``dest = op(operands)``.

    ``op`` names follow an LLVM-ish convention with the type suffixed:
    ``add.f64``, ``mul.i32``, ``cmp.lt.f64``, ``cast.sitofp``, ``neg.f64``,
    ``not.i1``.
    """

    op: str
    dest: Optional[str]
    args: list[Value]
    type: str

    def operands(self):
        yield from self.args


@dataclass
class LoadOp(Op):
    """``dest = load base[index]``."""

    dest: str
    base: Ref
    index: Value
    type: str  # element type loaded

    def operands(self):
        yield self.base
        yield self.index


@dataclass
class StoreOp(Op):
    """``store base[index] = value``."""

    base: Ref
    index: Value
    value: Value
    type: str

    def operands(self):
        yield self.base
        yield self.index
        yield self.value


@dataclass
class CallOp(Op):
    """``dest = call callee(args)``; dest None for void calls."""

    dest: Optional[str]
    callee: str
    args: list[Value]
    type: str

    def operands(self):
        yield from self.args


@dataclass
class Region:
    """An ordered list of operations (a structured block)."""

    ops: list[Op] = field(default_factory=list)

    def walk(self) -> Iterator[Op]:
        for op in self.ops:
            yield op
            for region in op.regions():
                yield from region.walk()


@dataclass
class ForOp(Op):
    """Counted loop: ``for var = start; var < bound; var += step``.

    ``attrs`` carries the pipeline metadata:

    * ``omp_parallel`` — lowered from ``#pragma omp parallel for`` under
      ``-fopenmp``;
    * ``omp_reductions`` — reduction variables from the pragma clause;
    * ``vectorizable`` / ``vector_reductions`` / ``gather`` — set by the
      legality analysis in :mod:`repro.compiler.passes`;
    * ``vector_width`` — set at lowering time once the ISA is known;
    * ``bound_src`` — source-level text of the bound expression, used by the
      performance model to resolve symbolic trip counts.
    """

    var: str
    start: Value
    bound: Value
    step: Value
    body: Region
    attrs: dict = field(default_factory=dict)

    def operands(self):
        yield self.start
        yield self.bound
        yield self.step

    def regions(self):
        yield self.body


@dataclass
class WhileOp(Op):
    """General loop: re-evaluate ``cond_region`` ending in ``cond``; run body while true."""

    cond_region: Region
    cond: Value
    body: Region

    def operands(self):
        yield self.cond

    def regions(self):
        yield self.cond_region
        yield self.body


@dataclass
class IfOp(Op):
    cond: Value
    then: Region
    orelse: Region = field(default_factory=Region)

    def operands(self):
        yield self.cond

    def regions(self):
        yield self.then
        yield self.orelse


@dataclass
class ReturnOp(Op):
    value: Optional[Value] = None

    def operands(self):
        if self.value is not None:
            yield self.value


@dataclass
class BreakOp(Op):
    pass


@dataclass
class ContinueOp(Op):
    pass


# -- functions & modules -----------------------------------------------------------

@dataclass
class Function:
    name: str
    params: list[tuple[str, str]]  # (name, ir type)
    ret_type: str
    body: Region
    attrs: dict = field(default_factory=dict)

    def walk(self) -> Iterator[Op]:
        yield from self.body.walk()

    def loops(self) -> Iterator[ForOp]:
        for op in self.walk():
            if isinstance(op, ForOp):
                yield op


@dataclass
class GlobalVar:
    name: str
    type: str
    init: Optional[Union[int, float]] = None


@dataclass
class Module:
    """A translation unit in IR form."""

    name: str
    functions: list[Function] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)
    # Frontend-relevant compilation context recorded for provenance; the
    # canonical render (and therefore the fingerprint) includes it because two
    # IRs built with different frontend flags are distinct artifacts even if
    # their code happens to coincide textually.
    frontend_flags: tuple[str, ...] = ()

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"module {self.name}: no function {name!r}")

    def render(self) -> str:
        """Canonical textual form; temporaries renumbered deterministically."""
        out: list[str] = [f"module @{self.name}"]
        if self.frontend_flags:
            out.append(f"; flags: {' '.join(self.frontend_flags)}")
        for g in self.globals:
            init = "" if g.init is None else f" = {g.init!r}"
            out.append(f"global @{g.name} : {g.type}{init}")
        for fn in self.functions:
            out.extend(_render_function(fn))
        return "\n".join(out) + "\n"

    def fingerprint(self) -> str:
        """Content digest of the canonical form — the dedup identity."""
        return content_digest(self.render())


def frontend_flags_of(ir_text: str) -> list[str]:
    """Read the recorded frontend flags back out of a canonical IR text.

    Inverse of the ``; flags:`` comment :meth:`Module.render` emits: tools
    inspecting an IR container's layers recover the compilation context
    without the live module objects.
    """
    for line in ir_text.splitlines():
        if line.startswith("; flags: "):
            return line[len("; flags: "):].split()
        if not line.startswith(("module", ";")):
            break
    return []


# -- rendering ----------------------------------------------------------------------

#: ForOp attributes included in the canonical render (all set by the
#: frontend; deployment-time vectorization attrs are excluded on purpose).
_SEMANTIC_FOR_ATTRS = ("bound_src", "omp_parallel", "omp_reductions",
                       "omp_simd", "start_src")


def _render_function(fn: Function) -> list[str]:
    names: dict[str, str] = {}
    counter = [0]

    def canon(name: str) -> str:
        # Globals stay verbatim; temporaries keep their '.' class marker.
        # The optimizer folds/DCEs only '.'-temps and the vectorizer's
        # scalar-write classification keys on the same distinction, so the
        # canonical text must preserve which class each register is in for
        # parse_module() to reconstruct a faithfully-optimizable module.
        if name.startswith("@"):
            return name
        if name not in names:
            prefix = "." if name.startswith(".") else ""
            names[name] = f"{prefix}v{counter[0]}"
            counter[0] += 1
        return names[name]

    for pname, _ in fn.params:
        canon(pname)

    lines = []
    params = ", ".join(f"%{canon(p)}: {t}" for p, t in fn.params)
    attrs = ""
    if fn.attrs:
        attrs = " attrs{" + ", ".join(f"{k}={fn.attrs[k]!r}" for k in sorted(fn.attrs)) + "}"
    lines.append(f"func @{fn.name}({params}) -> {fn.ret_type}{attrs} {{")
    lines.extend(_render_region(fn.body, canon, names, indent=1))
    lines.append("}")
    return lines


def _render_value(value: Value, canon, names) -> str:
    if isinstance(value, Ref):
        canon(value.name)
    return value.render(names)


def _render_region(region: Region, canon, names, indent: int) -> list[str]:
    pad = "  " * indent
    lines: list[str] = []
    for op in region.ops:
        if isinstance(op, Instr):
            args = ", ".join(_render_value(a, canon, names) for a in op.args)
            if op.dest is None:
                lines.append(f"{pad}{op.op} {args}")
            else:
                lines.append(f"{pad}%{canon(op.dest)} = {op.op} {args} : {op.type}")
        elif isinstance(op, LoadOp):
            base = _render_value(op.base, canon, names)
            idx = _render_value(op.index, canon, names)
            lines.append(f"{pad}%{canon(op.dest)} = load {base}[{idx}] : {op.type}")
        elif isinstance(op, StoreOp):
            base = _render_value(op.base, canon, names)
            idx = _render_value(op.index, canon, names)
            val = _render_value(op.value, canon, names)
            lines.append(f"{pad}store {base}[{idx}], {val} : {op.type}")
        elif isinstance(op, CallOp):
            args = ", ".join(_render_value(a, canon, names) for a in op.args)
            if op.dest is None:
                lines.append(f"{pad}call @{op.callee}({args}) : {op.type}")
            else:
                lines.append(f"{pad}%{canon(op.dest)} = call @{op.callee}({args}) : {op.type}")
        elif isinstance(op, ForOp):
            start = _render_value(op.start, canon, names)
            bound = _render_value(op.bound, canon, names)
            step = _render_value(op.step, canon, names)
            attrs = ""
            # Frontend-semantic attributes only: they exist before any
            # deployment-time pass runs, so they belong to the IR identity
            # (and must survive a render/parse round trip — the perf model
            # resolves symbolic trip counts through bound_src/start_src).
            # Vectorization attributes are per-target deployment state and
            # deliberately stay out of the canonical form.
            semantic = {k: v for k, v in sorted(op.attrs.items())
                        if k in _SEMANTIC_FOR_ATTRS}
            if semantic:
                attrs = " attrs{" + ", ".join(f"{k}={v!r}" for k, v in semantic.items()) + "}"
            lines.append(f"{pad}for %{canon(op.var)} = {start} to {bound} step {step}{attrs} {{")
            lines.extend(_render_region(op.body, canon, names, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(op, WhileOp):
            lines.append(f"{pad}while {{")
            lines.extend(_render_region(op.cond_region, canon, names, indent + 1))
            lines.append(f"{pad}}} cond {_render_value(op.cond, canon, names)} do {{")
            lines.extend(_render_region(op.body, canon, names, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(op, IfOp):
            lines.append(f"{pad}if {_render_value(op.cond, canon, names)} {{")
            lines.extend(_render_region(op.then, canon, names, indent + 1))
            if op.orelse.ops:
                lines.append(f"{pad}}} else {{")
                lines.extend(_render_region(op.orelse, canon, names, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(op, ReturnOp):
            if op.value is None:
                lines.append(f"{pad}return")
            else:
                lines.append(f"{pad}return {_render_value(op.value, canon, names)}")
        elif isinstance(op, BreakOp):
            lines.append(f"{pad}break")
        elif isinstance(op, ContinueOp):
            lines.append(f"{pad}continue")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {type(op).__name__}")
    return lines


# -- parsing ------------------------------------------------------------------------


class IRParseError(ValueError):
    """Raised when a text is not well-formed canonical IR."""


def parse_module(text: str) -> Module:
    """Reconstruct a :class:`Module` from its canonical render.

    Inverse of :meth:`Module.render` — the round-trip property
    ``parse_module(m.render()).render() == m.render()`` holds for every
    module the frontend (or the optimizer) produces, which is what lets a
    persistent artifact store treat ``ir`` cache entries as payload-only
    blobs: a cold process parses the cached text instead of recompiling.
    """
    return _ModuleParser(text).parse()


def _parse_value(text: str) -> Value:
    """Parse ``<type> %name`` (Ref) or ``<type> <literal>`` (Const)."""
    typ, sep, rest = text.strip().partition(" ")
    if not sep:
        raise IRParseError(f"malformed value {text!r}")
    rest = rest.strip()
    if rest.startswith("%"):
        return Ref(rest[1:], typ)
    try:
        return Const(float(rest) if is_float_type(typ) else int(rest), typ)
    except ValueError:
        raise IRParseError(f"malformed constant {text!r}") from None


def _split_top_level(body: str) -> list[str]:
    """Split on commas outside quotes/brackets (attr dicts, value lists)."""
    parts: list[str] = []
    cur: list[str] = []
    depth = 0
    quote: str | None = None
    escaped = False
    for ch in body:
        if quote is not None:
            cur.append(ch)
            # Track escape state explicitly: in repr output, '\\' before a
            # quote is an escaped backslash, not an escaped quote.
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            cur.append(ch)
        elif ch in "([{":
            depth += 1
            cur.append(ch)
        elif ch in ")]}":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if "".join(cur).strip():
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


def _parse_attr_dict(body: str) -> dict:
    """Parse ``k=<repr>, ...`` as rendered for function and loop attrs."""
    attrs: dict = {}
    for item in _split_top_level(body):
        key, sep, value = item.partition("=")
        if not sep:
            raise IRParseError(f"malformed attribute {item!r}")
        try:
            attrs[key.strip()] = ast.literal_eval(value.strip())
        except (ValueError, SyntaxError):
            raise IRParseError(f"unparseable attribute value {item!r}") from None
    return attrs


class _ModuleParser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.pos = 0

    def _fail(self, message: str) -> IRParseError:
        return IRParseError(f"line {self.pos}: {message}")

    # -- top level -------------------------------------------------------------

    def parse(self) -> Module:
        name: Optional[str] = None
        flags: tuple[str, ...] = ()
        globals_: list[GlobalVar] = []
        functions: list[Function] = []
        while self.pos < len(self.lines):
            line = self.lines[self.pos].strip()
            if not line:
                self.pos += 1
            elif line.startswith("module @"):
                name = line[len("module @"):]
                self.pos += 1
            elif line.startswith("; flags: "):
                flags = tuple(line[len("; flags: "):].split())
                self.pos += 1
            elif line.startswith(";"):
                self.pos += 1
            elif line.startswith("global @"):
                globals_.append(self._parse_global(line))
                self.pos += 1
            elif line.startswith("func @"):
                functions.append(self._parse_function(line))
            else:
                raise self._fail(f"unexpected top-level line {line!r}")
        if name is None:
            raise IRParseError("missing 'module @<name>' header")
        return Module(name, functions, globals_, flags)

    def _parse_global(self, line: str) -> GlobalVar:
        head, sep, init_text = line.partition(" = ")
        gname, tsep, gtype = head[len("global @"):].partition(" : ")
        if not tsep or not gname:
            raise self._fail(f"malformed global {line!r}")
        init: Optional[Union[int, float]] = None
        if sep:
            try:
                init = ast.literal_eval(init_text)
            except (ValueError, SyntaxError):
                raise self._fail(f"malformed global initializer {line!r}") from None
        return GlobalVar(gname, gtype.strip(), init)

    def _parse_function(self, header: str) -> Function:
        if not header.endswith(" {"):
            raise self._fail(f"malformed function header {header!r}")
        sig = header[:-2]
        attrs: dict = {}
        if sig.endswith("}") and " attrs{" in sig:
            sig, attr_body = sig.rsplit(" attrs{", 1)
            attrs = _parse_attr_dict(attr_body[:-1])
        open_p = sig.find("(")
        close_p = sig.rfind(")")
        arrow = sig.rfind(" -> ")
        if open_p < 0 or close_p < open_p or arrow < close_p:
            raise self._fail(f"malformed function signature {sig!r}")
        fname = sig[len("func @"):open_p]
        params: list[tuple[str, str]] = []
        for part in _split_top_level(sig[open_p + 1:close_p]):
            pname, psep, ptype = part.partition(": ")
            if not psep or not pname.startswith("%"):
                raise self._fail(f"malformed parameter {part!r}")
            params.append((pname[1:], ptype.strip()))
        ret_type = sig[arrow + len(" -> "):].strip()
        self.pos += 1
        body, terminator = self._parse_region()
        if terminator != "}":
            raise self._fail(f"expected '}}' closing function, got {terminator!r}")
        return Function(fname, params, ret_type, body, attrs)

    # -- regions & ops ---------------------------------------------------------

    def _parse_region(self) -> tuple[Region, str]:
        """Parse ops until a closing line; returns (region, that line)."""
        ops: list[Op] = []
        while self.pos < len(self.lines):
            line = self.lines[self.pos].strip()
            self.pos += 1
            if not line or line.startswith(";"):
                continue
            if line.startswith("}"):
                return Region(ops), line
            ops.append(self._parse_op(line))
        raise IRParseError("unterminated region (missing '}')")

    def _parse_op(self, line: str) -> Op:
        if line.startswith("for %"):
            return self._parse_for(line)
        if line == "while {":
            return self._parse_while()
        if line.startswith("if ") and line.endswith(" {"):
            return self._parse_if(line)
        if line == "return":
            return ReturnOp()
        if line.startswith("return "):
            return ReturnOp(_parse_value(line[len("return "):]))
        if line == "break":
            return BreakOp()
        if line == "continue":
            return ContinueOp()
        if line.startswith("store "):
            return self._parse_store(line)
        if line.startswith("call @"):
            return self._parse_call(None, line)
        if line.startswith("%"):
            dest, sep, rest = line[1:].partition(" = ")
            if not sep:
                raise self._fail(f"malformed instruction {line!r}")
            if rest.startswith("load "):
                return self._parse_load(dest, rest)
            if rest.startswith("call @"):
                return self._parse_call(dest, rest)
            return self._parse_instr(dest, rest)
        # Dest-less instruction: rendered without a ': type' suffix, so the
        # type is reconstructed from the first operand (render ignores it).
        op, _, args_text = line.partition(" ")
        args = [_parse_value(a) for a in _split_top_level(args_text)]
        return Instr(op, None, args, args[0].type if args else "void")

    def _split_typed(self, rest: str, what: str) -> tuple[str, str]:
        body, sep, typ = rest.rpartition(" : ")
        if not sep:
            raise self._fail(f"missing type on {what} {rest!r}")
        return body, typ.strip()

    def _parse_instr(self, dest: str, rest: str) -> Instr:
        body, typ = self._split_typed(rest, "instruction")
        op, _, args_text = body.partition(" ")
        args = [_parse_value(a) for a in _split_top_level(args_text)]
        return Instr(op, dest, args, typ)

    def _parse_indexed(self, inner: str) -> tuple[Ref, Value]:
        bracket = inner.find("[")
        if bracket < 0 or not inner.endswith("]"):
            raise self._fail(f"malformed memory operand {inner!r}")
        base = _parse_value(inner[:bracket])
        if not isinstance(base, Ref):
            raise self._fail(f"memory base must be a register in {inner!r}")
        return base, _parse_value(inner[bracket + 1:-1])

    def _parse_load(self, dest: str, rest: str) -> LoadOp:
        body, typ = self._split_typed(rest, "load")
        base, index = self._parse_indexed(body[len("load "):])
        return LoadOp(dest, base, index, typ)

    def _parse_store(self, line: str) -> StoreOp:
        body, typ = self._split_typed(line, "store")
        inner = body[len("store "):]
        split_at = inner.find("], ")
        if split_at < 0:
            raise self._fail(f"malformed store {line!r}")
        base, index = self._parse_indexed(inner[:split_at + 1])
        value = _parse_value(inner[split_at + len("], "):])
        return StoreOp(base, index, value, typ)

    def _parse_call(self, dest: Optional[str], rest: str) -> CallOp:
        body, typ = self._split_typed(rest, "call")
        inner = body[len("call @"):]
        open_p = inner.find("(")
        close_p = inner.rfind(")")
        if open_p < 0 or close_p < open_p:
            raise self._fail(f"malformed call {rest!r}")
        callee = inner[:open_p]
        args = [_parse_value(a) for a in _split_top_level(inner[open_p + 1:close_p])]
        return CallOp(dest, callee, args, typ)

    def _parse_for(self, line: str) -> ForOp:
        if not line.endswith(" {"):
            raise self._fail(f"malformed for header {line!r}")
        core = line[:-2]
        attrs: dict = {}
        if core.endswith("}") and " attrs{" in core:
            core, attr_body = core.rsplit(" attrs{", 1)
            attrs = _parse_attr_dict(attr_body[:-1])
        var, sep, bounds = core[len("for %"):].partition(" = ")
        start_text, to_sep, rest = bounds.partition(" to ")
        bound_text, step_sep, step_text = rest.partition(" step ")
        if not (sep and to_sep and step_sep):
            raise self._fail(f"malformed for header {line!r}")
        body, terminator = self._parse_region()
        if terminator != "}":
            raise self._fail(f"expected '}}' closing for, got {terminator!r}")
        return ForOp(var, _parse_value(start_text), _parse_value(bound_text),
                     _parse_value(step_text), body, attrs)

    def _parse_while(self) -> WhileOp:
        cond_region, terminator = self._parse_region()
        if not (terminator.startswith("} cond ") and terminator.endswith(" do {")):
            raise self._fail(f"expected '}} cond ... do {{', got {terminator!r}")
        cond = _parse_value(terminator[len("} cond "):-len(" do {")])
        body, terminator = self._parse_region()
        if terminator != "}":
            raise self._fail(f"expected '}}' closing while, got {terminator!r}")
        return WhileOp(cond_region, cond, body)

    def _parse_if(self, line: str) -> IfOp:
        cond = _parse_value(line[len("if "):-2])
        then, terminator = self._parse_region()
        orelse = Region()
        if terminator == "} else {":
            orelse, terminator = self._parse_region()
        if terminator != "}":
            raise self._fail(f"expected '}}' closing if, got {terminator!r}")
        return IfOp(cond, then, orelse)
