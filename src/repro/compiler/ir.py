"""Structured intermediate representation (IR) for the XaaS pipeline.

This is our analog of the LLVM IR the paper stores inside IR containers.  Two
properties matter for the reproduction:

1. **Target independence** — the IR depends on the preprocessed source and on
   frontend-relevant flags (``-D``, ``-fopenmp``) but *not* on ``-m<isa>`` or
   ``-O`` flags, which are consumed later by :mod:`repro.compiler.lowering`.
   This is the property that lets the IR-container pipeline drop
   vectorization flags when comparing configurations (Sec. 4.3).
2. **Canonical fingerprinting** — :meth:`Module.fingerprint` renders the IR
   to a canonical text (virtual registers renumbered, deterministic field
   order) and hashes it, giving the dedup pipeline its identity notion.

Unlike LLVM we keep *structured* control flow (regions with ``for``/``if``
ops, in the spirit of MLIR's ``scf`` dialect) instead of a flat CFG: loop
structure is what the deployment-time vectorizer and the performance model
consume, and a region IR keeps those analyses honest and simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.util.hashing import content_digest

# -- types -------------------------------------------------------------------

SCALAR_TYPES = ("i1", "i8", "i32", "i64", "f32", "f64", "void")


def is_float_type(t: str) -> bool:
    return t.startswith("f")


def type_bits(t: str) -> int:
    if t.startswith("ptr"):
        return 64
    return {"i1": 1, "i8": 8, "i32": 32, "i64": 64, "f32": 32, "f64": 64, "void": 0}[t]


def pointer_to(elem: str) -> str:
    return f"ptr.{elem}"


def pointee(t: str) -> str:
    if not t.startswith("ptr."):
        raise ValueError(f"{t} is not a pointer type")
    return t[len("ptr."):]


# -- values -------------------------------------------------------------------

@dataclass(frozen=True)
class Const:
    """An immediate operand."""

    value: Union[int, float]
    type: str

    def render(self, names: dict[str, str]) -> str:
        if is_float_type(self.type):
            return f"{self.type} {float(self.value)!r}"
        return f"{self.type} {int(self.value)}"


@dataclass(frozen=True)
class Ref:
    """A reference to a virtual register (temporary or named variable)."""

    name: str
    type: str

    def render(self, names: dict[str, str]) -> str:
        return f"{self.type} %{names.get(self.name, self.name)}"


Value = Union[Const, Ref]


# -- operations -----------------------------------------------------------------

class Op:
    """Base class for region items."""

    def operands(self) -> Iterator[Value]:
        return iter(())

    def regions(self) -> Iterator["Region"]:
        return iter(())


@dataclass
class Instr(Op):
    """Three-address instruction: ``dest = op(operands)``.

    ``op`` names follow an LLVM-ish convention with the type suffixed:
    ``add.f64``, ``mul.i32``, ``cmp.lt.f64``, ``cast.sitofp``, ``neg.f64``,
    ``not.i1``.
    """

    op: str
    dest: Optional[str]
    args: list[Value]
    type: str

    def operands(self):
        yield from self.args


@dataclass
class LoadOp(Op):
    """``dest = load base[index]``."""

    dest: str
    base: Ref
    index: Value
    type: str  # element type loaded

    def operands(self):
        yield self.base
        yield self.index


@dataclass
class StoreOp(Op):
    """``store base[index] = value``."""

    base: Ref
    index: Value
    value: Value
    type: str

    def operands(self):
        yield self.base
        yield self.index
        yield self.value


@dataclass
class CallOp(Op):
    """``dest = call callee(args)``; dest None for void calls."""

    dest: Optional[str]
    callee: str
    args: list[Value]
    type: str

    def operands(self):
        yield from self.args


@dataclass
class Region:
    """An ordered list of operations (a structured block)."""

    ops: list[Op] = field(default_factory=list)

    def walk(self) -> Iterator[Op]:
        for op in self.ops:
            yield op
            for region in op.regions():
                yield from region.walk()


@dataclass
class ForOp(Op):
    """Counted loop: ``for var = start; var < bound; var += step``.

    ``attrs`` carries the pipeline metadata:

    * ``omp_parallel`` — lowered from ``#pragma omp parallel for`` under
      ``-fopenmp``;
    * ``omp_reductions`` — reduction variables from the pragma clause;
    * ``vectorizable`` / ``vector_reductions`` / ``gather`` — set by the
      legality analysis in :mod:`repro.compiler.passes`;
    * ``vector_width`` — set at lowering time once the ISA is known;
    * ``bound_src`` — source-level text of the bound expression, used by the
      performance model to resolve symbolic trip counts.
    """

    var: str
    start: Value
    bound: Value
    step: Value
    body: Region
    attrs: dict = field(default_factory=dict)

    def operands(self):
        yield self.start
        yield self.bound
        yield self.step

    def regions(self):
        yield self.body


@dataclass
class WhileOp(Op):
    """General loop: re-evaluate ``cond_region`` ending in ``cond``; run body while true."""

    cond_region: Region
    cond: Value
    body: Region

    def operands(self):
        yield self.cond

    def regions(self):
        yield self.cond_region
        yield self.body


@dataclass
class IfOp(Op):
    cond: Value
    then: Region
    orelse: Region = field(default_factory=Region)

    def operands(self):
        yield self.cond

    def regions(self):
        yield self.then
        yield self.orelse


@dataclass
class ReturnOp(Op):
    value: Optional[Value] = None

    def operands(self):
        if self.value is not None:
            yield self.value


@dataclass
class BreakOp(Op):
    pass


@dataclass
class ContinueOp(Op):
    pass


# -- functions & modules -----------------------------------------------------------

@dataclass
class Function:
    name: str
    params: list[tuple[str, str]]  # (name, ir type)
    ret_type: str
    body: Region
    attrs: dict = field(default_factory=dict)

    def walk(self) -> Iterator[Op]:
        yield from self.body.walk()

    def loops(self) -> Iterator[ForOp]:
        for op in self.walk():
            if isinstance(op, ForOp):
                yield op


@dataclass
class GlobalVar:
    name: str
    type: str
    init: Optional[Union[int, float]] = None


@dataclass
class Module:
    """A translation unit in IR form."""

    name: str
    functions: list[Function] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)
    # Frontend-relevant compilation context recorded for provenance; the
    # canonical render (and therefore the fingerprint) includes it because two
    # IRs built with different frontend flags are distinct artifacts even if
    # their code happens to coincide textually.
    frontend_flags: tuple[str, ...] = ()

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"module {self.name}: no function {name!r}")

    def render(self) -> str:
        """Canonical textual form; temporaries renumbered deterministically."""
        out: list[str] = [f"module @{self.name}"]
        if self.frontend_flags:
            out.append(f"; flags: {' '.join(self.frontend_flags)}")
        for g in self.globals:
            init = "" if g.init is None else f" = {g.init!r}"
            out.append(f"global @{g.name} : {g.type}{init}")
        for fn in self.functions:
            out.extend(_render_function(fn))
        return "\n".join(out) + "\n"

    def fingerprint(self) -> str:
        """Content digest of the canonical form — the dedup identity."""
        return content_digest(self.render())


def frontend_flags_of(ir_text: str) -> list[str]:
    """Read the recorded frontend flags back out of a canonical IR text.

    Inverse of the ``; flags:`` comment :meth:`Module.render` emits: tools
    inspecting an IR container's layers recover the compilation context
    without the live module objects.
    """
    for line in ir_text.splitlines():
        if line.startswith("; flags: "):
            return line[len("; flags: "):].split()
        if not line.startswith(("module", ";")):
            break
    return []


# -- rendering ----------------------------------------------------------------------

def _render_function(fn: Function) -> list[str]:
    names: dict[str, str] = {}
    counter = [0]

    def canon(name: str) -> str:
        if name not in names:
            names[name] = f"v{counter[0]}"
            counter[0] += 1
        return names[name]

    for pname, _ in fn.params:
        canon(pname)

    lines = []
    params = ", ".join(f"%{canon(p)}: {t}" for p, t in fn.params)
    attrs = ""
    if fn.attrs:
        attrs = " attrs{" + ", ".join(f"{k}={fn.attrs[k]!r}" for k in sorted(fn.attrs)) + "}"
    lines.append(f"func @{fn.name}({params}) -> {fn.ret_type}{attrs} {{")
    lines.extend(_render_region(fn.body, canon, names, indent=1))
    lines.append("}")
    return lines


def _render_value(value: Value, canon, names) -> str:
    if isinstance(value, Ref):
        canon(value.name)
    return value.render(names)


def _render_region(region: Region, canon, names, indent: int) -> list[str]:
    pad = "  " * indent
    lines: list[str] = []
    for op in region.ops:
        if isinstance(op, Instr):
            args = ", ".join(_render_value(a, canon, names) for a in op.args)
            if op.dest is None:
                lines.append(f"{pad}{op.op} {args}")
            else:
                lines.append(f"{pad}%{canon(op.dest)} = {op.op} {args} : {op.type}")
        elif isinstance(op, LoadOp):
            base = _render_value(op.base, canon, names)
            idx = _render_value(op.index, canon, names)
            lines.append(f"{pad}%{canon(op.dest)} = load {base}[{idx}] : {op.type}")
        elif isinstance(op, StoreOp):
            base = _render_value(op.base, canon, names)
            idx = _render_value(op.index, canon, names)
            val = _render_value(op.value, canon, names)
            lines.append(f"{pad}store {base}[{idx}], {val} : {op.type}")
        elif isinstance(op, CallOp):
            args = ", ".join(_render_value(a, canon, names) for a in op.args)
            if op.dest is None:
                lines.append(f"{pad}call @{op.callee}({args}) : {op.type}")
            else:
                lines.append(f"{pad}%{canon(op.dest)} = call @{op.callee}({args}) : {op.type}")
        elif isinstance(op, ForOp):
            start = _render_value(op.start, canon, names)
            bound = _render_value(op.bound, canon, names)
            step = _render_value(op.step, canon, names)
            attrs = ""
            semantic = {k: v for k, v in sorted(op.attrs.items())
                        if k in ("omp_parallel", "omp_simd", "omp_reductions")}
            if semantic:
                attrs = " attrs{" + ", ".join(f"{k}={v!r}" for k, v in semantic.items()) + "}"
            lines.append(f"{pad}for %{canon(op.var)} = {start} to {bound} step {step}{attrs} {{")
            lines.extend(_render_region(op.body, canon, names, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(op, WhileOp):
            lines.append(f"{pad}while {{")
            lines.extend(_render_region(op.cond_region, canon, names, indent + 1))
            lines.append(f"{pad}}} cond {_render_value(op.cond, canon, names)} do {{")
            lines.extend(_render_region(op.body, canon, names, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(op, IfOp):
            lines.append(f"{pad}if {_render_value(op.cond, canon, names)} {{")
            lines.extend(_render_region(op.then, canon, names, indent + 1))
            if op.orelse.ops:
                lines.append(f"{pad}}} else {{")
                lines.extend(_render_region(op.orelse, canon, names, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(op, ReturnOp):
            if op.value is None:
                lines.append(f"{pad}return")
            else:
                lines.append(f"{pad}return {_render_value(op.value, canon, names)}")
        elif isinstance(op, BreakOp):
            lines.append(f"{pad}break")
        elif isinstance(op, ContinueOp):
            lines.append(f"{pad}continue")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {type(op).__name__}")
    return lines
