"""Lexer for the C subset consumed by the XaaS compiler frontend.

Operates on *preprocessed* text (see :mod:`repro.compiler.preprocessor`);
``#pragma`` lines survive preprocessing and are emitted as PRAGMA tokens so
the parser can attach OpenMP annotations to the following statement, which is
how Clang's AST records them and what the paper's OpenMP-detection pass
inspects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "int", "long", "float", "double", "void", "char", "bool",
    "if", "else", "for", "while", "return", "break", "continue",
    "const", "extern", "static", "struct", "sizeof", "unsigned",
}

_TOKEN_SPEC = [
    ("PRAGMA", r"\#pragma[^\n]*"),
    ("FLOAT", r"\d+\.\d*(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?|\.\d+(?:[eE][+-]?\d+)?[fF]?"),
    ("INT", r"0[xX][0-9a-fA-F]+|\d+[uUlL]*"),
    ("ID", r"[A-Za-z_]\w*"),
    ("STRING", r'"(?:\\.|[^"\\])*"'),
    ("CHAR", r"'(?:\\.|[^'\\])'"),
    ("OP", r"<<=|>>=|\+\+|--|->|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|[-+*/%<>=!&|^~?:.,;(){}\[\]]"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class LexError(ValueError):
    pass


@dataclass(frozen=True)
class Token:
    kind: str  # PRAGMA | FLOAT | INT | ID | KEYWORD | STRING | CHAR | OP | EOF
    text: str
    line: int

    def __repr__(self) -> str:  # compact for parser error messages
        return f"{self.kind}({self.text!r}@{self.line})"


def tokenize(text: str) -> list[Token]:
    """Tokenize preprocessed source into a token list ending with EOF."""
    tokens: list[Token] = []
    line = 1
    for match in _MASTER_RE.finditer(text):
        kind = match.lastgroup
        value = match.group(0)
        if kind == "NEWLINE":
            line += 1
            continue
        if kind == "SKIP":
            continue
        if kind == "MISMATCH":
            raise LexError(f"line {line}: unexpected character {value!r}")
        if kind == "ID" and value in KEYWORDS:
            kind = "KEYWORD"
        tokens.append(Token(kind, value, line))
    tokens.append(Token("EOF", "", line))
    return tokens


def iter_pragmas(tokens: list[Token]) -> Iterator[Token]:
    """Yield all PRAGMA tokens (used by lightweight pragma scans)."""
    for tok in tokens:
        if tok.kind == "PRAGMA":
            yield tok
