"""Lowering: structured IR -> target machine code.

This is the deployment-time step of the IR-container pipeline (Sec. 4.3
"Code Generation"): once the destination node's ISA is known, every IR file
of the selected configuration is optimized, vectorized and lowered. The
output is a machine-code tree whose instructions carry ISA-specific opcodes
and cycle costs; :mod:`repro.perf` executes the tree symbolically to predict
runtimes.

Machine code mirrors the IR's structure (straight-line segments, loops,
branches) because the performance model needs trip counts, not a flat
instruction list.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Union

from repro.compiler import ir
from repro.compiler.passes import run_optimization_pipeline, vectorize
from repro.compiler.target import TargetMachine

# Scalar per-op costs in cycles (throughput-ish, one lane). Division and
# square roots are the classic expensive ops in MD kernels; their relative
# cost drives the benefit of rsqrt-style SIMD approximations.
_OP_CYCLES = {
    "add": 1.0, "sub": 1.0, "mul": 1.0, "div": 8.0, "rem": 9.0,
    "neg": 0.5, "not": 0.5, "bnot": 0.5, "and": 0.5, "or": 0.5, "xor": 0.5,
    "shl": 0.5, "shr": 0.5, "cmp": 1.0, "copy": 0.25, "cast": 0.5,
}
_CALL_CYCLES = {
    "sqrt": 12.0, "sqrtf": 10.0, "rsqrt": 4.0, "fabs": 0.5, "fabsf": 0.5,
    "exp": 16.0, "expf": 14.0, "log": 16.0, "logf": 14.0,
    "sin": 18.0, "cos": 18.0, "pow": 30.0,
    "fmin": 1.0, "fmax": 1.0, "floor": 1.0, "ceil": 1.0,
}
_LOAD_CYCLES = 2.0
_STORE_CYCLES = 2.0
_GATHER_PENALTY = 2.5  # per-lane extra cost of gather addressing
_EXTERNAL_CALL_CYCLES = 40.0  # opaque library call overhead


@dataclass
class MachineInstr:
    opcode: str
    cycles: float


@dataclass
class MLoop:
    """Machine loop with symbolic trip count.

    ``bound_src``/``start_src`` come from the frontend; the perf executor
    evaluates them against workload bindings. ``vector_width`` is the nominal
    SIMD lane count chosen at lowering; ``parallel`` marks OpenMP loops.
    """

    body: list["MItem"] = field(default_factory=list)
    bound_src: str | None = None
    start_src: str | None = None
    const_trip: int | None = None
    vector_width: int = 1
    gather: bool = False
    parallel: bool = False
    header_cycles: float = 2.0
    var: str = ""


@dataclass
class MIf:
    cond_cycles: float
    then: list["MItem"] = field(default_factory=list)
    orelse: list["MItem"] = field(default_factory=list)
    # Without profile data, assume even branch probability; kernels that need
    # a different split set it via loop metadata in the app models.
    selectivity: float = 0.5


@dataclass
class MCall:
    callee: str
    cycles: float
    internal: bool = False  # True when the callee is lowered in this module


MItem = Union[MachineInstr, MLoop, MIf, MCall]


@dataclass
class MachineFunction:
    name: str
    target: TargetMachine
    body: list[MItem] = field(default_factory=list)

    def instruction_count(self) -> int:
        return _count_items(self.body)


@dataclass
class MachineModule:
    """All machine functions lowered from one IR module for one target."""

    name: str
    target: TargetMachine
    functions: dict[str, MachineFunction] = field(default_factory=dict)

    def function(self, name: str) -> MachineFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"machine module {self.name}: no function {name!r}") from None


def _count_items(items: list[MItem]) -> int:
    total = 0
    for item in items:
        if isinstance(item, MachineInstr):
            total += 1
        elif isinstance(item, MLoop):
            total += 1 + _count_items(item.body)
        elif isinstance(item, MIf):
            total += 1 + _count_items(item.then) + _count_items(item.orelse)
        elif isinstance(item, MCall):
            total += 1
    return total


# -- lowering ----------------------------------------------------------------------


def lower_module(module: ir.Module, target: TargetMachine, opt_level: int = 2,
                 apply_vectorization: bool = True) -> MachineModule:
    """Optimize, vectorize and lower an IR module for ``target``.

    The input module is annotated in place (vectorization attributes), which
    mirrors how the deployment step records its decisions in the deployed
    image's metadata.
    """
    run_optimization_pipeline(module, opt_level)
    if apply_vectorization and target.vector_bits > 0:
        vectorize(module, target)
    else:
        # Reset explicitly: the same IR module may be lowered repeatedly for
        # different targets (IR containers deploy one module many times), so
        # stale vectorization attributes from a previous lowering must not
        # leak into a scalar build.
        for fn in module.functions:
            for loop in fn.loops():
                loop.attrs["vector_width"] = 1
    local_names = {fn.name for fn in module.functions}
    mmod = MachineModule(module.name, target)
    for fn in module.functions:
        mfn = MachineFunction(fn.name, target)
        mfn.body = _lower_region(fn.body, target, vector_width=1, local_names=local_names)
        mmod.functions[fn.name] = mfn
    return mmod


# lower_module annotates the IR module in place (vectorization attributes),
# so concurrent lowerings of *one* module for different targets would race.
# Serialize per module — distinct modules still lower concurrently, which is
# what lets deploy_batch's ISA groups overlap.
_LOWER_LOCK_GUARD = threading.Lock()


def _module_lock(module: ir.Module) -> threading.Lock:
    lock = getattr(module, "_lower_lock", None)
    if lock is None:
        with _LOWER_LOCK_GUARD:
            lock = getattr(module, "_lower_lock", None)
            if lock is None:
                lock = threading.Lock()
                module._lower_lock = lock
    return lock


def _opt_levels_seen(module: ir.Module) -> set[int]:
    """Which -O levels this module has already been lowered at (caller must
    hold the module lock)."""
    seen = getattr(module, "_lowered_opt_levels", None)
    if seen is None:
        seen = set()
        module._lowered_opt_levels = seen
    return seen


def lower_module_cached(module: ir.Module, target: TargetMachine,
                        opt_level: int = 2, cache=None,
                        ir_digest: str | None = None) -> MachineModule:
    """Cache-aware lowering: reuse the machine module for ``(IR, ISA, -O)``.

    This is what lets a batch deployment fan one IR container out to many
    systems and lower each IR once per distinct ISA rather than once per
    system. ``cache`` is an :class:`~repro.containers.store.ArtifactCache`
    (``None`` falls back to plain :func:`lower_module`); ``ir_digest``
    supplies the module's content digest when the caller already knows it
    (manifest entries do), avoiding a re-render.
    """
    if cache is None:
        # Still record the opt level (and serialize the mutation): a later
        # *cached* lowering of this module must know it is no longer
        # pristine, or it would publish a tainted entry as cacheable.
        with _module_lock(module):
            mmod = lower_module(module, target, opt_level)
            _opt_levels_seen(module).add(opt_level)
        return mmod
    parts = {"ir": ir_digest or module.fingerprint(),
             "target": target.name, "opt": opt_level}
    entry = cache.get("lower", parts, require_obj=True)
    if entry is not None:
        return entry.obj
    with _module_lock(module):
        # run_optimization_pipeline mutates the module destructively
        # (fold/DCE are not undone the way vectorization attributes are), so
        # a module lowered at mixed -O levels no longer yields deterministic
        # per-level results. Cache only results still derived from pristine
        # state: all lowerings of this module so far used this same level.
        opts_seen = _opt_levels_seen(module)
        cacheable = not opts_seen or opts_seen == {opt_level}
        mmod = lower_module(module, target, opt_level)
        opts_seen.add(opt_level)
    if cacheable:
        payload = json.dumps({"target": target.name, "opt": opt_level,
                              "functions": sorted(mmod.functions)}, sort_keys=True)
        cache.put("lower", parts, payload, obj=mmod)
    return mmod


def _suffix(target: TargetMachine, width: int) -> str:
    if width <= 1:
        return "s" if target.family == "x86_64" else "sc"
    if target.family == "aarch64":
        return f"v{width}.neon" if target.vector_bits == 128 else f"v{width}.sve"
    reg = {128: "xmm", 256: "ymm", 512: "zmm"}.get(target.vector_bits, "xmm")
    return f"v{width}.{reg}"


def _lower_region(region: ir.Region, target: TargetMachine, vector_width: int,
                  local_names: set[str]) -> list[MItem]:
    items: list[MItem] = []
    suffix = _suffix(target, vector_width)
    pending_mul: int = 0  # count of mul results awaiting fma fusion

    for op in region.ops:
        if isinstance(op, ir.Instr):
            base = op.op.split(".")[0]
            cycles = _OP_CYCLES.get(base, 1.0)
            opcode = f"{op.op}.{suffix}"
            if target.fma and base == "mul" and ir.is_float_type(op.type):
                pending_mul += 1
            elif target.fma and base in ("add", "sub") and ir.is_float_type(op.type) and pending_mul:
                # Fuse with an earlier multiply: the pair costs one issue slot.
                pending_mul -= 1
                opcode = f"fma.{op.type}.{suffix}"
                cycles = 0.0
            items.append(MachineInstr(opcode, cycles / max(target.issue_width, 1e-9)))
        elif isinstance(op, ir.LoadOp):
            items.append(MachineInstr(f"load.{op.type}.{suffix}", _LOAD_CYCLES))
        elif isinstance(op, ir.StoreOp):
            items.append(MachineInstr(f"store.{op.type}.{suffix}", _STORE_CYCLES))
        elif isinstance(op, ir.CallOp):
            if op.callee in _CALL_CYCLES:
                items.append(MCall(op.callee, _CALL_CYCLES[op.callee]))
            elif op.callee in local_names:
                items.append(MCall(op.callee, 5.0, internal=True))
            else:
                items.append(MCall(op.callee, _EXTERNAL_CALL_CYCLES))
        elif isinstance(op, ir.ForOp):
            width = int(op.attrs.get("vector_width", 1))
            loop = MLoop(
                bound_src=op.attrs.get("bound_src"),
                start_src=op.attrs.get("start_src"),
                const_trip=_const_trip(op),
                vector_width=width,
                gather=bool(op.attrs.get("gather")),
                parallel=bool(op.attrs.get("omp_parallel")),
                var=op.var,
            )
            loop.body = _lower_region(op.body, target, width, local_names)
            if loop.gather and width > 1:
                loop.body.append(MachineInstr(
                    f"gather.fixup.{suffix}", _GATHER_PENALTY * width * 0.25))
            items.append(loop)
        elif isinstance(op, ir.WhileOp):
            # General loops keep scalar code; trip count is unknown, so the
            # perf executor charges them via the 'while_iters' binding.
            loop = MLoop(bound_src="while_iters", vector_width=1, var="<while>")
            loop.body = _lower_region(op.cond_region, target, 1, local_names) + \
                _lower_region(op.body, target, 1, local_names)
            items.append(loop)
        elif isinstance(op, ir.IfOp):
            items.append(MIf(
                cond_cycles=1.0,
                then=_lower_region(op.then, target, vector_width, local_names),
                orelse=_lower_region(op.orelse, target, vector_width, local_names),
            ))
        elif isinstance(op, ir.ReturnOp):
            items.append(MachineInstr("ret", 1.0))
        elif isinstance(op, (ir.BreakOp, ir.ContinueOp)):
            items.append(MachineInstr("jmp", 1.0))
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot lower op {type(op).__name__}")
    return items


def _const_trip(op: ir.ForOp) -> int | None:
    if isinstance(op.start, ir.Const) and isinstance(op.bound, ir.Const) \
            and isinstance(op.step, ir.Const) and op.step.value > 0:
        trips = (int(op.bound.value) - int(op.start.value) + int(op.step.value) - 1) \
            // int(op.step.value)
        return max(0, trips)
    return None
