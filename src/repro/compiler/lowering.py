"""Lowering: structured IR -> target machine code.

This is the deployment-time step of the IR-container pipeline (Sec. 4.3
"Code Generation"): once the destination node's ISA is known, every IR file
of the selected configuration is optimized, vectorized and lowered. The
output is a machine-code tree whose instructions carry ISA-specific opcodes
and cycle costs; :mod:`repro.perf` executes the tree symbolically to predict
runtimes.

Machine code mirrors the IR's structure (straight-line segments, loops,
branches) because the performance model needs trip counts, not a flat
instruction list.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Union

from repro.compiler import ir
from repro.compiler.passes import run_optimization_pipeline, vectorize
from repro.compiler.target import TargetMachine, get_target

# Scalar per-op costs in cycles (throughput-ish, one lane). Division and
# square roots are the classic expensive ops in MD kernels; their relative
# cost drives the benefit of rsqrt-style SIMD approximations.
_OP_CYCLES = {
    "add": 1.0, "sub": 1.0, "mul": 1.0, "div": 8.0, "rem": 9.0,
    "neg": 0.5, "not": 0.5, "bnot": 0.5, "and": 0.5, "or": 0.5, "xor": 0.5,
    "shl": 0.5, "shr": 0.5, "cmp": 1.0, "copy": 0.25, "cast": 0.5,
}
_CALL_CYCLES = {
    "sqrt": 12.0, "sqrtf": 10.0, "rsqrt": 4.0, "fabs": 0.5, "fabsf": 0.5,
    "exp": 16.0, "expf": 14.0, "log": 16.0, "logf": 14.0,
    "sin": 18.0, "cos": 18.0, "pow": 30.0,
    "fmin": 1.0, "fmax": 1.0, "floor": 1.0, "ceil": 1.0,
}
_LOAD_CYCLES = 2.0
_STORE_CYCLES = 2.0
_GATHER_PENALTY = 2.5  # per-lane extra cost of gather addressing
_EXTERNAL_CALL_CYCLES = 40.0  # opaque library call overhead


@dataclass
class MachineInstr:
    opcode: str
    cycles: float


@dataclass
class MLoop:
    """Machine loop with symbolic trip count.

    ``bound_src``/``start_src`` come from the frontend; the perf executor
    evaluates them against workload bindings. ``vector_width`` is the nominal
    SIMD lane count chosen at lowering; ``parallel`` marks OpenMP loops.
    """

    body: list["MItem"] = field(default_factory=list)
    bound_src: str | None = None
    start_src: str | None = None
    const_trip: int | None = None
    vector_width: int = 1
    gather: bool = False
    parallel: bool = False
    header_cycles: float = 2.0
    var: str = ""


@dataclass
class MIf:
    cond_cycles: float
    then: list["MItem"] = field(default_factory=list)
    orelse: list["MItem"] = field(default_factory=list)
    # Without profile data, assume even branch probability; kernels that need
    # a different split set it via loop metadata in the app models.
    selectivity: float = 0.5


@dataclass
class MCall:
    callee: str
    cycles: float
    internal: bool = False  # True when the callee is lowered in this module


MItem = Union[MachineInstr, MLoop, MIf, MCall]


@dataclass
class MachineFunction:
    name: str
    target: TargetMachine
    body: list[MItem] = field(default_factory=list)

    def instruction_count(self) -> int:
        return _count_items(self.body)


@dataclass
class MachineModule:
    """All machine functions lowered from one IR module for one target."""

    name: str
    target: TargetMachine
    functions: dict[str, MachineFunction] = field(default_factory=dict)

    def function(self, name: str) -> MachineFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"machine module {self.name}: no function {name!r}") from None


def _count_items(items: list[MItem]) -> int:
    total = 0
    for item in items:
        if isinstance(item, MachineInstr):
            total += 1
        elif isinstance(item, MLoop):
            total += 1 + _count_items(item.body)
        elif isinstance(item, MIf):
            total += 1 + _count_items(item.then) + _count_items(item.orelse)
        elif isinstance(item, MCall):
            total += 1
    return total


# -- lowering ----------------------------------------------------------------------


def lower_module(module: ir.Module, target: TargetMachine, opt_level: int = 2,
                 apply_vectorization: bool = True) -> MachineModule:
    """Optimize, vectorize and lower an IR module for ``target``.

    Lowering is *pure*: optimization and vectorization run on a private
    copy, so the input module — the immutable artifact an IR container
    ships — is never mutated. One module can therefore be lowered
    concurrently for many targets and at mixed ``-O`` levels, and every
    ``(IR fingerprint, ISA, -O)`` result is deterministic and cacheable.
    """
    work = copy.deepcopy(module)
    run_optimization_pipeline(work, opt_level)
    if apply_vectorization and target.vector_bits > 0:
        vectorize(work, target)
    else:
        # Reset explicitly: the caller may hand us a module that was
        # annotated by an explicit vectorize() call; a scalar build must
        # not inherit those widths.
        for fn in work.functions:
            for loop in fn.loops():
                loop.attrs["vector_width"] = 1
    local_names = {fn.name for fn in work.functions}
    mmod = MachineModule(work.name, target)
    for fn in work.functions:
        mfn = MachineFunction(fn.name, target)
        mfn.body = _lower_region(fn.body, target, vector_width=1, local_names=local_names)
        mmod.functions[fn.name] = mfn
    return mmod


def lower_module_cached(module: ir.Module, target: TargetMachine,
                        opt_level: int = 2, cache=None,
                        ir_digest: str | None = None) -> MachineModule:
    """Cache-aware lowering: reuse the machine module for ``(IR, ISA, -O)``.

    This is what lets a batch deployment fan one IR container out to many
    systems and lower each IR once per distinct ISA rather than once per
    system. ``cache`` is an :class:`~repro.containers.store.ArtifactCache`
    (``None`` falls back to plain :func:`lower_module`); ``ir_digest``
    supplies the module's content digest when the caller already knows it
    (manifest entries do), avoiding a re-render.

    The cache payload is the full serialized machine module
    (:func:`machine_module_to_payload`), so a hit against a persistent
    store warmed by another process reconstructs the machine module from
    the payload alone — a cold deployment performs zero lowering work.
    """
    if cache is None:
        return lower_module(module, target, opt_level)
    parts = {"ir": ir_digest or module.fingerprint(),
             "target": target.name, "opt": opt_level}
    entry = cache.get("lower", parts)
    if entry is not None:
        mmod = entry.obj
        if mmod is None:
            mmod = machine_module_from_payload(entry.payload)
            # Promote the reconstructed object so later hits in this
            # process share one machine module identity.
            cache.put("lower", parts, entry.payload, obj=mmod)
        return mmod
    mmod = lower_module(module, target, opt_level)
    cache.put("lower", parts, machine_module_to_payload(mmod), obj=mmod)
    return mmod


# -- machine-module serialization ----------------------------------------------


def _item_to_json(item: MItem) -> dict:
    if isinstance(item, MachineInstr):
        return {"kind": "instr", "opcode": item.opcode, "cycles": item.cycles}
    if isinstance(item, MLoop):
        return {"kind": "loop", "body": [_item_to_json(i) for i in item.body],
                "bound_src": item.bound_src, "start_src": item.start_src,
                "const_trip": item.const_trip,
                "vector_width": item.vector_width, "gather": item.gather,
                "parallel": item.parallel, "header_cycles": item.header_cycles,
                "var": item.var}
    if isinstance(item, MIf):
        return {"kind": "if", "cond_cycles": item.cond_cycles,
                "then": [_item_to_json(i) for i in item.then],
                "orelse": [_item_to_json(i) for i in item.orelse],
                "selectivity": item.selectivity}
    if isinstance(item, MCall):
        return {"kind": "call", "callee": item.callee, "cycles": item.cycles,
                "internal": item.internal}
    raise TypeError(f"cannot serialize machine item {type(item).__name__}")


def _item_from_json(blob: dict) -> MItem:
    kind = blob.get("kind")
    if kind == "instr":
        return MachineInstr(blob["opcode"], blob["cycles"])
    if kind == "loop":
        return MLoop(body=[_item_from_json(i) for i in blob["body"]],
                     bound_src=blob["bound_src"], start_src=blob["start_src"],
                     const_trip=blob["const_trip"],
                     vector_width=blob["vector_width"], gather=blob["gather"],
                     parallel=blob["parallel"],
                     header_cycles=blob["header_cycles"], var=blob["var"])
    if kind == "if":
        return MIf(cond_cycles=blob["cond_cycles"],
                   then=[_item_from_json(i) for i in blob["then"]],
                   orelse=[_item_from_json(i) for i in blob["orelse"]],
                   selectivity=blob["selectivity"])
    if kind == "call":
        return MCall(blob["callee"], blob["cycles"], internal=blob["internal"])
    raise ValueError(f"unknown machine item kind {kind!r}")


def machine_module_to_payload(mmod: MachineModule) -> str:
    """Serialize a machine module to deterministic JSON text.

    Together with :func:`machine_module_from_payload` this makes ``lower``
    cache entries payload-only artifacts: any process holding the blob can
    rebuild the machine tree (the target is recovered by name through the
    target registry — targets are code, not data).
    """
    return json.dumps({
        "format": "xaas-machine-module-v1",
        "name": mmod.name,
        "target": mmod.target.name,
        "functions": {name: [_item_to_json(i) for i in fn.body]
                      for name, fn in sorted(mmod.functions.items())},
    }, sort_keys=True)


def machine_module_from_payload(payload: str) -> MachineModule:
    """Inverse of :func:`machine_module_to_payload`."""
    blob = json.loads(payload)
    target = get_target(blob["target"])
    mmod = MachineModule(blob["name"], target)
    for name, body in blob["functions"].items():
        mfn = MachineFunction(name, target)
        mfn.body = [_item_from_json(i) for i in body]
        mmod.functions[name] = mfn
    return mmod


def _suffix(target: TargetMachine, width: int) -> str:
    if width <= 1:
        return "s" if target.family == "x86_64" else "sc"
    if target.family == "aarch64":
        return f"v{width}.neon" if target.vector_bits == 128 else f"v{width}.sve"
    reg = {128: "xmm", 256: "ymm", 512: "zmm"}.get(target.vector_bits, "xmm")
    return f"v{width}.{reg}"


def _lower_region(region: ir.Region, target: TargetMachine, vector_width: int,
                  local_names: set[str]) -> list[MItem]:
    items: list[MItem] = []
    suffix = _suffix(target, vector_width)
    pending_mul: int = 0  # count of mul results awaiting fma fusion

    for op in region.ops:
        if isinstance(op, ir.Instr):
            base = op.op.split(".")[0]
            cycles = _OP_CYCLES.get(base, 1.0)
            opcode = f"{op.op}.{suffix}"
            if target.fma and base == "mul" and ir.is_float_type(op.type):
                pending_mul += 1
            elif target.fma and base in ("add", "sub") and ir.is_float_type(op.type) and pending_mul:
                # Fuse with an earlier multiply: the pair costs one issue slot.
                pending_mul -= 1
                opcode = f"fma.{op.type}.{suffix}"
                cycles = 0.0
            items.append(MachineInstr(opcode, cycles / max(target.issue_width, 1e-9)))
        elif isinstance(op, ir.LoadOp):
            items.append(MachineInstr(f"load.{op.type}.{suffix}", _LOAD_CYCLES))
        elif isinstance(op, ir.StoreOp):
            items.append(MachineInstr(f"store.{op.type}.{suffix}", _STORE_CYCLES))
        elif isinstance(op, ir.CallOp):
            if op.callee in _CALL_CYCLES:
                items.append(MCall(op.callee, _CALL_CYCLES[op.callee]))
            elif op.callee in local_names:
                items.append(MCall(op.callee, 5.0, internal=True))
            else:
                items.append(MCall(op.callee, _EXTERNAL_CALL_CYCLES))
        elif isinstance(op, ir.ForOp):
            width = int(op.attrs.get("vector_width", 1))
            loop = MLoop(
                bound_src=op.attrs.get("bound_src"),
                start_src=op.attrs.get("start_src"),
                const_trip=_const_trip(op),
                vector_width=width,
                gather=bool(op.attrs.get("gather")),
                parallel=bool(op.attrs.get("omp_parallel")),
                var=op.var,
            )
            loop.body = _lower_region(op.body, target, width, local_names)
            if loop.gather and width > 1:
                loop.body.append(MachineInstr(
                    f"gather.fixup.{suffix}", _GATHER_PENALTY * width * 0.25))
            items.append(loop)
        elif isinstance(op, ir.WhileOp):
            # General loops keep scalar code; trip count is unknown, so the
            # perf executor charges them via the 'while_iters' binding.
            loop = MLoop(bound_src="while_iters", vector_width=1, var="<while>")
            loop.body = _lower_region(op.cond_region, target, 1, local_names) + \
                _lower_region(op.body, target, 1, local_names)
            items.append(loop)
        elif isinstance(op, ir.IfOp):
            items.append(MIf(
                cond_cycles=1.0,
                then=_lower_region(op.then, target, vector_width, local_names),
                orelse=_lower_region(op.orelse, target, vector_width, local_names),
            ))
        elif isinstance(op, ir.ReturnOp):
            items.append(MachineInstr("ret", 1.0))
        elif isinstance(op, (ir.BreakOp, ir.ContinueOp)):
            items.append(MachineInstr("jmp", 1.0))
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot lower op {type(op).__name__}")
    return items


def _const_trip(op: ir.ForOp) -> int | None:
    if isinstance(op.start, ir.Const) and isinstance(op.bound, ir.Const) \
            and isinstance(op.step, ir.Const) and op.step.value > 0:
        trips = (int(op.bound.value) - int(op.start.value) + int(op.step.value) - 1) \
            // int(op.step.value)
        return max(0, trips)
    return None
