"""Recursive-descent parser for the C subset.

Grammar (informal)::

    unit      := (funcdef | globaldecl)*
    funcdef   := qualifiers type ID '(' params ')' (block | ';')
    stmt      := decl ';' | expr ';' | if | for | while | return ';'
               | break ';' | continue ';' | block
    expr      := assignment with C precedence for || && == != < > <= >=
                 + - * / % and unary - !, calls, indexing, casts

Pragmas: a ``#pragma`` token annotates the immediately following statement
(Clang models OpenMP directives the same way as AST attributes); consecutive
pragmas accumulate.
"""

from __future__ import annotations

from repro.compiler import c_ast as A
from repro.compiler.lexer import Token, tokenize

_TYPE_KEYWORDS = {"int", "long", "float", "double", "void", "char", "bool"}
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class ParseError(ValueError):
    pass


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def _check(self, kind: str, text: str | None = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _match(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._peek()
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(f"line {tok.line}: expected {want!r}, got {tok!r}")
        return self._advance()

    def _collect_pragmas(self) -> list[str]:
        pragmas = []
        while self._check("PRAGMA"):
            text = self._advance().text
            pragmas.append(text[len("#pragma"):].strip())
        return pragmas

    # -- types ----------------------------------------------------------------

    def _at_type(self) -> bool:
        i = 0
        while self._peek(i).kind == "KEYWORD" and self._peek(i).text in ("const", "static", "extern", "unsigned"):
            i += 1
        tok = self._peek(i)
        return tok.kind == "KEYWORD" and tok.text in _TYPE_KEYWORDS

    def _parse_type(self) -> tuple[A.CType, bool, bool]:
        """Returns (type, is_static, is_extern)."""
        const = static = extern = unsigned = False
        while True:
            if self._match("KEYWORD", "const"):
                const = True
            elif self._match("KEYWORD", "static"):
                static = True
            elif self._match("KEYWORD", "extern"):
                extern = True
            elif self._match("KEYWORD", "unsigned"):
                unsigned = True
            else:
                break
        name_tok = self._peek()
        if name_tok.kind != "KEYWORD" or name_tok.text not in _TYPE_KEYWORDS:
            raise ParseError(f"line {name_tok.line}: expected type name, got {name_tok!r}")
        self._advance()
        base = name_tok.text
        if unsigned and base == "void":
            raise ParseError(f"line {name_tok.line}: 'unsigned void' is invalid")
        # Trailing const ("double const") folds into the same flag.
        if self._match("KEYWORD", "const"):
            const = True
        pointer = 0
        while self._match("OP", "*"):
            pointer += 1
            if self._match("KEYWORD", "const"):
                const = True
        return A.CType(base, pointer, const, unsigned), static, extern

    # -- top level ---------------------------------------------------------------

    def parse_unit(self) -> A.TranslationUnitAST:
        unit = A.TranslationUnitAST()
        while not self._check("EOF"):
            pragmas = self._collect_pragmas()
            if self._check("EOF"):
                break
            ctype, static, extern = self._parse_type()
            name = self._expect("ID").text
            if self._check("OP", "("):
                unit.functions.append(self._parse_function(ctype, name, static, pragmas))
            else:
                init = None
                if self._match("OP", "="):
                    init = self._parse_expr()
                self._expect("OP", ";")
                unit.globals.append(A.GlobalDecl(ctype, name, init, extern))
        return unit

    def _parse_function(self, ret: A.CType, name: str, static: bool,
                        pragmas: list[str]) -> A.FuncDef:
        self._expect("OP", "(")
        params: list[A.Param] = []
        if not self._check("OP", ")"):
            if self._check("KEYWORD", "void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    ptype, _, _ = self._parse_type()
                    pname = self._expect("ID").text
                    params.append(A.Param(ptype, pname))
                    if not self._match("OP", ","):
                        break
        self._expect("OP", ")")
        if self._match("OP", ";"):
            return A.FuncDef(ret, name, params, None, static, pragmas)
        body = self._parse_block()
        return A.FuncDef(ret, name, params, body, static, pragmas)

    # -- statements ----------------------------------------------------------------

    def _parse_block(self) -> A.Block:
        self._expect("OP", "{")
        stmts: list[A.Stmt] = []
        while not self._check("OP", "}"):
            if self._check("EOF"):
                raise ParseError("unexpected EOF inside block")
            stmts.append(self._parse_stmt())
        self._expect("OP", "}")
        return A.Block(stmts)

    def _parse_stmt(self) -> A.Stmt:
        pragmas = self._collect_pragmas()
        stmt = self._parse_stmt_inner()
        if pragmas:
            stmt.pragmas = pragmas + list(stmt.pragmas)
        return stmt

    def _parse_stmt_inner(self) -> A.Stmt:
        tok = self._peek()
        if tok.kind == "OP" and tok.text == "{":
            return self._parse_block()
        if tok.kind == "KEYWORD":
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "return":
                self._advance()
                value = None if self._check("OP", ";") else self._parse_expr()
                self._expect("OP", ";")
                return A.Return(value)
            if tok.text == "break":
                self._advance()
                self._expect("OP", ";")
                return A.Break()
            if tok.text == "continue":
                self._advance()
                self._expect("OP", ";")
                return A.Continue()
        if self._at_type():
            decl = self._parse_decl()
            self._expect("OP", ";")
            return decl
        expr = self._parse_expr()
        self._expect("OP", ";")
        return A.ExprStmt(expr)

    def _parse_decl(self) -> A.Decl:
        ctype, _, _ = self._parse_type()
        name = self._expect("ID").text
        init = None
        if self._match("OP", "="):
            init = self._parse_expr()
        return A.Decl(ctype, name, init)

    def _parse_if(self) -> A.If:
        self._expect("KEYWORD", "if")
        self._expect("OP", "(")
        cond = self._parse_expr()
        self._expect("OP", ")")
        then = self._stmt_as_block()
        orelse = None
        if self._match("KEYWORD", "else"):
            orelse = self._stmt_as_block()
        return A.If(cond, then, orelse)

    def _parse_for(self) -> A.For:
        self._expect("KEYWORD", "for")
        self._expect("OP", "(")
        init: A.Stmt | None = None
        if not self._check("OP", ";"):
            init = self._parse_decl() if self._at_type() else A.ExprStmt(self._parse_expr())
        self._expect("OP", ";")
        cond = None if self._check("OP", ";") else self._parse_expr()
        self._expect("OP", ";")
        step = None if self._check("OP", ")") else self._parse_expr()
        self._expect("OP", ")")
        body = self._stmt_as_block()
        return A.For(init, cond, step, body)

    def _parse_while(self) -> A.While:
        self._expect("KEYWORD", "while")
        self._expect("OP", "(")
        cond = self._parse_expr()
        self._expect("OP", ")")
        return A.While(cond, self._stmt_as_block())

    def _stmt_as_block(self) -> A.Block:
        stmt = self._parse_stmt()
        return stmt if isinstance(stmt, A.Block) else A.Block([stmt])

    # -- expressions -----------------------------------------------------------------

    def _parse_expr(self) -> A.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> A.Expr:
        lhs = self._parse_logical_or()
        tok = self._peek()
        if tok.kind == "OP" and tok.text in _ASSIGN_OPS:
            if not isinstance(lhs, (A.Name, A.Index)):
                raise ParseError(f"line {tok.line}: invalid assignment target")
            self._advance()
            rhs = self._parse_assignment()
            return A.Assign(tok.text, lhs, rhs)
        return lhs

    def _binary_level(self, ops: tuple[str, ...], next_level):
        expr = next_level()
        while self._peek().kind == "OP" and self._peek().text in ops:
            op = self._advance().text
            expr = A.BinOp(op, expr, next_level())
        return expr

    def _parse_logical_or(self):
        return self._binary_level(("||",), self._parse_logical_and)

    def _parse_logical_and(self):
        return self._binary_level(("&&",), self._parse_equality)

    def _parse_equality(self):
        return self._binary_level(("==", "!="), self._parse_relational)

    def _parse_relational(self):
        return self._binary_level(("<", ">", "<=", ">="), self._parse_additive)

    def _parse_additive(self):
        return self._binary_level(("+", "-"), self._parse_multiplicative)

    def _parse_multiplicative(self):
        return self._binary_level(("*", "/", "%"), self._parse_unary)

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind == "OP" and tok.text in ("-", "!", "~", "+"):
            self._advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return A.UnOp(tok.text, operand)
        # Cast: '(' type ')' unary
        if tok.kind == "OP" and tok.text == "(" and self._is_cast_ahead():
            self._advance()
            ctype, _, _ = self._parse_type()
            self._expect("OP", ")")
            return A.Cast(ctype, self._parse_unary())
        if tok.kind == "OP" and tok.text in ("++", "--"):
            # Prefix inc/dec desugars to compound assignment.
            self._advance()
            operand = self._parse_unary()
            if not isinstance(operand, (A.Name, A.Index)):
                raise ParseError(f"line {tok.line}: invalid ++/-- target")
            return A.Assign("+=" if tok.text == "++" else "-=", operand, A.IntLit(1))
        return self._parse_postfix()

    def _is_cast_ahead(self) -> bool:
        nxt = self._peek(1)
        return nxt.kind == "KEYWORD" and nxt.text in (_TYPE_KEYWORDS | {"const", "unsigned"})

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.text == "[":
                self._advance()
                index = self._parse_expr()
                self._expect("OP", "]")
                expr = A.Index(expr, index)
            elif tok.kind == "OP" and tok.text == "(" and isinstance(expr, A.Name):
                self._advance()
                args: list[A.Expr] = []
                if not self._check("OP", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._match("OP", ","):
                            break
                self._expect("OP", ")")
                expr = A.Call(expr.ident, args)
            elif tok.kind == "OP" and tok.text in ("++", "--"):
                # Postfix inc/dec in statement position behaves like prefix in
                # our subset (value-of-expression is never used in app code).
                self._advance()
                if not isinstance(expr, (A.Name, A.Index)):
                    raise ParseError(f"line {tok.line}: invalid ++/-- target")
                expr = A.Assign("+=" if tok.text == "++" else "-=", expr, A.IntLit(1))
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._advance()
        if tok.kind == "INT":
            text = tok.text.rstrip("uUlL")
            return A.IntLit(int(text, 0))
        if tok.kind == "FLOAT":
            is_single = tok.text[-1] in "fF"
            return A.FloatLit(float(tok.text.rstrip("fF")), is_single)
        if tok.kind == "STRING":
            return A.StrLit(tok.text[1:-1])
        if tok.kind == "CHAR":
            body = tok.text[1:-1]
            value = ord(body[-1]) if not body.startswith("\\") else {"n": 10, "t": 9, "0": 0}.get(body[1], ord(body[1]))
            return A.IntLit(value)
        if tok.kind == "ID":
            return A.Name(tok.text)
        if tok.kind == "OP" and tok.text == "(":
            expr = self._parse_expr()
            self._expect("OP", ")")
            return expr
        raise ParseError(f"line {tok.line}: unexpected token {tok!r}")


def parse(source: str) -> A.TranslationUnitAST:
    """Parse preprocessed source text into a translation-unit AST."""
    return Parser(tokenize(source)).parse_unit()
