"""Analysis and transformation passes over the structured IR (and the AST).

Three of these are load-bearing for the paper's pipeline:

* :func:`detect_openmp` — the Clang-AST-style analysis from Sec. 4.3 that
  decides whether a translation unit *uses* OpenMP at all. If two build
  configurations differ only in ``-fopenmp`` and the file contains no OpenMP
  constructs, their IR is identical and the flag can be dropped from the
  comparison.
* :func:`analyze_vectorizable` — the legality analysis that lets the
  deployment step vectorize loops once the ISA is known. LLVM's vectorizers
  work at the IR level, which is precisely why the paper can strip
  ``-m<isa>`` flags before IR comparison; we mirror that structure.
* :func:`vectorize` — applied at *deployment*, annotates legal loops with the
  target's vector width (Sec. 4.3 "Vectorization ... will be applied during
  deployment once the final ISA is known").

Plus conventional cleanups (constant folding, dead-code elimination) used by
the ``-O`` pipeline at lowering time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.compiler import c_ast as A
from repro.compiler import ir
from repro.compiler.target import TargetMachine

# -- OpenMP detection (AST level) ----------------------------------------------


def detect_openmp(unit: A.TranslationUnitAST) -> bool:
    """True if any statement in the unit carries an ``omp`` pragma.

    This is the authoritative check the pipeline uses to decide whether the
    ``-fopenmp`` flag can affect the produced IR for this file.
    """
    for stmt in unit.walk_stmts():
        for pragma in stmt.pragmas:
            if pragma.split()[:1] == ["omp"]:
                return True
    return False


def detect_openmp_ir(module: ir.Module) -> bool:
    """IR-level counterpart: any loop with OpenMP attributes."""
    for fn in module.functions:
        for op in fn.walk():
            if isinstance(op, ir.ForOp) and (
                    op.attrs.get("omp_parallel") or op.attrs.get("omp_simd")):
                return True
    return False


# -- vectorization legality ------------------------------------------------------

@dataclass
class VectorizationReport:
    """Outcome of the legality analysis for one loop."""

    legal: bool
    reason: str = ""
    reductions: list[str] = field(default_factory=list)
    has_gather: bool = False
    elem_bits: int = 64  # widest element the loop touches


def analyze_vectorizable(loop: ir.ForOp) -> VectorizationReport:
    """Decide whether ``loop`` can be vectorized.

    Legality conditions (a practical subset of LLVM's LoopVectorize):

    * unit step;
    * innermost (no nested For/While);
    * no ``break``/``continue``/``return`` in the body;
    * calls only to pure math builtins;
    * every store index is affine in the induction variable
      (non-affine loads become gathers — legal but slower);
    * scalar variables defined outside the loop and written inside must
      follow a reduction pattern (``acc = acc + e`` / ``acc = acc * e`` /
      min/max), recorded in the report.
    """
    if not (isinstance(loop.step, ir.Const) and loop.step.value == 1):
        return VectorizationReport(False, "non-unit step")

    body_ops = list(loop.body.walk())
    for op in body_ops:
        if isinstance(op, (ir.ForOp, ir.WhileOp)):
            return VectorizationReport(False, "not innermost")
        if isinstance(op, (ir.BreakOp, ir.ContinueOp, ir.ReturnOp)):
            return VectorizationReport(False, "early exit in body")
        if isinstance(op, ir.CallOp):
            from repro.compiler.frontend import PURE_BUILTINS
            if op.callee not in PURE_BUILTINS:
                return VectorizationReport(False, f"call to non-pure function {op.callee!r}")

    defs = _collect_defs(loop.body)
    affine = _AffineAnalysis(loop.var, defs)

    has_gather = False
    # The vectorization factor is chosen from the widest *data* element the
    # loop touches (loads, stores, float arithmetic). Index arithmetic is
    # i64 but does not count — real vectorizers widen addresses separately.
    data_bits: list[int] = []
    for op in body_ops:
        if isinstance(op, ir.LoadOp):
            data_bits.append(ir.type_bits(op.type))
            if not affine.is_affine(op.index):
                has_gather = True
        elif isinstance(op, ir.StoreOp):
            data_bits.append(ir.type_bits(op.type))
            if not affine.is_affine(op.index):
                return VectorizationReport(False, "non-affine store (scatter)")
        elif isinstance(op, ir.Instr) and ir.is_float_type(op.type):
            data_bits.append(ir.type_bits(op.type))
        elif isinstance(op, ir.CallOp) and ir.is_float_type(op.type):
            data_bits.append(ir.type_bits(op.type))
    elem_bits = max(data_bits) if data_bits else 64

    reductions, bad = _classify_scalar_writes(loop, defs)
    if bad:
        return VectorizationReport(False, f"loop-carried scalar dependence on {bad!r}")
    return VectorizationReport(True, "", reductions, has_gather, max(elem_bits, 8))


def _collect_defs(region: ir.Region) -> dict[str, ir.Op]:
    """Map register name -> defining op, for the ops in this region tree."""
    defs: dict[str, ir.Op] = {}
    for op in region.walk():
        dest = getattr(op, "dest", None)
        if dest:
            defs[dest] = op
    return defs


class _AffineAnalysis:
    """Checks whether a value is affine in the induction variable."""

    def __init__(self, ivar: str, defs: dict[str, ir.Op]):
        self.ivar = ivar
        self.defs = defs

    def is_affine(self, value: ir.Value, depth: int = 0) -> bool:
        if depth > 32:
            return False
        if isinstance(value, ir.Const):
            return True
        assert isinstance(value, ir.Ref)
        if value.name == self.ivar:
            return True
        op = self.defs.get(value.name)
        if op is None:
            return True  # defined outside the loop => invariant
        if isinstance(op, ir.Instr):
            base = op.op.split(".")[0]
            if base in ("add", "sub"):
                return all(self.is_affine(a, depth + 1) for a in op.args)
            if base == "mul":
                lhs, rhs = op.args
                const_side = isinstance(lhs, ir.Const) or isinstance(rhs, ir.Const) \
                    or self._is_invariant(lhs) or self._is_invariant(rhs)
                return const_side and all(self.is_affine(a, depth + 1) for a in op.args)
            if base in ("copy", "cast"):
                return self.is_affine(op.args[0], depth + 1)
        return False

    def _is_invariant(self, value: ir.Value) -> bool:
        if isinstance(value, ir.Const):
            return True
        return value.name != self.ivar and value.name not in self.defs


def _classify_scalar_writes(loop: ir.ForOp, defs: dict[str, ir.Op]) -> tuple[list[str], str | None]:
    """Split outer-scope scalar writes into reductions vs. blocking deps.

    A register counts as "outer" if it is written by a ``copy`` whose dest is
    not a frontend temporary (temps start with ``.``) and is not declared in
    the loop body. Frontend temps are single-assignment within an iteration
    and never carry values across iterations.
    """
    declared_inside: set[str] = set()
    writes: dict[str, list[ir.Instr]] = {}
    order: list[ir.Op] = list(loop.body.walk())
    first_def_index: dict[str, int] = {}
    for i, op in enumerate(order):
        dest = getattr(op, "dest", None)
        if dest and dest not in first_def_index:
            first_def_index[dest] = i
    # A scalar declared inside the body appears first as a 'copy' def and is
    # never read before that def. We approximate "declared inside" by: every
    # read of the name happens at an index >= its first def.
    reads_before_def: set[str] = set()
    for i, op in enumerate(order):
        for operand in op.operands():
            if isinstance(operand, ir.Ref):
                fd = first_def_index.get(operand.name)
                if fd is not None and i <= fd:
                    reads_before_def.add(operand.name)
    for op in order:
        if isinstance(op, ir.Instr) and op.op == "copy" and not op.dest.startswith("."):
            if op.dest == loop.var:
                return [], op.dest  # writing the induction variable
            writes.setdefault(op.dest, []).append(op)
    for name, ops in list(writes.items()):
        if name not in reads_before_def:
            declared_inside.add(name)
            del writes[name]

    reductions: list[str] = []
    for name, copy_ops in writes.items():
        for copy_op in copy_ops:
            if not _is_reduction_chain(name, copy_op.args[0], defs):
                return [], name
        reductions.append(name)
    return sorted(reductions), None


# Reduction kinds and the instruction bases each admits. A true reduction
# uses one associative operation throughout the accumulator chain; mixing op
# kinds (``acc = x + acc * 0.5``) is a linear recurrence, not a reduction,
# and must block vectorization.
_REDUCTION_KINDS = {
    "sum": {"add", "sub"},
    "product": {"mul"},
    "minmax": set(),  # handled via fmin/fmax calls
}


def _is_reduction_chain(acc: str, value: ir.Value, defs: dict[str, ir.Op]) -> bool:
    """True if ``value`` computes ``acc (op) expr`` for one reduction kind."""
    return any(_chain_of_kind(acc, value, defs, kind, 0)
               for kind in _REDUCTION_KINDS)


def _chain_of_kind(acc: str, value: ir.Value, defs: dict[str, ir.Op],
                   kind: str, depth: int) -> bool:
    if depth > 16 or not isinstance(value, ir.Ref):
        return False
    if value.name == acc:
        return True
    op = defs.get(value.name)
    if op is None:
        return False
    if isinstance(op, ir.Instr):
        base = op.op.split(".")[0]
        if base in ("copy", "cast"):
            return _chain_of_kind(acc, op.args[0], defs, kind, depth + 1)
        if base in _REDUCTION_KINDS[kind]:
            # The accumulator must flow through exactly one operand; the other
            # operand(s) must not reference it at all.
            hits = [_reaches_acc(acc, a, defs, 0) for a in op.args]
            if sum(hits) != 1:
                return False
            idx = hits.index(True)
            return _chain_of_kind(acc, op.args[idx], defs, kind, depth + 1)
    if isinstance(op, ir.CallOp) and kind == "minmax" and op.callee in ("fmin", "fmax"):
        hits = [_reaches_acc(acc, a, defs, 0) for a in op.args]
        if sum(hits) != 1:
            return False
        return _chain_of_kind(acc, op.args[hits.index(True)], defs, kind, depth + 1)
    return False


def _reaches_acc(acc: str, value: ir.Value, defs: dict[str, ir.Op], depth: int) -> bool:
    """Does the dataflow of ``value`` read the accumulator anywhere?"""
    if depth > 16 or not isinstance(value, ir.Ref):
        return False
    if value.name == acc:
        return True
    op = defs.get(value.name)
    if op is None:
        return False
    return any(_reaches_acc(acc, a, defs, depth + 1) for a in op.operands())


# -- deployment-time vectorization --------------------------------------------------

def vectorize(module: ir.Module, target: TargetMachine) -> int:
    """Annotate all legal loops with the target's vector width.

    Returns the number of loops vectorized. Runs at deployment, not at IR
    build — calling it earlier would bake an ISA into the portable IR, which
    is exactly what XaaS containers avoid.
    """
    count = 0
    for fn in module.functions:
        for loop in fn.loops():
            report = analyze_vectorizable(loop)
            loop.attrs["vectorizable"] = report.legal
            if not report.legal:
                loop.attrs["vector_width"] = 1
                loop.attrs["novector_reason"] = report.reason
                continue
            lanes = target.lanes(report.elem_bits)
            loop.attrs["vector_width"] = lanes
            loop.attrs["vector_elem_bits"] = report.elem_bits
            loop.attrs["vector_reductions"] = report.reductions
            loop.attrs["gather"] = report.has_gather
            if lanes > 1:
                count += 1
    return count


# -- constant folding -----------------------------------------------------------------

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
}


def fold_constants(module: ir.Module) -> int:
    """Fold arithmetic on constant operands; returns number of folds."""
    folded = 0
    for fn in module.functions:
        folded += _fold_region(fn.body)
    return folded


def _fold_region(region: ir.Region) -> int:
    folded = 0
    replacements: dict[str, ir.Const] = {}

    def subst(value: ir.Value) -> ir.Value:
        if isinstance(value, ir.Ref) and value.name in replacements:
            return replacements[value.name]
        return value

    new_ops: list[ir.Op] = []
    for op in region.ops:
        if isinstance(op, ir.Instr):
            op.args = [subst(a) for a in op.args]
            base = op.op.split(".")[0]
            if base in _FOLDABLE and all(isinstance(a, ir.Const) for a in op.args):
                val = _FOLDABLE[base](op.args[0].value, op.args[1].value)
                if not ir.is_float_type(op.type):
                    val = int(val)
                # Fold only frontend temporaries: they are single-assignment,
                # so substituting them is always sound. Named variables can be
                # reassigned (loops) and must keep their copies.
                if op.dest and op.dest.startswith("."):
                    replacements[op.dest] = ir.Const(val, op.type)
                    folded += 1
                    continue
            if base == "copy" and op.dest and op.dest.startswith(".") \
                    and isinstance(op.args[0], ir.Const):
                replacements[op.dest] = op.args[0]
                folded += 1
                continue
        elif isinstance(op, (ir.LoadOp,)):
            op.index = subst(op.index)
        elif isinstance(op, ir.StoreOp):
            op.index = subst(op.index)
            op.value = subst(op.value)
        elif isinstance(op, ir.CallOp):
            op.args = [subst(a) for a in op.args]
        elif isinstance(op, ir.ForOp):
            op.start = subst(op.start)
            op.bound = subst(op.bound)
            folded += _fold_region(op.body)
        elif isinstance(op, ir.WhileOp):
            folded += _fold_region(op.cond_region)
            folded += _fold_region(op.body)
        elif isinstance(op, ir.IfOp):
            op.cond = subst(op.cond)
            folded += _fold_region(op.then)
            folded += _fold_region(op.orelse)
        elif isinstance(op, ir.ReturnOp) and op.value is not None:
            op.value = subst(op.value)
        new_ops.append(op)
    region.ops = new_ops
    return folded


# -- dead code elimination ----------------------------------------------------------------

def eliminate_dead_code(module: ir.Module) -> int:
    """Remove pure instructions whose results are never used."""
    removed = 0
    for fn in module.functions:
        removed += _dce_region(fn.body, _collect_uses(fn.body))
    return removed


def _collect_uses(region: ir.Region) -> set[str]:
    used: set[str] = set()
    for op in region.walk():
        for operand in op.operands():
            if isinstance(operand, ir.Ref):
                used.add(operand.name)
    return used


def _dce_region(region: ir.Region, used: set[str]) -> int:
    removed = 0
    new_ops: list[ir.Op] = []
    for op in region.ops:
        for sub in op.regions():
            removed += _dce_region(sub, used)
        if isinstance(op, (ir.Instr, ir.LoadOp)):
            dest = op.dest
            if dest is not None and dest not in used and dest.startswith("."):
                removed += 1
                continue
        new_ops.append(op)
    region.ops = new_ops
    return removed


def run_optimization_pipeline(module: ir.Module, level: int) -> dict[str, int]:
    """Run the -O pipeline; returns per-pass statistics."""
    stats = {"fold": 0, "dce": 0}
    if level <= 0:
        return stats
    for _ in range(2 if level == 1 else 4):
        f = fold_constants(module)
        d = eliminate_dead_code(module)
        stats["fold"] += f
        stats["dce"] += d
        if f == 0 and d == 0:
            break
    return stats


# -- loop statistics (used by cost model & tests) ---------------------------------------------

def loop_summary(module: ir.Module) -> list[dict]:
    """Per-loop metadata snapshot for inspection and the perf executor."""
    out = []
    for fn in module.functions:
        for loop in fn.loops():
            out.append({
                "function": fn.name,
                "var": loop.var,
                "bound_src": loop.attrs.get("bound_src"),
                "omp_parallel": bool(loop.attrs.get("omp_parallel")),
                "vectorizable": loop.attrs.get("vectorizable"),
                "vector_width": loop.attrs.get("vector_width", 1),
                "body_ops": sum(1 for _ in loop.body.walk()),
            })
    return out


def count_math_ops(value: float) -> float:  # pragma: no cover - tiny helper
    return math.nan if value != value else value
