"""A C preprocessor for the XaaS compilation pipeline.

The IR-container pipeline's second stage (Sec. 4.3 "Preprocessing") runs the
preprocessor over every translation unit of every build configuration and
hashes the result: two targets whose preprocessed text is identical can share
one IR file. This module implements the directive subset that HPC build
systems actually use to encode specialization points:

``#include "..."`` / ``#include <...>`` (resolved through a caller-supplied
include resolver), ``#define`` / ``#undef`` (object-like and function-like
macros), ``#if`` / ``#elif`` / ``#else`` / ``#endif`` with full integer
constant expressions and ``defined(X)``, ``#ifdef`` / ``#ifndef``,
``#pragma`` (kept in the output — the OpenMP detection pass needs them), and
``#error``.

The output is *canonical*: blank lines collapsed and trailing whitespace
stripped, so hashing is insensitive to incidental formatting — mirroring how
the paper hashes preprocessed files rather than raw sources.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping


class PreprocessorError(ValueError):
    """Raised for malformed directives, unterminated #if blocks or #error."""


@dataclass
class Macro:
    """An object-like (params is None) or function-like macro definition."""

    name: str
    body: str
    params: list[str] | None = None

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


@dataclass
class PreprocessResult:
    """Preprocessed text plus metadata the later pipeline stages consume."""

    text: str
    includes: list[str] = field(default_factory=list)
    pragmas: list[str] = field(default_factory=list)
    defines_used: set[str] = field(default_factory=set)

    @property
    def has_openmp_pragma(self) -> bool:
        """True if any ``#pragma omp`` survived preprocessing.

        This is the cheap textual pre-filter; the authoritative check is the
        AST analysis in :func:`repro.compiler.passes.detect_openmp`.
        """
        return any(p.split()[:1] == ["omp"] for p in self.pragmas)


IncludeResolver = Callable[[str, bool], str | None]

_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)\s*(.*)$")
_DEFINE_FN_RE = re.compile(r"^(\w+)\(([^)]*)\)\s*(.*)$", re.S)
_DEFINE_OBJ_RE = re.compile(r"^(\w+)\s*(.*)$", re.S)
_IDENT_RE = re.compile(r"\b[A-Za-z_]\w*\b")


class Preprocessor:
    """Stateful preprocessor; one instance per translation unit.

    Parameters
    ----------
    defines:
        Initial macro table, typically from ``-D`` flags. Values may be
        strings or ints; ``-DFOO`` with no value maps to ``"1"``.
    include_resolver:
        ``resolver(name, is_system) -> source text or None``. ``None`` means
        the header cannot be found, which raises — missing headers are build
        errors in the paper's pipeline too.
    """

    MAX_INCLUDE_DEPTH = 32

    def __init__(self, defines: Mapping[str, object] | None = None,
                 include_resolver: IncludeResolver | None = None):
        self.macros: dict[str, Macro] = {}
        for name, value in (defines or {}).items():
            self.macros[name] = Macro(name, "1" if value is None else str(value))
        self.resolver = include_resolver
        self._included: list[str] = []
        self._pragmas: list[str] = []
        self._defines_used: set[str] = set()

    # -- public API ---------------------------------------------------------

    def preprocess(self, source: str, filename: str = "<source>") -> PreprocessResult:
        """Run the full preprocessing pass over ``source``."""
        lines = self._process(source, filename, depth=0)
        text = _canonicalize(lines)
        return PreprocessResult(
            text=text,
            includes=list(self._included),
            pragmas=list(self._pragmas),
            defines_used=set(self._defines_used),
        )

    # -- core loop ----------------------------------------------------------

    def _process(self, source: str, filename: str, depth: int) -> list[str]:
        if depth > self.MAX_INCLUDE_DEPTH:
            raise PreprocessorError(f"{filename}: include depth exceeds {self.MAX_INCLUDE_DEPTH}")
        out: list[str] = []
        # Conditional stack entries: [taken_now, any_branch_taken, saw_else]
        stack: list[list[bool]] = []
        physical = _join_continuations(source.split("\n"))
        for lineno, line in physical:
            m = _DIRECTIVE_RE.match(line)
            active = all(frame[0] for frame in stack)
            if not m:
                if active:
                    out.append(self._expand(line))
                continue
            directive, rest = m.group(1), m.group(2).strip()
            where = f"{filename}:{lineno}"
            if directive in ("if", "ifdef", "ifndef"):
                if active:
                    taken = self._evaluate_condition(directive, rest, where)
                else:
                    taken = False
                stack.append([taken, taken, False])
            elif directive == "elif":
                self._require_stack(stack, where, directive)
                frame = stack[-1]
                if frame[2]:
                    raise PreprocessorError(f"{where}: #elif after #else")
                parent_active = all(f[0] for f in stack[:-1])
                if parent_active and not frame[1]:
                    taken = bool(self._eval_expr(rest, where))
                    frame[0] = taken
                    frame[1] = frame[1] or taken
                else:
                    frame[0] = False
            elif directive == "else":
                self._require_stack(stack, where, directive)
                frame = stack[-1]
                if frame[2]:
                    raise PreprocessorError(f"{where}: duplicate #else")
                frame[2] = True
                parent_active = all(f[0] for f in stack[:-1])
                frame[0] = parent_active and not frame[1]
                frame[1] = True
            elif directive == "endif":
                self._require_stack(stack, where, directive)
                stack.pop()
            elif not active:
                continue  # skip directives inside dead branches
            elif directive == "define":
                self._handle_define(rest, where)
            elif directive == "undef":
                self.macros.pop(rest.strip(), None)
            elif directive == "include":
                out.extend(self._handle_include(rest, where, depth))
            elif directive == "pragma":
                self._pragmas.append(rest)
                out.append(f"#pragma {rest}")
            elif directive == "error":
                raise PreprocessorError(f"{where}: #error {rest}")
            else:
                raise PreprocessorError(f"{where}: unknown directive #{directive}")
        if stack:
            raise PreprocessorError(f"{filename}: unterminated #if block")
        return out

    # -- directive handlers --------------------------------------------------

    def _require_stack(self, stack, where: str, directive: str) -> None:
        if not stack:
            raise PreprocessorError(f"{where}: #{directive} without matching #if")

    def _evaluate_condition(self, directive: str, rest: str, where: str) -> bool:
        if directive == "ifdef":
            self._defines_used.add(rest.strip())
            return rest.strip() in self.macros
        if directive == "ifndef":
            self._defines_used.add(rest.strip())
            return rest.strip() not in self.macros
        return bool(self._eval_expr(rest, where))

    def _handle_define(self, rest: str, where: str) -> None:
        fn = _DEFINE_FN_RE.match(rest)
        # A function-like macro requires '(' to touch the name: "F(x) body".
        if fn and rest[: len(fn.group(1)) + 1].endswith("("):
            params = [p.strip() for p in fn.group(2).split(",") if p.strip()]
            self.macros[fn.group(1)] = Macro(fn.group(1), fn.group(3).strip(), params)
            return
        obj = _DEFINE_OBJ_RE.match(rest)
        if not obj:
            raise PreprocessorError(f"{where}: malformed #define")
        self.macros[obj.group(1)] = Macro(obj.group(1), obj.group(2).strip() or "1")

    def _handle_include(self, rest: str, where: str, depth: int) -> list[str]:
        if rest.startswith('"') and rest.endswith('"'):
            name, system = rest[1:-1], False
        elif rest.startswith("<") and rest.endswith(">"):
            name, system = rest[1:-1], True
        else:
            raise PreprocessorError(f"{where}: malformed #include {rest!r}")
        self._included.append(name)
        if self.resolver is None:
            raise PreprocessorError(f"{where}: no include resolver for {name!r}")
        text = self.resolver(name, system)
        if text is None:
            raise PreprocessorError(f"{where}: header {name!r} not found")
        return self._process(text, name, depth + 1)

    # -- macro expansion ------------------------------------------------------

    def _expand(self, line: str, _active: frozenset[str] = frozenset()) -> str:
        """Expand macros in a code line (recursively, with self-reference guard)."""

        def repl(match: re.Match) -> str:
            name = match.group(0)
            if name in _active or name not in self.macros:
                return name
            macro = self.macros[name]
            self._defines_used.add(name)
            if macro.is_function_like:
                return name  # handled below with argument parsing
            return self._expand(macro.body, _active | {name})

        line = _IDENT_RE.sub(repl, line)
        # Function-like macro invocations: expand iteratively until stable.
        for _ in range(16):
            new = self._expand_function_like(line, _active)
            if new == line:
                return line
            line = new
        return line

    def _expand_function_like(self, line: str, active: frozenset[str]) -> str:
        for name, macro in self.macros.items():
            if not macro.is_function_like or name in active:
                continue
            idx = _find_invocation(line, name)
            if idx is None:
                continue
            start, args_start = idx
            args, end = _parse_macro_args(line, args_start)
            if args is None:
                continue
            if len(args) != len(macro.params):
                raise PreprocessorError(
                    f"macro {name} expects {len(macro.params)} args, got {len(args)}")
            self._defines_used.add(name)
            body = macro.body
            for param, arg in zip(macro.params, args):
                body = re.sub(rf"\b{re.escape(param)}\b", arg.strip(), body)
            body = self._expand(body, active | {name})
            return line[:start] + body + line[end:]
        return line

    # -- #if expression evaluation --------------------------------------------

    def _eval_expr(self, expr: str, where: str) -> int:
        """Evaluate a preprocessor integer constant expression."""
        # defined(X) / defined X before macro expansion, per the C standard.
        def defined_repl(m: re.Match) -> str:
            name = m.group(1) or m.group(2)
            self._defines_used.add(name)
            return "1" if name in self.macros else "0"

        expr = re.sub(r"defined\s*\(\s*(\w+)\s*\)|defined\s+(\w+)", defined_repl, expr)
        expr = self._expand(expr)
        # Remaining identifiers evaluate to 0, as in C.
        expr = _IDENT_RE.sub("0", expr)
        try:
            return int(_CondExpr(expr).parse())
        except _CondError as exc:
            raise PreprocessorError(f"{where}: bad #if expression {expr!r}: {exc}") from None


class _CondError(ValueError):
    pass


class _CondExpr:
    """Recursive-descent evaluator for #if expressions (C precedence subset)."""

    def __init__(self, text: str):
        self.tokens = re.findall(r"\d+|[()!<>=&|^~%*/+-]+|\S", text.replace("||", " || ")
                                 .replace("&&", " && "))
        # Re-tokenize multi-char operators cleanly.
        self.tokens = _split_ops(self.tokens)
        self.pos = 0

    def parse(self) -> int:
        val = self._or()
        if self.pos != len(self.tokens):
            raise _CondError(f"trailing tokens {self.tokens[self.pos:]}")
        return val

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _eat(self, tok=None):
        cur = self._peek()
        if cur is None or (tok is not None and cur != tok):
            raise _CondError(f"expected {tok}, got {cur}")
        self.pos += 1
        return cur

    def _or(self):
        val = self._and()
        while self._peek() == "||":
            self._eat()
            rhs = self._and()
            val = 1 if (val or rhs) else 0
        return val

    def _and(self):
        val = self._cmp()
        while self._peek() == "&&":
            self._eat()
            rhs = self._cmp()
            val = 1 if (val and rhs) else 0
        return val

    _CMP = {"==": lambda a, b: a == b, "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b, ">": lambda a, b: a > b,
            "<=": lambda a, b: a <= b, ">=": lambda a, b: a >= b}

    def _cmp(self):
        val = self._add()
        while self._peek() in self._CMP:
            op = self._eat()
            val = 1 if self._CMP[op](val, self._add()) else 0
        return val

    def _add(self):
        val = self._mul()
        while self._peek() in ("+", "-"):
            op = self._eat()
            rhs = self._mul()
            val = val + rhs if op == "+" else val - rhs
        return val

    def _mul(self):
        val = self._unary()
        while self._peek() in ("*", "/", "%"):
            op = self._eat()
            rhs = self._unary()
            if op == "*":
                val *= rhs
            elif rhs == 0:
                raise _CondError("division by zero in #if")
            elif op == "/":
                val //= rhs
            else:
                val %= rhs
        return val

    def _unary(self):
        tok = self._peek()
        if tok == "!":
            self._eat()
            return 0 if self._unary() else 1
        if tok == "-":
            self._eat()
            return -self._unary()
        if tok == "+":
            self._eat()
            return self._unary()
        if tok == "(":
            self._eat()
            val = self._or()
            self._eat(")")
            return val
        if tok is not None and tok.isdigit():
            self._eat()
            return int(tok)
        raise _CondError(f"unexpected token {tok!r}")


def _split_ops(tokens: list[str]) -> list[str]:
    out: list[str] = []
    multi = ("||", "&&", "==", "!=", "<=", ">=")
    for tok in tokens:
        while tok:
            for m in multi:
                if tok.startswith(m):
                    out.append(m)
                    tok = tok[len(m):]
                    break
            else:
                if tok[0].isdigit():
                    m2 = re.match(r"\d+", tok)
                    out.append(m2.group(0))
                    tok = tok[m2.end():]
                else:
                    out.append(tok[0])
                    tok = tok[1:]
    return out


def _join_continuations(lines: list[str]) -> list[tuple[int, str]]:
    """Merge backslash-continued lines, tracking original line numbers."""
    out: list[tuple[int, str]] = []
    buffer = ""
    start = 1
    for i, line in enumerate(lines, start=1):
        if not buffer:
            start = i
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        out.append((start, buffer + line))
        buffer = ""
    if buffer:
        out.append((start, buffer.rstrip()))
    return out


def _canonicalize(lines: list[str]) -> str:
    """Strip comments/trailing space and collapse blank runs for stable hashing."""
    cleaned: list[str] = []
    in_block = False
    for line in lines:
        line, in_block = _strip_comments(line, in_block)
        line = line.rstrip()
        if line or (cleaned and cleaned[-1]):
            cleaned.append(line)
    while cleaned and not cleaned[-1]:
        cleaned.pop()
    return "\n".join(cleaned) + ("\n" if cleaned else "")


def _strip_comments(line: str, in_block: bool) -> tuple[str, bool]:
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        if line[i] == '"':  # don't strip inside string literals
            end = i + 1
            while end < len(line) and line[end] != '"':
                end += 2 if line[end] == "\\" else 1
            out.append(line[i:min(end + 1, len(line))])
            i = end + 1
            continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block


def _find_invocation(line: str, name: str) -> tuple[int, int] | None:
    for m in re.finditer(rf"\b{re.escape(name)}\b", line):
        j = m.end()
        while j < len(line) and line[j].isspace():
            j += 1
        if j < len(line) and line[j] == "(":
            return m.start(), j
    return None


def _parse_macro_args(line: str, open_paren: int) -> tuple[list[str] | None, int]:
    depth = 0
    args: list[str] = []
    current = []
    for i in range(open_paren, len(line)):
        ch = line[i]
        if ch == "(":
            depth += 1
            if depth == 1:
                continue
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current))
                if len(args) == 1 and not args[0].strip():
                    args = []
                return args, i + 1
        elif ch == "," and depth == 1:
            args.append("".join(current))
            current = []
            continue
        current.append(ch)
    return None, open_paren  # unterminated on this line; give up (single-line subset)
