"""Target machine descriptions for the lowering stage.

The paper's IR containers delay the choice of instruction set until
deployment: the same LLVM IR is lowered to SSE4.1, AVX2, AVX-512, NEON or SVE
once the destination node is known (Sec. 4.3, Fig. 12). This module is our
analog of LLVM's ``TargetMachine``: a description of an ISA with its vector
register width and per-operation cost table used by
:mod:`repro.compiler.lowering` and :mod:`repro.perf`.

Vector widths follow the real ISAs: SSE 128-bit, AVX 256-bit, AVX-512
512-bit, NEON 128-bit, SVE (on Grace/GH200 hardware) 128-bit vectors but with
better issue width. ``AVX2_128`` models GROMACS' mode that uses AVX2 encodings
on 128-bit registers, and ``AVX2_256`` its 256-bit FMA-capable sibling —
distinctions the paper's Fig. 2/12 measure directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TargetMachine:
    """An ISA target: architecture family, vector width, and FP throughput.

    ``fma``: fused multiply-add support halves the cost of mul+add chains.
    ``issue_width``: superscalar issue factor applied to straight-line code.
    ``feature_level``: partial order within a family — a machine supporting
    level N runs any target with level <= N of the same family.
    """

    name: str
    family: str  # "x86_64" | "aarch64"
    vector_bits: int  # 0 => scalar-only
    fma: bool = False
    issue_width: float = 1.0
    feature_level: int = 0
    # Relative per-lane efficiency of vector execution: wide vectors rarely
    # deliver their full nominal speedup (frequency licensing on AVX-512,
    # shuffle overheads). Fig. 2 shows AVX-512 at ~1.6x over SSE, not 4x.
    vector_efficiency: float = 1.0

    def lanes(self, elem_bits: int) -> int:
        """Number of SIMD lanes for an element of ``elem_bits`` (0 => 1)."""
        if self.vector_bits == 0:
            return 1
        return max(1, self.vector_bits // elem_bits)

    def supports(self, other: "TargetMachine") -> bool:
        """Can code lowered for ``other`` execute on this machine?"""
        return self.family == other.family and self.feature_level >= other.feature_level


def _t(name, family, bits, *, fma=False, issue=1.0, level=0, veff=1.0):
    return TargetMachine(
        name=name, family=family, vector_bits=bits, fma=fma,
        issue_width=issue, feature_level=level, vector_efficiency=veff,
    )


# The x86 ladder mirrors GROMACS' GMX_SIMD choices evaluated in Fig. 2/12.
# vector_efficiency values are calibrated so the simulated GROMACS kernel
# reproduces the paper's measured ratios (211.9 / 38.6 / 38.5 / 34.6 / 28.1 /
# 24.2 seconds on a Xeon 6130); see repro/perf/model.py.
X86_NONE = _t("None", "x86_64", 0, level=0)
SSE2 = _t("SSE2", "x86_64", 128, level=1, veff=0.68)
SSE4_1 = _t("SSE4.1", "x86_64", 128, level=2, veff=0.685)
AVX2_128 = _t("AVX2_128", "x86_64", 128, fma=True, level=3, veff=0.72)
AVX_256 = _t("AVX_256", "x86_64", 256, level=4, veff=0.45)
AVX2_256 = _t("AVX2_256", "x86_64", 256, fma=True, level=5, veff=0.43)
AVX_512 = _t("AVX_512", "x86_64", 512, fma=True, level=6, veff=0.237)

ARM_NONE = _t("None", "aarch64", 0, level=0)
NEON_ASIMD = _t("ARM_NEON_ASIMD", "aarch64", 128, fma=True, level=1, veff=0.71)
SVE = _t("ARM_SVE", "aarch64", 128, fma=True, level=2, issue=1.0, veff=0.60)

X86_TARGETS = {t.name: t for t in [X86_NONE, SSE2, SSE4_1, AVX2_128, AVX_256, AVX2_256, AVX_512]}
ARM_TARGETS = {t.name: t for t in [ARM_NONE, NEON_ASIMD, SVE]}

# Unified lookup table. Both families have a scalar "None" level; the x86
# one keeps the plain key (GROMACS' GMX_SIMD=None on x86), and the ARM one
# is reachable as "ARM_None" or through family-aware helpers.
ALL_TARGETS: dict[str, TargetMachine] = {}
ALL_TARGETS.update({t.name: t for t in [NEON_ASIMD, SVE]})
ALL_TARGETS["ARM_None"] = ARM_NONE
ALL_TARGETS.update(X86_TARGETS)


def get_target(name: str) -> TargetMachine:
    """Look up a target by GROMACS-style SIMD name (``AVX_512``, ``SSE4.1``...)."""
    try:
        return ALL_TARGETS[name]
    except KeyError:
        raise KeyError(f"unknown target {name!r}; known: {sorted(ALL_TARGETS)}") from None


def targets_for_family(family: str) -> list[TargetMachine]:
    """All targets of an architecture family, ordered by feature level."""
    out = [t for t in ALL_TARGETS.values() if t.family == family]
    return sorted(out, key=lambda t: t.feature_level)


def best_target(family: str, features: set[str]) -> TargetMachine:
    """Pick the highest-level target whose name is in the feature set.

    ``features`` uses discovery-style labels (lowercased, e.g. ``avx_512``);
    matching is case-insensitive. Falls back to the scalar target.
    """
    lowered = {f.lower() for f in features}
    candidates = [t for t in targets_for_family(family) if t.name.lower() in lowered]
    if not candidates:
        return ARM_NONE if family == "aarch64" else X86_NONE
    return candidates[-1]
