"""The OCI container substrate: blobs, images, registries, runtimes, hooks.

Implements the object model XaaS containers live in: content-addressed blob
store (:mod:`~repro.containers.store`), layers/manifests/indexes with
annotations (:mod:`~repro.containers.image`), registries with push/pull and
annotation queries (:mod:`~repro.containers.registry`), Dockerfile-style
builds (:mod:`~repro.containers.dockerfile`) and HPC runtimes with OCI hooks
(:mod:`~repro.containers.runtime`, :mod:`~repro.containers.hooks`).
"""

from repro.containers.dockerfile import BuildError, Dockerfile, ImageBuilder
from repro.containers.hooks import (
    FABRIC_LIB_PATH,
    GPU_DRIVER_PATH,
    MPI_LIB_PATH,
    FabricReplacementHook,
    GPUInjectionHook,
    HookChain,
    MPIReplacementHook,
    format_lib,
    parse_lib,
)
from repro.containers.image import (
    ANNOTATION_IR_FORMAT,
    ANNOTATION_SOURCE_IMAGE,
    ANNOTATION_SPECIALIZATION,
    ANNOTATION_TARGET_SYSTEM,
    Image,
    ImageConfig,
    ImageError,
    ImageIndex,
    Layer,
    Manifest,
    Platform,
)
from repro.containers.registry import Registry, RegistryError
from repro.containers.runtime import (
    ContainerRuntime,
    RunningContainer,
    apptainer_runtime,
    docker_runtime,
    podman_hpc_runtime,
    runtime_for,
    sarus_runtime,
)
from repro.containers.store import (
    ArtifactCache,
    BlobNotFound,
    BlobStore,
    CacheCounters,
    CacheEntry,
)

__all__ = [
    "BuildError", "Dockerfile", "ImageBuilder",
    "FABRIC_LIB_PATH", "GPU_DRIVER_PATH", "MPI_LIB_PATH",
    "FabricReplacementHook", "GPUInjectionHook", "HookChain",
    "MPIReplacementHook", "format_lib", "parse_lib",
    "ANNOTATION_IR_FORMAT", "ANNOTATION_SOURCE_IMAGE",
    "ANNOTATION_SPECIALIZATION", "ANNOTATION_TARGET_SYSTEM",
    "Image", "ImageConfig", "ImageError", "ImageIndex", "Layer",
    "Manifest", "Platform",
    "Registry", "RegistryError",
    "ContainerRuntime", "RunningContainer", "apptainer_runtime",
    "docker_runtime", "podman_hpc_runtime", "runtime_for", "sarus_runtime",
    "ArtifactCache", "BlobNotFound", "BlobStore", "CacheCounters", "CacheEntry",
]
