"""Declarative image builds: a Dockerfile-like description and builder.

The XaaS deployment step "generates a Dockerfile to create a new image that
inherits from the source container and builds the application with selected
options" (Sec. 4.1). We model a Dockerfile as an ordered instruction list;
``RUN`` takes a Python callable acting on the build filesystem (our stand-in
for shell execution), so pipelines can express real build steps (configure,
compile, install) while each instruction still produces one layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.containers.image import Image, ImageConfig, Layer, Platform
from repro.containers.registry import Registry
from repro.containers.store import BlobStore


class BuildError(RuntimeError):
    pass


@dataclass
class Instruction:
    kind: str  # FROM | COPY | RUN | ENV | LABEL | ENTRYPOINT | ANNOTATION
    args: dict = field(default_factory=dict)

    def render(self) -> str:
        if self.kind == "FROM":
            return f"FROM {self.args['ref']}"
        if self.kind == "COPY":
            return f"COPY {len(self.args['files'])} files -> {self.args.get('dest', '/')}"
        if self.kind == "RUN":
            return f"RUN {self.args.get('comment', '<build step>')}"
        if self.kind == "ENV":
            return "ENV " + " ".join(f"{k}={v}" for k, v in self.args["env"].items())
        if self.kind == "LABEL":
            return "LABEL " + " ".join(f"{k}={v}" for k, v in self.args["labels"].items())
        if self.kind == "ENTRYPOINT":
            return f"ENTRYPOINT {self.args['entrypoint']}"
        if self.kind == "ANNOTATION":
            return "ANNOTATION " + " ".join(f"{k}={v}" for k, v in self.args["annotations"].items())
        return self.kind


@dataclass
class Dockerfile:
    """An ordered build recipe. Construct via the fluent helpers."""

    instructions: list[Instruction] = field(default_factory=list)

    def from_image(self, ref: str) -> "Dockerfile":
        if self.instructions:
            raise BuildError("FROM must be the first instruction")
        self.instructions.append(Instruction("FROM", {"ref": ref}))
        return self

    def from_scratch(self, platform: Platform) -> "Dockerfile":
        if self.instructions:
            raise BuildError("FROM must be the first instruction")
        self.instructions.append(Instruction("FROM", {"ref": "scratch", "platform": platform}))
        return self

    def copy(self, files: dict[str, str], dest: str = "/",
             comment: str = "") -> "Dockerfile":
        self.instructions.append(Instruction("COPY", {
            "files": dict(files), "dest": dest, "comment": comment}))
        return self

    def run(self, step: Callable[[dict[str, str]], dict[str, str] | None],
            comment: str = "") -> "Dockerfile":
        """A build step: receives the current filesystem, returns new/changed
        files (or mutates in place and returns None)."""
        self.instructions.append(Instruction("RUN", {"step": step, "comment": comment}))
        return self

    def env(self, **env: str) -> "Dockerfile":
        self.instructions.append(Instruction("ENV", {"env": env}))
        return self

    def label(self, **labels: str) -> "Dockerfile":
        self.instructions.append(Instruction("LABEL", {"labels": labels}))
        return self

    def entrypoint(self, *argv: str) -> "Dockerfile":
        self.instructions.append(Instruction("ENTRYPOINT", {"entrypoint": list(argv)}))
        return self

    def annotate(self, **annotations: str) -> "Dockerfile":
        self.instructions.append(Instruction("ANNOTATION", {"annotations": annotations}))
        return self

    def render(self) -> str:
        return "\n".join(inst.render() for inst in self.instructions) + "\n"


@dataclass
class ImageBuilder:
    """Executes Dockerfiles against a blob store (and registry for FROM)."""

    store: BlobStore
    registry: Registry | None = None

    def build(self, dockerfile: Dockerfile, platform: Platform | None = None) -> Image:
        if not dockerfile.instructions or dockerfile.instructions[0].kind != "FROM":
            raise BuildError("Dockerfile must start with FROM")
        base_inst = dockerfile.instructions[0]
        layers: list[Layer] = []
        annotations: dict[str, str] = {}
        if base_inst.args["ref"] == "scratch":
            config = ImageConfig(platform=base_inst.args.get("platform")
                                 or platform or Platform("amd64"))
        else:
            base = self._resolve_base(base_inst.args["ref"], platform)
            layers = list(base.layers)
            annotations = dict(base.manifest.annotations)
            config = ImageConfig(
                platform=platform or base.platform,
                env=dict(base.config.env),
                entrypoint=list(base.config.entrypoint),
                labels=dict(base.config.labels),
                history=list(base.config.history),
            )

        fs: dict[str, str] = {}
        for layer in layers:
            fs.update(layer.files)

        for inst in dockerfile.instructions[1:]:
            if inst.kind == "COPY":
                dest = inst.args["dest"].rstrip("/")
                new_files = {f"{dest}/{path}".replace("//", "/"): content
                             for path, content in inst.args["files"].items()}
                layers.append(Layer(new_files, comment=inst.render()))
                fs.update(new_files)
            elif inst.kind == "RUN":
                before = dict(fs)
                result = inst.args["step"](fs)
                if result:
                    fs.update(result)
                delta = {p: c for p, c in fs.items() if before.get(p) != c}
                if delta:
                    layers.append(Layer(delta, comment=inst.render()))
            elif inst.kind == "ENV":
                config.env.update(inst.args["env"])
            elif inst.kind == "LABEL":
                config.labels.update(inst.args["labels"])
            elif inst.kind == "ENTRYPOINT":
                config.entrypoint = inst.args["entrypoint"]
            elif inst.kind == "ANNOTATION":
                annotations.update(inst.args["annotations"])
            else:
                raise BuildError(f"unknown instruction {inst.kind}")
            config.history.append(inst.render())

        return Image.build(layers, config, self.store, annotations)

    def _resolve_base(self, ref: str, platform: Platform | None) -> Image:
        if self.registry is None:
            raise BuildError(f"FROM {ref}: no registry configured")
        repo, _, tag = ref.partition(":")
        return self.registry.pull(repo, tag or "latest", platform)
