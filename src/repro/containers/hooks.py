"""OCI runtime hooks: the "linking" portability layer (paper Table 2).

HPC container runtimes (Sarus, Podman-HPC) use OCI hooks to swap libraries
inside the container for host-optimized ones at container start. The two
canonical hooks are modeled here:

* :class:`MPIReplacementHook` — replaces the containerized MPI with the host
  MPI *iff* their ABIs match (the MPICH ABI-compatibility initiative); a
  mismatched ABI leaves the container MPI in place, which is the failure mode
  that limits this layer (Sec. 2.2).
* :class:`GPUInjectionHook` — bind-mounts the host GPU driver stack into the
  container; fails when the container's runtime needs a newer driver than the
  host has (the CUDA compatibility rules of Fig. 9).

Conventions: library files inside the rootfs are single-line descriptors like
``mpi name=mpich version=4.1 abi=mpich`` so hooks (and the perf model) can
parse them without a binary format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

MPI_LIB_PATH = "/opt/xaas/lib/libmpi.so"
GPU_DRIVER_PATH = "/usr/lib/libcuda.so"
FABRIC_LIB_PATH = "/opt/xaas/lib/libfabric.so"


def format_lib(kind: str, **attrs: str) -> str:
    """Serialize a library descriptor file."""
    body = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"{kind} {body}"


def parse_lib(content: str) -> tuple[str, dict[str, str]]:
    """Parse a library descriptor file."""
    parts = content.strip().split()
    if not parts:
        raise ValueError("empty library descriptor")
    attrs = {}
    for item in parts[1:]:
        k, _, v = item.partition("=")
        attrs[k] = v
    return parts[0], attrs


class HostLike(Protocol):
    """What hooks need to know about the host system (satisfied by
    :class:`repro.discovery.system.SystemSpec`)."""

    @property
    def mpi(self) -> dict | None: ...

    @property
    def gpu(self) -> dict | None: ...

    @property
    def fabric_provider(self) -> str | None: ...


@dataclass
class HookResult:
    hook: str
    applied: bool
    message: str = ""


@dataclass
class MPIReplacementHook:
    """Swap the container MPI for the host MPI when ABIs are compatible."""

    name: str = "mpi-replacement"

    def apply(self, rootfs: dict[str, str], host) -> HookResult:
        if MPI_LIB_PATH not in rootfs:
            return HookResult(self.name, False, "container has no MPI library")
        host_mpi = getattr(host, "mpi", None)
        if not host_mpi:
            return HookResult(self.name, False, "host has no MPI")
        kind, attrs = parse_lib(rootfs[MPI_LIB_PATH])
        if kind != "mpi":
            return HookResult(self.name, False, f"unexpected library kind {kind!r}")
        container_abi = attrs.get("abi", "")
        host_abi = host_mpi.get("abi", "")
        if container_abi != host_abi:
            return HookResult(
                self.name, False,
                f"ABI mismatch: container {container_abi!r} vs host {host_abi!r};"
                " keeping the container MPI")
        rootfs[MPI_LIB_PATH] = format_lib(
            "mpi", name=host_mpi["name"], version=host_mpi.get("version", "?"),
            abi=host_abi, optimized="host")
        return HookResult(self.name, True,
                          f"replaced with host {host_mpi['name']}")


@dataclass
class GPUInjectionHook:
    """Inject the host GPU driver; enforce driver >= container runtime needs.

    CUDA's rule (Fig. 9): a container built against CUDA runtime R runs on a
    host with driver D only when D supports R's major version; within a major
    version, newer runtimes on older drivers are restricted.
    """

    name: str = "gpu-injection"

    def apply(self, rootfs: dict[str, str], host) -> HookResult:
        host_gpu = getattr(host, "gpu", None)
        if not host_gpu:
            return HookResult(self.name, False, "host has no GPU")
        runtime_path = "/opt/xaas/lib/libcudart.so"
        if runtime_path in rootfs:
            _, attrs = parse_lib(rootfs[runtime_path])
            runtime_ver = _version(attrs.get("version", "0"))
            driver_ver = _version(host_gpu.get("driver_cuda", "0"))
            if runtime_ver[0] != driver_ver[0]:
                return HookResult(
                    self.name, False,
                    f"CUDA major mismatch: runtime {runtime_ver[0]} vs driver {driver_ver[0]}")
            if runtime_ver > driver_ver:
                return HookResult(
                    self.name, False,
                    f"container runtime {attrs.get('version')} newer than host driver"
                    f" {host_gpu.get('driver_cuda')}")
        rootfs[GPU_DRIVER_PATH] = format_lib(
            "gpu-driver", vendor=host_gpu.get("vendor", "nvidia"),
            driver_cuda=host_gpu.get("driver_cuda", "?"))
        return HookResult(self.name, True, "host driver injected")


@dataclass
class FabricReplacementHook:
    """Replace libfabric so the container reaches the host's fast network.

    Per Sec. 6.5, this accelerates inter-node traffic but the host provider
    (e.g. Slingshot ``cxi``) may not route intra-node shared memory; the hook
    records the provider so the bandwidth model can apply Table 3 semantics.
    """

    name: str = "fabric-replacement"

    def apply(self, rootfs: dict[str, str], host) -> HookResult:
        provider = getattr(host, "fabric_provider", None)
        if not provider:
            return HookResult(self.name, False, "host exposes no fabric provider")
        if FABRIC_LIB_PATH not in rootfs:
            return HookResult(self.name, False, "container does not use libfabric")
        rootfs[FABRIC_LIB_PATH] = format_lib("fabric", provider=provider, optimized="host")
        return HookResult(self.name, True, f"provider {provider} injected")


@dataclass
class HookChain:
    """Ordered hook application, as an OCI runtime would do at createContainer."""

    hooks: list = field(default_factory=list)

    def apply_all(self, rootfs: dict[str, str], host) -> list[HookResult]:
        return [hook.apply(rootfs, host) for hook in self.hooks]


def _version(text: str) -> tuple[int, ...]:
    out = []
    for piece in text.split("."):
        digits = "".join(ch for ch in piece if ch.isdigit())
        out.append(int(digits) if digits else 0)
    return tuple(out) or (0,)
