"""OCI image model: layers, configs, manifests, multi-arch indexes.

Follows the OCI image-spec object graph: an *image index* points to per-
platform *manifests*; a manifest points to a *config* blob and an ordered
list of *layer* blobs; annotations may appear on any of them. XaaS extends
the platform vocabulary: besides ``amd64``/``arm64``, an image can declare an
IR architecture (``llvm-ir``), realizing the paper's proposal (Sec. 5.2) that
the IR format become an identifying feature of the image.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.containers.store import BlobStore
from repro.util.hashing import content_digest

KNOWN_ARCHITECTURES = ("amd64", "arm64", "llvm-ir")

MEDIA_TYPE_MANIFEST = "application/vnd.oci.image.manifest.v1+json"
MEDIA_TYPE_INDEX = "application/vnd.oci.image.index.v1+json"
MEDIA_TYPE_CONFIG = "application/vnd.oci.image.config.v1+json"
MEDIA_TYPE_LAYER = "application/vnd.oci.image.layer.v1.tar"

# Annotation keys XaaS introduces for specialization metadata (Sec. 5.2
# proposes embedding specialization points as image annotations so tools can
# query them before pulling).
ANNOTATION_SPECIALIZATION = "org.xaas.specialization"
ANNOTATION_IR_FORMAT = "org.xaas.ir-format"
ANNOTATION_SOURCE_IMAGE = "org.xaas.source-image"
ANNOTATION_TARGET_SYSTEM = "org.xaas.target-system"


class ImageError(ValueError):
    pass


@dataclass(frozen=True)
class Platform:
    """OS/architecture pair with an optional variant (OCI platform object)."""

    architecture: str
    os: str = "linux"
    variant: str = ""

    def to_json(self) -> dict:
        out = {"architecture": self.architecture, "os": self.os}
        if self.variant:
            out["variant"] = self.variant
        return out

    def matches(self, other: "Platform") -> bool:
        return (self.architecture == other.architecture and self.os == other.os
                and (not self.variant or not other.variant or self.variant == other.variant))


@dataclass
class Layer:
    """One filesystem layer: path -> content.

    Real layers are tarballs; we serialize the file map canonically so the
    digest is deterministic and content-defined (two layers with identical
    files share a blob — the dedup that makes registries efficient).
    """

    files: dict[str, str] = field(default_factory=dict)
    comment: str = ""

    def serialize(self) -> bytes:
        return json.dumps({"files": self.files, "comment": self.comment},
                          sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "Layer":
        obj = json.loads(data.decode("utf-8"))
        return cls(files=obj["files"], comment=obj.get("comment", ""))

    @property
    def size(self) -> int:
        return sum(len(v) for v in self.files.values())


@dataclass
class ImageConfig:
    """The config blob: platform, env, entrypoint, labels, history."""

    platform: Platform
    env: dict[str, str] = field(default_factory=dict)
    entrypoint: list[str] = field(default_factory=list)
    labels: dict[str, str] = field(default_factory=dict)
    history: list[str] = field(default_factory=list)

    def serialize(self) -> bytes:
        return json.dumps({
            "architecture": self.platform.architecture,
            "os": self.platform.os,
            "variant": self.platform.variant,
            "config": {"Env": sorted(f"{k}={v}" for k, v in self.env.items()),
                       "Entrypoint": self.entrypoint,
                       "Labels": dict(sorted(self.labels.items()))},
            "history": self.history,
        }, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "ImageConfig":
        obj = json.loads(data.decode("utf-8"))
        env = {}
        for item in obj["config"].get("Env", []):
            k, _, v = item.partition("=")
            env[k] = v
        return cls(
            platform=Platform(obj["architecture"], obj["os"], obj.get("variant", "")),
            env=env,
            entrypoint=obj["config"].get("Entrypoint", []),
            labels=obj["config"].get("Labels", {}),
            history=obj.get("history", []),
        )


@dataclass
class Manifest:
    """Points at a config and ordered layers; carries annotations."""

    config_digest: str
    layer_digests: list[str]
    annotations: dict[str, str] = field(default_factory=dict)
    media_type: str = MEDIA_TYPE_MANIFEST

    def serialize(self) -> bytes:
        return json.dumps({
            "mediaType": self.media_type,
            "config": {"mediaType": MEDIA_TYPE_CONFIG, "digest": self.config_digest},
            "layers": [{"mediaType": MEDIA_TYPE_LAYER, "digest": d}
                       for d in self.layer_digests],
            "annotations": dict(sorted(self.annotations.items())),
        }, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "Manifest":
        obj = json.loads(data.decode("utf-8"))
        return cls(
            config_digest=obj["config"]["digest"],
            layer_digests=[l["digest"] for l in obj["layers"]],
            annotations=obj.get("annotations", {}),
            media_type=obj.get("mediaType", MEDIA_TYPE_MANIFEST),
        )

    def digest(self) -> str:
        return content_digest(self.serialize())


@dataclass
class ImageIndex:
    """Multi-arch index: platform -> manifest digest (the OCI image index).

    XaaS turns multi-*arch* indexes into multi-*IR* indexes: entries whose
    platform architecture is an IR format coexist with binary-platform
    entries (Sec. 1: "we distribute multi-arch-IR containers").
    """

    entries: list[tuple[Platform, str]] = field(default_factory=list)
    annotations: dict[str, str] = field(default_factory=dict)

    def serialize(self) -> bytes:
        return json.dumps({
            "mediaType": MEDIA_TYPE_INDEX,
            "manifests": [{"platform": p.to_json(), "digest": d}
                          for p, d in self.entries],
            "annotations": dict(sorted(self.annotations.items())),
        }, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "ImageIndex":
        obj = json.loads(data.decode("utf-8"))
        entries = [(Platform(m["platform"]["architecture"], m["platform"]["os"],
                             m["platform"].get("variant", "")), m["digest"])
                   for m in obj["manifests"]]
        return cls(entries=entries, annotations=obj.get("annotations", {}))

    def digest(self) -> str:
        return content_digest(self.serialize())

    def select(self, platform: Platform) -> str:
        """Pick the manifest digest for a platform (exact-ish match)."""
        for p, digest in self.entries:
            if p.matches(platform):
                return digest
        raise ImageError(f"no manifest for platform {platform}")


@dataclass
class Image:
    """A materialized image: manifest + resolved config and layers."""

    manifest: Manifest
    config: ImageConfig
    layers: list[Layer]

    @classmethod
    def build(cls, layers: list[Layer], config: ImageConfig, store: BlobStore,
              annotations: dict[str, str] | None = None) -> "Image":
        """Store blobs and assemble a manifest; the only way to mint an image."""
        layer_digests = [store.put(layer.serialize()) for layer in layers]
        config_digest = store.put(config.serialize())
        manifest = Manifest(config_digest, layer_digests, dict(annotations or {}))
        store.put(manifest.serialize())
        return cls(manifest, config, list(layers))

    @classmethod
    def load(cls, manifest_digest: str, store: BlobStore) -> "Image":
        manifest = Manifest.deserialize(store.get(manifest_digest))
        config = ImageConfig.deserialize(store.get(manifest.config_digest))
        layers = [Layer.deserialize(store.get(d)) for d in manifest.layer_digests]
        return cls(manifest, config, layers)

    @property
    def digest(self) -> str:
        return self.manifest.digest()

    @property
    def platform(self) -> Platform:
        return self.config.platform

    def rootfs(self) -> dict[str, str]:
        """Flatten layers into the container filesystem (later layers win)."""
        fs: dict[str, str] = {}
        for layer in self.layers:
            fs.update(layer.files)
        return fs

    @property
    def total_size(self) -> int:
        return sum(layer.size for layer in self.layers)

    def derive(self, new_layers: list[Layer], store: BlobStore,
               annotations: dict[str, str] | None = None,
               platform: Platform | None = None,
               env: dict[str, str] | None = None) -> "Image":
        """Create a child image appending layers (``FROM this`` semantics).

        Parent layers are reused by digest — only the delta is new storage,
        which is how source containers keep deployment images cheap.
        """
        config = ImageConfig(
            platform=platform or self.config.platform,
            env={**self.config.env, **(env or {})},
            entrypoint=list(self.config.entrypoint),
            labels=dict(self.config.labels),
            history=self.config.history + [f"derive +{len(new_layers)} layers"],
        )
        merged_annotations = {**self.manifest.annotations, **(annotations or {})}
        merged_annotations[ANNOTATION_SOURCE_IMAGE] = self.digest
        return Image.build(self.layers + new_layers, config, store, merged_annotations)
