"""Container registry: named repositories, tags, push/pull.

XaaS publishes standard images and pulls them from registries (Sec. 5.2);
the deployment step then pushes the system-specialized image back under a
tag that encodes the selected specialization points, "to support the
coexistence of many builds" (Sec. 4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.image import Image, ImageIndex, Manifest, Platform
from repro.containers.store import BlobStore


class RegistryError(KeyError):
    pass


@dataclass
class Registry:
    """An OCI registry: repository/tag -> manifest-or-index digest."""

    store: BlobStore = field(default_factory=BlobStore)
    _tags: dict[str, dict[str, str]] = field(default_factory=dict)
    # Pull accounting lets benchmarks report transfer sizes.
    pull_count: dict[str, int] = field(default_factory=dict)

    # -- push ------------------------------------------------------------------

    def push(self, repository: str, tag: str, image: Image,
             source_store: BlobStore | None = None) -> str:
        """Push an image under repository:tag; returns the manifest digest."""
        if source_store is not None:
            for digest in image.manifest.layer_digests + [image.manifest.config_digest]:
                if not self.store.has(digest):
                    source_store.copy_blob(digest, self.store)
        else:
            for layer in image.layers:
                self.store.put(layer.serialize())
            self.store.put(image.config.serialize())
        digest = self.store.put(image.manifest.serialize())
        self._tags.setdefault(repository, {})[tag] = digest
        return digest

    def push_index(self, repository: str, tag: str, index: ImageIndex) -> str:
        """Push a multi-arch/multi-IR index; member manifests must exist."""
        for _, digest in index.entries:
            if not self.store.has(digest):
                raise RegistryError(f"index references missing manifest {digest}")
        digest = self.store.put(index.serialize())
        self._tags.setdefault(repository, {})[tag] = digest
        return digest

    # -- pull -------------------------------------------------------------------

    def resolve(self, repository: str, tag: str) -> str:
        try:
            return self._tags[repository][tag]
        except KeyError:
            raise RegistryError(f"{repository}:{tag} not found") from None

    def pull(self, repository: str, tag: str,
             platform: Platform | None = None) -> Image:
        """Pull an image; indexes are resolved through ``platform``."""
        digest = self.resolve(repository, tag)
        data = self.store.get(digest)
        if b'"mediaType": "application/vnd.oci.image.index.v1+json"' in data:
            index = ImageIndex.deserialize(data)
            if platform is None:
                raise RegistryError(
                    f"{repository}:{tag} is a multi-platform index; specify a platform")
            digest = index.select(platform)
        image = Image.load(digest, self.store)
        key = f"{repository}:{tag}"
        self.pull_count[key] = self.pull_count.get(key, 0) + 1
        return image

    def pull_index(self, repository: str, tag: str) -> ImageIndex:
        return ImageIndex.deserialize(self.store.get(self.resolve(repository, tag)))

    # -- queries ------------------------------------------------------------------

    def tags(self, repository: str) -> list[str]:
        return sorted(self._tags.get(repository, {}))

    def repositories(self) -> list[str]:
        return sorted(self._tags)

    def annotations(self, repository: str, tag: str) -> dict[str, str]:
        """Read annotations without pulling layers — the Sec. 5.2 workflow
        where XaaS tools query specialization points before pulling."""
        digest = self.resolve(repository, tag)
        data = self.store.get(digest)
        if b'"mediaType": "application/vnd.oci.image.index.v1+json"' in data:
            return ImageIndex.deserialize(data).annotations
        return Manifest.deserialize(data).annotations

    def transfer_size(self, repository: str, tag: str,
                      already_present: set[str] | None = None) -> int:
        """Bytes a client must download for repository:tag, given a local
        blob cache — models the layer-reuse benefit of derived images."""
        present = already_present or set()
        digest = self.resolve(repository, tag)
        manifest = Manifest.deserialize(self.store.get(digest))
        total = len(self.store.get(digest))
        for blob in [manifest.config_digest] + manifest.layer_digests:
            if blob not in present:
                total += len(self.store.get(blob))
        return total
