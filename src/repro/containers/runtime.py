"""Container runtimes: flattening layers, applying hooks, launching.

Models the runtimes from the paper's testbeds — Sarus (Ault), Podman
(Clariden), Apptainer (Aurora), plus plain Docker — differing in which OCI
hooks they apply and whether they preserve OCI layer structure (most HPC
runtimes flatten images, Sec. 5.2). Runtime quirks that the evaluation hit
are modeled too: Apptainer-on-Aurora's broken MPI launch (Sec. 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.containers.hooks import (
    FabricReplacementHook,
    GPUInjectionHook,
    HookChain,
    HookResult,
    MPIReplacementHook,
)
from repro.containers.image import Image, Platform


class RuntimeError_(RuntimeError):
    pass


@dataclass
class RunningContainer:
    """A started container: the effective filesystem plus hook outcomes."""

    image_digest: str
    rootfs: dict[str, str]
    env: dict[str, str]
    hook_results: list[HookResult] = field(default_factory=list)
    runtime: str = ""
    host_name: str = ""

    def hook_applied(self, name: str) -> bool:
        return any(r.hook == name and r.applied for r in self.hook_results)

    def read(self, path: str) -> str:
        try:
            return self.rootfs[path]
        except KeyError:
            raise FileNotFoundError(path) from None


@dataclass
class ContainerRuntime:
    """An OCI-compatible runtime with a configured hook chain."""

    name: str
    hooks: HookChain = field(default_factory=HookChain)
    flattens_images: bool = True  # HPC runtimes flatten; Docker keeps layers
    mpi_launch_works: bool = True  # Apptainer-on-Aurora sets this False

    def run(self, image: Image, host, extra_env: dict[str, str] | None = None) -> RunningContainer:
        """Start a container: check platform, flatten, apply hooks."""
        self._check_platform(image, host)
        rootfs = image.rootfs()
        results = self.hooks.apply_all(rootfs, host)
        env = dict(image.config.env)
        env.update(extra_env or {})
        return RunningContainer(
            image_digest=image.digest,
            rootfs=rootfs,
            env=env,
            hook_results=results,
            runtime=self.name,
            host_name=getattr(host, "name", "unknown-host"),
        )

    def _check_platform(self, image: Image, host) -> None:
        arch = image.platform.architecture
        if arch == "llvm-ir":
            raise RuntimeError_(
                "cannot run an IR container directly: deploy it first "
                "(repro.core.deployment) to lower the IR for this system")
        host_arch = getattr(host, "architecture", "amd64")
        if arch != host_arch:
            raise RuntimeError_(
                f"platform mismatch: image is {arch}, host {getattr(host, 'name', '?')} "
                f"is {host_arch}")


def sarus_runtime() -> ContainerRuntime:
    """CSCS Sarus: OCI hooks for host MPI and GPU injection."""
    return ContainerRuntime("sarus", HookChain([
        MPIReplacementHook(), GPUInjectionHook(), FabricReplacementHook()]))


def podman_hpc_runtime() -> ContainerRuntime:
    """Podman-HPC as on Alps/Clariden: same hook families as Sarus."""
    return ContainerRuntime("podman", HookChain([
        MPIReplacementHook(), GPUInjectionHook(), FabricReplacementHook()]))


def apptainer_runtime(mpi_launch_works: bool = True) -> ContainerRuntime:
    """Apptainer as on Aurora: GPU binding works, host MPI is semi-manual.

    The paper had to fall back to Threads-MPI on Aurora because containerized
    MPI did not function (Sec. 6.5) — model with ``mpi_launch_works=False``.
    """
    return ContainerRuntime("apptainer", HookChain([GPUInjectionHook()]),
                            mpi_launch_works=mpi_launch_works)


def docker_runtime() -> ContainerRuntime:
    """Vanilla Docker: no HPC hooks, keeps OCI layers."""
    return ContainerRuntime("docker", HookChain([]), flattens_images=False)


RUNTIMES = {
    "sarus": sarus_runtime,
    "podman": podman_hpc_runtime,
    "apptainer": apptainer_runtime,
    "docker": docker_runtime,
}


def runtime_for(name: str) -> ContainerRuntime:
    try:
        return RUNTIMES[name]()
    except KeyError:
        raise KeyError(f"unknown runtime {name!r}; known: {sorted(RUNTIMES)}") from None
