"""Content-addressed blob store — the foundation of the OCI image model.

Every object in an OCI registry (layer tarballs, image configs, manifests) is
a blob identified by the SHA-256 digest of its bytes. Immutability by
construction is the property the paper leans on in Sec. 5.2: any change to an
image layer produces a new digest and therefore a new image identity, which
is why deploy-time specialization must create a *new* image rather than
mutate the pulled one.

Storage itself is pluggable (:mod:`repro.store`): the default
:class:`~repro.store.backend.MemoryBackend` keeps the historical in-process
dict semantics, while :class:`~repro.store.backend.FileBackend` and
:class:`~repro.store.remote.RemoteBackend` persist and share blobs across
processes. :class:`ArtifactCache` keeps its key index in an access-ordered
ref blob on the same backend, so a cold process warm-starts from whatever a
previous build left behind.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any

from repro.store.backend import (
    INDEX_REF,
    INDEX_REF_PREFIX,
    PINS_REF,
    Backend,
    BackendError,
    BlobNotFound,
    MemoryBackend,
    backend_stat,
    blob_size_many as _blob_size_many,
    get_many as _get_many,
    has_many as _has_many,
    index_ref_name,
)
from repro.telemetry import events as _events
from repro.telemetry.registry import Counter, MetricsRegistry
from repro.util.hashing import content_digest, is_digest, stable_hash

__all__ = [
    "ArtifactCache", "BlobNotFound", "BlobStore", "BULK_FLUSH_EVERY",
    "CacheCounters", "CacheEntry", "IndexEntry", "INDEX_REF",
    "INDEX_REF_PREFIX", "PINS_REF",
]

#: ``flush_every`` for bulk publishers (cluster workers, farm-backed CLI
#: paths): thousand-entry jobs write O(n) index bytes instead of O(n^2).
#: Callers batching this hard must flush before announcing their
#: artifacts to anyone who will look for them.
BULK_FLUSH_EVERY = 1024


class BlobStore:
    """Digest -> bytes mapping with integrity checking over a backend."""

    def __init__(self, backend: Backend | None = None):
        self.backend: Backend = backend if backend is not None else MemoryBackend()

    def put(self, data: bytes | str) -> str:
        """Store a blob; returns its digest. Idempotent."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = content_digest(data)
        self.backend.put(digest, data)
        return digest

    def get(self, digest: str) -> bytes:
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        return self.backend.get(digest)

    def get_text(self, digest: str) -> str:
        return self.get(digest).decode("utf-8")

    def has(self, digest: str) -> bool:
        return self.backend.has(digest)

    def blob_size(self, digest: str) -> int | None:
        """Byte size of one blob without fetching it when the backend can
        answer from metadata (stat / remote size op); None if absent."""
        size_of = getattr(self.backend, "blob_size", None)
        if size_of is not None:
            return size_of(digest)
        try:
            return len(self.backend.get(digest))
        except BlobNotFound:
            return None

    # -- batched operations (one round-trip on a remote backend) ---------------

    def get_many(self, digests) -> dict[str, bytes]:
        """Fetch many blobs at once; missing digests are omitted."""
        return _get_many(self.backend, digests)

    def has_many(self, digests) -> dict[str, bool]:
        """Existence-probe many digests at once."""
        return _has_many(self.backend, digests)

    def blob_size_many(self, digests) -> dict[str, int | None]:
        """Metadata-only sizes for many blobs at once; None if absent."""
        return _blob_size_many(self.backend, digests)

    def stat(self) -> tuple[int, int]:
        """``(blob_count, total_bytes)`` in one backend operation."""
        return backend_stat(self.backend)

    def delete(self, digest: str) -> bool:
        """Remove one blob; True if it existed. (GC's primitive — callers
        are responsible for not deleting blobs still referenced.)"""
        return self.backend.delete(digest)

    def __len__(self) -> int:
        return len(self.backend)

    @property
    def total_bytes(self) -> int:
        """Store size; maintained incrementally by the backend, O(1)."""
        return self.backend.total_bytes

    def copy_blob(self, digest: str, dest: "BlobStore") -> None:
        """Transfer one blob (push/pull primitive); verifies integrity."""
        data = self.get(digest)
        stored = dest.put(data)
        if stored != digest:  # pragma: no cover - put() recomputes, cannot differ
            raise RuntimeError("digest mismatch during transfer")


# -- artifact cache ------------------------------------------------------------


class CacheCounters:
    """Hit/miss accounting for one cache namespace.

    Historically a pair of plain ints; now a view over two telemetry
    counters (``cache.hits{namespace=...}`` / ``cache.misses{...}``) so
    the same numbers appear in metric snapshots without double
    bookkeeping. The int-like interface — reads, assignment, ``+=`` — is
    unchanged for existing callers and tests.
    """

    __slots__ = ("_hits", "_misses")

    def __init__(self, hits: int = 0, misses: int = 0,
                 _hits: "Counter | None" = None,
                 _misses: "Counter | None" = None):
        self._hits = _hits if _hits is not None else Counter()
        self._misses = _misses if _misses is not None else Counter()
        if hits:
            self._hits.inc(hits)
        if misses:
            self._misses.inc(misses)

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(value)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __eq__(self, other) -> bool:
        if isinstance(other, CacheCounters):
            return (self.hits, self.misses) == (other.hits, other.misses)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheCounters(hits={self.hits}, misses={self.misses})"


@dataclass(frozen=True)
class CacheEntry:
    """One cached artifact: its blob digest, payload text, and — when the
    artifact lives in this process — the live object it serializes."""

    digest: str
    payload: str
    obj: Any = None


@dataclass
class IndexEntry:
    """One index record: which blob a cache key resolves to, its namespace,
    and the access sequence number LRU eviction orders by."""

    namespace: str
    digest: str
    seq: int


class ArtifactCache:
    """Content-addressed build-artifact cache layered on a :class:`BlobStore`.

    Pipeline stages key intermediate artifacts (preprocessed text, IR
    modules, lowered machine modules) by the content digests of everything
    that went into producing them, so a repeated build — or a batch
    deployment fanning one IR container out to many systems — reuses work
    instead of recomputing it. Payload text is persisted in the underlying
    blob store (shareable, digest-verified); live objects (e.g.
    :class:`~repro.compiler.ir.Module`) ride along in-process and are
    *reconstructed from the payload* by the cache-aware wrappers when a
    cold process hits a warm persistent store.

    On a persistent backend (file or remote) the key index itself is stored
    as access-ordered ref blobs, **sharded per namespace**
    (``artifact-index/<namespace>``), updated on every publish and hit: a
    later process — or :func:`repro.store.gc.collect` — sees both the
    mapping and the LRU order. Sharding is what keeps a busy farm off one
    hot ref: a worker publishing ``lower`` artifacts and one publishing
    ``preprocess`` CAS entirely different refs (zero cross-namespace
    retries), and each save rewrites O(one namespace) bytes instead of
    O(whole index). A store written by an older version (one monolithic
    :data:`INDEX_REF` blob) is read transparently and migrated to shards
    at the first save; ``sharded_index=False`` keeps the legacy monolithic
    layout (the benchmark's contention baseline). Blobs named in the pin
    set (:data:`PINS_REF`, see :meth:`pin`) are exempt from garbage
    collection along with everything they transitively reference.

    Index and pin persistence are **multi-writer safe**: every rewrite is a
    compare-and-swap retry loop (:meth:`Backend.compare_and_set_ref`) that
    re-reads the current ref, merges the other writer's entries and
    access-order updates into ours, and retries if the swap is beaten.
    Two builders racing on one ``FileBackend`` or ``StoreServer`` converge
    on the union of their publishes, recency bumps, and pins — never
    last-writer-wins. Keys this process evicted are tracked as tombstone
    *records* (digest + seq), so a merge can tell the stale entry we
    removed apart from a fresh republish by another writer: the former
    stays dead, the latter is adopted.

    Namespaces ("preprocess", "ir", "lower") keep independent hit/miss
    counters, surfaced per build in ``PipelineStats``. Thread-safe: the
    pipeline's parallel map may look up and publish concurrently.
    """

    #: CAS retry ceiling. Each failed attempt means another writer
    #: succeeded (the swap is lock-free), so hitting this means the
    #: backend is lying about CAS semantics, not that the store is busy.
    CAS_ATTEMPTS = 100

    def __init__(self, store: BlobStore | None = None, flush_every: int = 1,
                 sharded_index: bool = True,
                 registry: "MetricsRegistry | None" = None):
        self.store = store if store is not None else BlobStore()
        #: Telemetry registry all cache counters live in. Per-cache by
        #: default; cluster workers pass their own so cache traffic rides
        #: their heartbeat metric deltas.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: dict[str, IndexEntry] = {}  # cache key -> index record
        self._objects: dict[str, Any] = {}         # cache key -> live object
        self._counters: dict[str, CacheCounters] = {}
        self._lock = threading.Lock()
        self._seq = 0
        #: Publishes per index save. 1 (the default) persists on every
        #: put — maximum durability and cross-process visibility. Bulk
        #: publishers (cluster workers) raise it: each save CAS-rewrites
        #: the whole namespace shard, so a thousand-entry preprocess job
        #: at flush_every=1 is O(n^2) index bytes on disk. Batched writers
        #: must :meth:`flush_index` before *announcing* their artifacts
        #: (the cluster does, before reporting job completion).
        self.flush_every = max(1, flush_every)
        self._dirty_keys: set[str] = set()  # locally modified since last save
        # Namespaces whose shard must be rewritten even without a dirty
        # key in it — evictions leave nothing behind *but* the rewrite.
        self._dirty_namespaces: set[str] = set()
        # Tombstone records for keys we evicted: digest+seq let a merge
        # tell "the stale entry we removed" from "a fresh republish".
        self._evicted: dict[str, IndexEntry] = {}
        # Registry counters behind the `cas_retries` / `pin_cas_retries`
        # compatibility properties.
        self._cas_retries = self.registry.counter("cache.index_cas_retries")
        self._pin_cas_retries = self.registry.counter("cache.pin_cas_retries")
        self._sharded = bool(sharded_index)
        # True while a legacy monolithic index ref needs migrating: its
        # entries were adopted at load, and the first save rewrites every
        # namespace's shard before retiring the legacy ref.
        self._legacy_pending = False
        self._persistent = bool(getattr(self.store.backend, "persistent", False))
        if self._persistent:
            with self._lock:
                self._load_index_locked()

    @property
    def persistent(self) -> bool:
        """True when the backing store outlives this process (file/remote)."""
        return self._persistent

    @property
    def cas_retries(self) -> int:
        """Lost index-CAS attempts (another writer swapped first and we
        re-merged). The sharded layout's acceptance number: writers in
        different namespaces must show zero."""
        return self._cas_retries.value

    @cas_retries.setter
    def cas_retries(self, value: int) -> None:
        self._cas_retries.set(value)

    @property
    def pin_cas_retries(self) -> int:
        """Lost pin-CAS attempts, counted separately."""
        return self._pin_cas_retries.value

    @pin_cas_retries.setter
    def pin_cas_retries(self, value: int) -> None:
        self._pin_cas_retries.set(value)

    def _counters_locked(self, namespace: str) -> CacheCounters:
        counters = self._counters.get(namespace)
        if counters is None:
            counters = CacheCounters(
                _hits=self.registry.counter("cache.hits",
                                            namespace=namespace),
                _misses=self.registry.counter("cache.misses",
                                              namespace=namespace))
            self._counters[namespace] = counters
        return counters

    # -- index persistence -----------------------------------------------------

    def _load_index_locked(self) -> None:
        """Adopt whatever index state the backend holds.

        Sharded layout: the legacy monolithic ref (if an older writer left
        one) is merged first, *adopt-only*; then each namespace shard is
        merged with authority over its own namespace — so an entry the
        legacy blob still lists but the shard has since evicted stays
        dead, while a legacy-only store (no shards yet) survives intact
        and is migrated at the first save.
        """
        backend = self.store.backend
        if not self._sharded:
            self._merge_index_locked(backend.get_ref(INDEX_REF),
                                     drop_scope=None)
            return
        legacy = backend.get_ref(INDEX_REF)
        if legacy is not None:
            self._legacy_pending = True
            self._merge_index_locked(legacy, drop_scope=frozenset())
        for name in sorted(backend.refs()):
            if not name.startswith(INDEX_REF_PREFIX):
                continue
            namespace = name[len(INDEX_REF_PREFIX):]
            self._merge_index_locked(backend.get_ref(name),
                                     drop_scope={namespace})

    def _merge_index_locked(self, raw: bytes | None,
                            drop_scope: "set[str] | frozenset | None") -> None:
        """Reconcile our in-memory index with ``raw`` (the ref bytes another
        writer last persisted).

        * Unseen keys are adopted — a concurrent publish survives.
        * Keys present on both sides keep whichever record is fresher:
          ours when we modified the key since our last save (a new publish
          or an LRU bump), otherwise the backend's; seq is merged by max
          so *both* writers' recency updates survive.
        * Keys we carry but the backend no longer lists were evicted by
          another writer (or its GC); unless we re-dirtied them, we drop
          them rather than resurrect what someone else collected.
          ``drop_scope`` bounds this ref's authority: only local entries
          whose namespace it covers may be dropped (``None`` = every
          namespace, the monolithic layout; an empty set = adopt-only,
          how the legacy blob is read next to newer shards).
        * Tombstoned keys stay dead when the backend still shows the very
          record we evicted; a record with a new digest or later seq is a
          fresh republish and is adopted (tombstone cleared).
        """
        if raw is None:
            return
        blob = json.loads(raw.decode("utf-8"))
        self._seq = max(self._seq, int(blob.get("seq", 0)))
        backend_keys: set[str] = set()
        for key, namespace, digest, seq in blob.get("entries", ()):
            seq = int(seq)
            tomb = self._evicted.get(key)
            if tomb is not None:
                if digest == tomb.digest and seq <= tomb.seq:
                    continue  # the entry we evicted; keep it dead
                del self._evicted[key]  # fresh republish elsewhere
            backend_keys.add(key)
            mine = self._entries.get(key)
            if mine is None:
                self._entries[key] = IndexEntry(namespace, digest, seq)
            elif key in self._dirty_keys:
                mine.seq = max(mine.seq, seq)
            elif seq >= mine.seq:
                mine.namespace, mine.digest, mine.seq = namespace, digest, seq
        for key in list(self._entries):
            record = self._entries[key]
            if drop_scope is not None and record.namespace not in drop_scope:
                continue  # this ref has no authority over that namespace
            if key not in backend_keys and key not in self._dirty_keys:
                del self._entries[key]
                self._objects.pop(key, None)

    def flush_index(self) -> None:
        """Persist the index now, even on a non-persistent backend.

        Hit-driven LRU bumps are batched (persisting the whole index per
        lookup would be O(n) I/O per hit); any operation boundary —
        ``put``, ``evict``, ``snapshot``, ``stats``, GC — flushes them.
        Call this explicitly before handing a memory backend to
        :func:`repro.store.transfer.export_store`, or to persist a
        read-only session's recency updates immediately.
        """
        with self._lock:
            self._save_index_locked(force=True)

    def _save_index_locked(self, force: bool = False) -> None:
        """Persist the locally-modified index shards.

        Sharded layout: only namespaces with local changes (dirty keys,
        evictions) are rewritten, each through its own CAS retry-merge
        loop — writers in different namespaces touch different refs and
        never conflict, and each payload is O(namespace). When a legacy
        monolithic ref was adopted at load, the first save migrates it:
        every namespace's shard is written, then the legacy ref retired.
        """
        if not self._persistent and not force:
            return
        if not self._sharded:
            self._save_shard_locked(INDEX_REF, scope=None)
            return
        dirty = {self._entries[key].namespace
                 for key in self._dirty_keys if key in self._entries}
        dirty |= self._dirty_namespaces
        if self._legacy_pending:
            dirty |= {e.namespace for e in self._entries.values()}
            dirty |= {e.namespace for e in self._evicted.values()}
        for namespace in sorted(dirty):
            self._save_shard_locked(index_ref_name(namespace),
                                    scope={namespace})
        self._dirty_namespaces.clear()
        if self._legacy_pending:
            # Every namespace now lives in its shard; retire the old ref
            # so later loads (and GC's index walk) stop seeing stale
            # monolithic state.
            self.store.backend.delete_ref(INDEX_REF)
            self._legacy_pending = False

    def _save_shard_locked(self, ref_name: str,
                           scope: "set[str] | None") -> None:
        """CAS retry-merge loop for one index ref (shard or monolithic).

        Read the current ref, merge the other writer's state into ours,
        and compare-and-swap the union back. A lost swap means someone
        else published between our read and our write — re-read, re-merge,
        retry. Both racing writers' entries and access-order updates
        survive, which a blind ``set_ref`` could never guarantee.
        """
        backend = self.store.backend

        def in_scope(entry: IndexEntry) -> bool:
            return scope is None or entry.namespace in scope

        for _ in range(self.CAS_ATTEMPTS):
            raw = backend.get_ref(ref_name)
            self._merge_index_locked(raw, drop_scope=scope)
            # Re-stamp the keys we modified *after* the merge raised _seq
            # past everything the index has seen: a publish made by a
            # handle whose local counter lagged would otherwise carry a
            # seq below an old tombstone's and be mistaken for the stale
            # entry that tombstone killed. Re-stamping in current-seq
            # order keeps the keys' relative access order intact (they
            # were all just touched, so above-the-index is honest LRU).
            dirty_here = [key for key in self._dirty_keys
                          if key in self._entries
                          and in_scope(self._entries[key])]
            for key in sorted(dirty_here,
                              key=lambda k: self._entries[k].seq):
                self._entries[key].seq = self._next_seq_locked()
            payload = json.dumps({
                "version": 1,
                "seq": self._seq,
                "entries": [[key, e.namespace, e.digest, e.seq]
                            for key, e in sorted(self._entries.items())
                            if in_scope(e)],
            }, sort_keys=True).encode("utf-8")
            if raw == payload or backend.compare_and_set_ref(
                    ref_name, raw, payload):
                self._dirty_keys.difference_update(dirty_here)
                return
            self._cas_retries.inc()
            _events.emit("info", "index CAS retry", ref=ref_name,
                         retries=self._cas_retries.value)
        raise BackendError(
            f"index CAS did not converge after {self.CAS_ATTEMPTS} attempts")

    def _flush_dirty_locked(self) -> None:
        if self._dirty_keys:
            self._save_index_locked()

    def _next_seq_locked(self) -> int:
        self._seq += 1
        return self._seq

    # -- lookup / publish --------------------------------------------------------

    @staticmethod
    def cache_key(namespace: str, parts: Any) -> str:
        """Canonical key: namespace + JSON-stable digest of the parts."""
        return stable_hash({"ns": namespace, "key": parts})

    def get(self, namespace: str, parts: Any,
            require_obj: bool = False) -> CacheEntry | None:
        """Look up an artifact; counts a hit or miss in ``namespace``.

        ``require_obj=True`` treats a payload-only entry as a miss — for
        callers that cannot (or must not) reconstruct the live object from
        the payload text.
        """
        key = self.cache_key(namespace, parts)
        with self._lock:
            counters = self._counters_locked(namespace)
            record = self._entries.get(key)
            obj = self._objects.get(key)
            if record is None or not self.store.has(record.digest) \
                    or (require_obj and obj is None):
                counters._misses.inc()
                return None
            counters._hits.inc()
            # Read under the lock: the index said the blob exists, and
            # nothing in-process may evict it between that check and this
            # read. A hit refreshes the entry's position in the LRU order;
            # the bump is persisted at the next operation boundary (put,
            # snapshot, stats, GC) rather than per lookup.
            payload = self.store.get_text(record.digest)
            record.seq = self._next_seq_locked()
            if self._persistent:
                self._dirty_keys.add(key)
        return CacheEntry(record.digest, payload, obj)

    def put(self, namespace: str, parts: Any, payload: str,
            obj: Any = None) -> CacheEntry:
        """Publish an artifact; idempotent, does not touch the counters."""
        key = self.cache_key(namespace, parts)
        with self._lock:
            digest = self.store.put(payload)
            self._entries[key] = IndexEntry(namespace, digest,
                                            self._next_seq_locked())
            # A republish of a key we once evicted is a fresh entry; the
            # tombstone must not swallow it at the next merge.
            self._evicted.pop(key, None)
            self._dirty_keys.add(key)
            if obj is not None:
                self._objects[key] = obj
            else:
                # Re-publishing without an object must not leave a stale
                # live object paired with the new payload.
                self._objects.pop(key, None)
            if len(self._dirty_keys) >= self.flush_every:
                self._save_index_locked()
        return CacheEntry(digest, payload, obj)

    def put_blob(self, payload: str) -> str:
        """Store a raw content-addressed blob with no index entry.

        For bulk artifact bodies (preprocessed text) that a payload refers
        to by digest, so index payloads stay small and hits stay O(1) in
        artifact size.
        """
        with self._lock:
            return self.store.put(payload)

    # -- pins --------------------------------------------------------------------

    def pin(self, name: str, digest: str) -> None:
        """Protect ``digest`` — and everything it transitively references —
        from garbage collection, under a human-readable name.

        Deployable state is pinned by its root: pinning an image's manifest
        digest keeps its config and layer blobs alive because GC follows
        digest references inside pinned blobs.
        """
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        with self._lock:
            self._update_pins_locked(lambda pins: pins.update({name: digest}))

    def unpin(self, name: str) -> bool:
        with self._lock:
            return self._update_pins_locked(
                lambda pins: pins.pop(name, None) is not None)

    def _update_pins_locked(self, mutate) -> bool:
        """Apply ``mutate`` to the pin set via a CAS retry loop.

        ``mutate`` edits the freshly-read dict in place and may return
        False to signal a no-op (e.g. unpinning a name that is not
        pinned); anything else counts as a change. Re-reading inside the
        loop means two processes pinning different names both survive.
        """
        backend = self.store.backend
        for _ in range(self.CAS_ATTEMPTS):
            raw = backend.get_ref(PINS_REF)
            pins = {} if raw is None else json.loads(raw.decode("utf-8"))
            if mutate(pins) is False:
                return False
            payload = json.dumps(pins, sort_keys=True).encode("utf-8")
            if raw == payload or backend.compare_and_set_ref(
                    PINS_REF, raw, payload):
                return True
            self._pin_cas_retries.inc()
            _events.emit("info", "pin CAS retry",
                         retries=self._pin_cas_retries.value)
        raise BackendError(
            f"pin CAS did not converge after {self.CAS_ATTEMPTS} attempts")

    def pins(self) -> dict[str, str]:
        with self._lock:
            return self._load_pins()

    def _load_pins(self) -> dict[str, str]:
        raw = self.store.backend.get_ref(PINS_REF)
        return {} if raw is None else json.loads(raw.decode("utf-8"))

    # -- introspection (stats, GC) -----------------------------------------------

    def entries(self) -> dict[str, IndexEntry]:
        """Snapshot of the index (key -> record copy), for stats and GC.

        On a persistent backend the snapshot first syncs with the live
        ref, so GC and stats see entries other writers published since we
        last saved — not just our own view.
        """
        with self._lock:
            self._flush_dirty_locked()
            if self._persistent:
                self._load_index_locked()
            return {key: IndexEntry(e.namespace, e.digest, e.seq)
                    for key, e in self._entries.items()}

    def evict(self, key: str) -> IndexEntry | None:
        """Drop one index entry (not its blob); returns the removed record.

        Blob deletion is GC's job — it alone knows which blobs are still
        referenced by surviving entries or pinned manifests.
        """
        with self._lock:
            record = self._entries.pop(key, None)
            self._objects.pop(key, None)
            self._dirty_keys.discard(key)
            if record is not None:
                # Tombstone the full record: the save's merge must not
                # resurrect what we just evicted, but a *fresh* republish
                # of the same key (new digest or later seq) by another
                # writer must still be adopted.
                self._evicted[key] = IndexEntry(record.namespace,
                                                record.digest, record.seq)
                # The key's shard must be rewritten even though no dirty
                # key remains in that namespace.
                self._dirty_namespaces.add(record.namespace)
                self._save_index_locked()
            return record

    def gc(self, max_bytes: int, grace_seconds: float = 0.0,
           dry_run: bool = False, max_age_seconds: float | None = None):
        """Bound the backing store to ``max_bytes`` by LRU eviction.

        Delegates to :func:`repro.store.gc.collect`; see there for the
        policy (orphans first, then TTL expiry when ``max_age_seconds``
        is given, then least-recently-used entries; pinned blobs are
        never deleted). Pass a positive ``grace_seconds`` when other
        writers may be publishing concurrently: blobs younger than the
        window are never swept, closing the put-blob-then-write-index
        gap every publisher has. ``dry_run=True`` prices the eviction
        plan without deleting anything.
        """
        from repro.store.gc import collect
        return collect(self, max_bytes, grace_seconds=grace_seconds,
                       dry_run=dry_run, max_age_seconds=max_age_seconds)

    def stats(self) -> dict:
        """Machine-readable store/cache statistics (``cache stats --json``).

        ``bytes_by_namespace`` prices each namespace the way GC would free
        it: every blob an entry's payload references (the payload blob
        itself plus bulk blobs it names by digest, e.g. preprocessed text)
        is attributed to the entry's namespace, counted once per
        namespace. This is what makes warm/cold scheduling decisions — and
        per-namespace GC budgets — inspectable.
        """
        from repro.store.gc import referenced_digests
        with self._lock:
            self._flush_dirty_locked()
            if self._persistent:
                self._load_index_locked()
            per_ns: dict[str, int] = {}
            ns_digests: dict[str, set[str]] = {}
            for record in self._entries.values():
                per_ns[record.namespace] = per_ns.get(record.namespace, 0) + 1
                ns_digests.setdefault(record.namespace, set())
            # Sizing is metadata-first and *batched*: every payload blob
            # is priced in one blob_size_many call (a stat per blob
            # locally, one round-trip remotely). Content is fetched —
            # again in one batch — only for *small* payloads, to discover
            # the bulk blobs they name by digest; the indirection pattern
            # (tiny JSON pointing at big preprocessed text) never puts
            # digests in large blobs, so the scan cutoff loses nothing
            # while keeping `cache stats` from downloading a remote store
            # wholesale.
            scan_cutoff = 64 * 1024
            unique_digests = {r.digest for r in self._entries.values()}
            size_cache = {digest: size for digest, size
                          in self.store.blob_size_many(unique_digests).items()
                          if size is not None}
            small = {digest for digest in unique_digests
                     if 0 <= size_cache.get(digest, -1) <= scan_cutoff}
            payloads = self.store.get_many(sorted(small))
            payload_refs = {digest: referenced_digests(data)
                            for digest, data in payloads.items()}
            bulk = {ref for refs in payload_refs.values() for ref in refs
                    if ref not in size_cache}
            size_cache.update(
                (digest, size or 0) for digest, size
                in self.store.blob_size_many(bulk).items())
            for record in self._entries.values():
                if record.digest not in size_cache:
                    continue  # blob vanished under us (another writer's GC)
                if record.digest in small and record.digest not in payloads:
                    continue  # raced a delete between sizing and fetching
                seen = ns_digests.setdefault(record.namespace, set())
                seen.add(record.digest)
                seen.update(payload_refs.get(record.digest, ()))
            bytes_by_ns = {
                ns: sum(size_cache.get(d, 0) for d in digests)
                for ns, digests in ns_digests.items()}
            blob_count, total_bytes = self.store.stat()
            return {
                "blobs": blob_count,
                "total_bytes": total_bytes,
                "entries": len(self._entries),
                "entries_by_namespace": dict(sorted(per_ns.items())),
                "bytes_by_namespace": dict(sorted(bytes_by_ns.items())),
                "pins": self._load_pins(),
                "persistent": self._persistent,
                "sharded_index": self._sharded,
                "index_cas_retries": self.cas_retries,
                "pin_cas_retries": self.pin_cas_retries,
            }

    # -- counters ----------------------------------------------------------------

    def counters(self, namespace: str) -> CacheCounters:
        with self._lock:
            return self._counters_locked(namespace)

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """(hits, misses) per namespace — for computing per-build deltas.

        Builds and deployments snapshot before and after a run, which makes
        this the natural operation boundary to persist batched LRU bumps.
        """
        with self._lock:
            self._flush_dirty_locked()
            return {ns: (c.hits, c.misses) for ns, c in self._counters.items()}

    def __len__(self) -> int:
        return len(self._entries)
