"""Content-addressed blob store — the foundation of the OCI image model.

Every object in an OCI registry (layer tarballs, image configs, manifests) is
a blob identified by the SHA-256 digest of its bytes. Immutability by
construction is the property the paper leans on in Sec. 5.2: any change to an
image layer produces a new digest and therefore a new image identity, which
is why deploy-time specialization must create a *new* image rather than
mutate the pulled one.

Storage itself is pluggable (:mod:`repro.store`): the default
:class:`~repro.store.backend.MemoryBackend` keeps the historical in-process
dict semantics, while :class:`~repro.store.backend.FileBackend` and
:class:`~repro.store.remote.RemoteBackend` persist and share blobs across
processes. :class:`ArtifactCache` keeps its key index in an access-ordered
ref blob on the same backend, so a cold process warm-starts from whatever a
previous build left behind.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any

from repro.store.backend import (
    INDEX_REF,
    PINS_REF,
    Backend,
    BlobNotFound,
    MemoryBackend,
)
from repro.util.hashing import content_digest, is_digest, stable_hash

__all__ = [
    "ArtifactCache", "BlobNotFound", "BlobStore", "CacheCounters", "CacheEntry",
    "IndexEntry", "INDEX_REF", "PINS_REF",
]


class BlobStore:
    """Digest -> bytes mapping with integrity checking over a backend."""

    def __init__(self, backend: Backend | None = None):
        self.backend: Backend = backend if backend is not None else MemoryBackend()

    def put(self, data: bytes | str) -> str:
        """Store a blob; returns its digest. Idempotent."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = content_digest(data)
        self.backend.put(digest, data)
        return digest

    def get(self, digest: str) -> bytes:
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        return self.backend.get(digest)

    def get_text(self, digest: str) -> str:
        return self.get(digest).decode("utf-8")

    def has(self, digest: str) -> bool:
        return self.backend.has(digest)

    def delete(self, digest: str) -> bool:
        """Remove one blob; True if it existed. (GC's primitive — callers
        are responsible for not deleting blobs still referenced.)"""
        return self.backend.delete(digest)

    def __len__(self) -> int:
        return len(self.backend)

    @property
    def total_bytes(self) -> int:
        """Store size; maintained incrementally by the backend, O(1)."""
        return self.backend.total_bytes

    def copy_blob(self, digest: str, dest: "BlobStore") -> None:
        """Transfer one blob (push/pull primitive); verifies integrity."""
        data = self.get(digest)
        stored = dest.put(data)
        if stored != digest:  # pragma: no cover - put() recomputes, cannot differ
            raise RuntimeError("digest mismatch during transfer")


# -- artifact cache ------------------------------------------------------------


@dataclass
class CacheCounters:
    """Hit/miss accounting for one cache namespace."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CacheEntry:
    """One cached artifact: its blob digest, payload text, and — when the
    artifact lives in this process — the live object it serializes."""

    digest: str
    payload: str
    obj: Any = None


@dataclass
class IndexEntry:
    """One index record: which blob a cache key resolves to, its namespace,
    and the access sequence number LRU eviction orders by."""

    namespace: str
    digest: str
    seq: int


class ArtifactCache:
    """Content-addressed build-artifact cache layered on a :class:`BlobStore`.

    Pipeline stages key intermediate artifacts (preprocessed text, IR
    modules, lowered machine modules) by the content digests of everything
    that went into producing them, so a repeated build — or a batch
    deployment fanning one IR container out to many systems — reuses work
    instead of recomputing it. Payload text is persisted in the underlying
    blob store (shareable, digest-verified); live objects (e.g.
    :class:`~repro.compiler.ir.Module`) ride along in-process and are
    *reconstructed from the payload* by the cache-aware wrappers when a
    cold process hits a warm persistent store.

    On a persistent backend (file or remote) the key index itself is stored
    as an access-ordered ref blob (:data:`INDEX_REF`), updated on every
    publish and hit: a later process — or :func:`repro.store.gc.collect` —
    sees both the mapping and the LRU order. Blobs named in the pin set
    (:data:`PINS_REF`, see :meth:`pin`) are exempt from garbage collection
    along with everything they transitively reference.

    Namespaces ("preprocess", "ir", "lower") keep independent hit/miss
    counters, surfaced per build in ``PipelineStats``. Thread-safe: the
    pipeline's parallel map may look up and publish concurrently.
    """

    def __init__(self, store: BlobStore | None = None):
        self.store = store if store is not None else BlobStore()
        self._entries: dict[str, IndexEntry] = {}  # cache key -> index record
        self._objects: dict[str, Any] = {}         # cache key -> live object
        self._counters: dict[str, CacheCounters] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._dirty_hits = 0  # LRU bumps not yet persisted
        self._evicted: set[str] = set()  # tombstones: do not re-adopt on merge
        self._persistent = bool(getattr(self.store.backend, "persistent", False))
        if self._persistent:
            with self._lock:
                self._merge_from_backend_locked()

    # -- index persistence -----------------------------------------------------

    def _merge_from_backend_locked(self) -> None:
        """Adopt index entries another writer persisted since our last read.

        Keys we already track (or evicted ourselves) keep our record; only
        unseen keys are adopted. Saving always merges first, so two
        cooperating processes converge on the union of their entries
        instead of last-writer-wins dropping each other's publishes (and
        GC never mistakes a concurrently-published blob for an orphan).
        """
        raw = self.store.backend.get_ref(INDEX_REF)
        if raw is None:
            return
        blob = json.loads(raw.decode("utf-8"))
        self._seq = max(self._seq, int(blob.get("seq", 0)))
        for key, namespace, digest, seq in blob.get("entries", ()):
            if key not in self._entries and key not in self._evicted:
                self._entries[key] = IndexEntry(namespace, digest, int(seq))

    def flush_index(self) -> None:
        """Persist the index now, even on a non-persistent backend.

        Hit-driven LRU bumps are batched (persisting the whole index per
        lookup would be O(n) I/O per hit); any operation boundary —
        ``put``, ``evict``, ``snapshot``, ``stats``, GC — flushes them.
        Call this explicitly before handing a memory backend to
        :func:`repro.store.transfer.export_store`, or to persist a
        read-only session's recency updates immediately.
        """
        with self._lock:
            self._save_index_locked(force=True)

    def _save_index_locked(self, force: bool = False) -> None:
        if not self._persistent and not force:
            return
        self._merge_from_backend_locked()
        payload = json.dumps({
            "version": 1,
            "seq": self._seq,
            "entries": [[key, e.namespace, e.digest, e.seq]
                        for key, e in self._entries.items()],
        }, sort_keys=True)
        self.store.backend.set_ref(INDEX_REF, payload.encode("utf-8"))
        self._dirty_hits = 0

    def _flush_dirty_locked(self) -> None:
        if self._dirty_hits:
            self._save_index_locked()

    def _next_seq_locked(self) -> int:
        self._seq += 1
        return self._seq

    # -- lookup / publish --------------------------------------------------------

    @staticmethod
    def cache_key(namespace: str, parts: Any) -> str:
        """Canonical key: namespace + JSON-stable digest of the parts."""
        return stable_hash({"ns": namespace, "key": parts})

    def get(self, namespace: str, parts: Any,
            require_obj: bool = False) -> CacheEntry | None:
        """Look up an artifact; counts a hit or miss in ``namespace``.

        ``require_obj=True`` treats a payload-only entry as a miss — for
        callers that cannot (or must not) reconstruct the live object from
        the payload text.
        """
        key = self.cache_key(namespace, parts)
        with self._lock:
            counters = self._counters.setdefault(namespace, CacheCounters())
            record = self._entries.get(key)
            obj = self._objects.get(key)
            if record is None or not self.store.has(record.digest) \
                    or (require_obj and obj is None):
                counters.misses += 1
                return None
            counters.hits += 1
            # Read under the lock: the index said the blob exists, and
            # nothing in-process may evict it between that check and this
            # read. A hit refreshes the entry's position in the LRU order;
            # the bump is persisted at the next operation boundary (put,
            # snapshot, stats, GC) rather than per lookup.
            payload = self.store.get_text(record.digest)
            record.seq = self._next_seq_locked()
            if self._persistent:
                self._dirty_hits += 1
        return CacheEntry(record.digest, payload, obj)

    def put(self, namespace: str, parts: Any, payload: str,
            obj: Any = None) -> CacheEntry:
        """Publish an artifact; idempotent, does not touch the counters."""
        key = self.cache_key(namespace, parts)
        with self._lock:
            digest = self.store.put(payload)
            self._entries[key] = IndexEntry(namespace, digest,
                                            self._next_seq_locked())
            if obj is not None:
                self._objects[key] = obj
            else:
                # Re-publishing without an object must not leave a stale
                # live object paired with the new payload.
                self._objects.pop(key, None)
            self._save_index_locked()
        return CacheEntry(digest, payload, obj)

    def put_blob(self, payload: str) -> str:
        """Store a raw content-addressed blob with no index entry.

        For bulk artifact bodies (preprocessed text) that a payload refers
        to by digest, so index payloads stay small and hits stay O(1) in
        artifact size.
        """
        with self._lock:
            return self.store.put(payload)

    # -- pins --------------------------------------------------------------------

    def pin(self, name: str, digest: str) -> None:
        """Protect ``digest`` — and everything it transitively references —
        from garbage collection, under a human-readable name.

        Deployable state is pinned by its root: pinning an image's manifest
        digest keeps its config and layer blobs alive because GC follows
        digest references inside pinned blobs.
        """
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        with self._lock:
            pins = self._load_pins()
            pins[name] = digest
            self.store.backend.set_ref(
                PINS_REF, json.dumps(pins, sort_keys=True).encode("utf-8"))

    def unpin(self, name: str) -> bool:
        with self._lock:
            pins = self._load_pins()
            if name not in pins:
                return False
            del pins[name]
            self.store.backend.set_ref(
                PINS_REF, json.dumps(pins, sort_keys=True).encode("utf-8"))
            return True

    def pins(self) -> dict[str, str]:
        with self._lock:
            return self._load_pins()

    def _load_pins(self) -> dict[str, str]:
        raw = self.store.backend.get_ref(PINS_REF)
        return {} if raw is None else json.loads(raw.decode("utf-8"))

    # -- introspection (stats, GC) -----------------------------------------------

    def entries(self) -> dict[str, IndexEntry]:
        """Snapshot of the index (key -> record copy), for stats and GC."""
        with self._lock:
            self._flush_dirty_locked()
            return {key: IndexEntry(e.namespace, e.digest, e.seq)
                    for key, e in self._entries.items()}

    def evict(self, key: str) -> IndexEntry | None:
        """Drop one index entry (not its blob); returns the removed record.

        Blob deletion is GC's job — it alone knows which blobs are still
        referenced by surviving entries or pinned manifests.
        """
        with self._lock:
            record = self._entries.pop(key, None)
            self._objects.pop(key, None)
            if record is not None:
                # Tombstone: a save merges from the backend first, and the
                # merge must not resurrect what we just evicted.
                self._evicted.add(key)
                self._save_index_locked()
            return record

    def gc(self, max_bytes: int):
        """Bound the backing store to ``max_bytes`` by LRU eviction.

        Delegates to :func:`repro.store.gc.collect`; see there for the
        policy (orphans first, then least-recently-used entries; pinned
        blobs are never deleted).
        """
        from repro.store.gc import collect
        return collect(self, max_bytes)

    def stats(self) -> dict:
        """Machine-readable store/cache statistics (``cache stats --json``)."""
        with self._lock:
            self._flush_dirty_locked()
            per_ns: dict[str, int] = {}
            for record in self._entries.values():
                per_ns[record.namespace] = per_ns.get(record.namespace, 0) + 1
            return {
                "blobs": len(self.store),
                "total_bytes": self.store.total_bytes,
                "entries": len(self._entries),
                "entries_by_namespace": dict(sorted(per_ns.items())),
                "pins": self._load_pins(),
                "persistent": self._persistent,
            }

    # -- counters ----------------------------------------------------------------

    def counters(self, namespace: str) -> CacheCounters:
        with self._lock:
            return self._counters.setdefault(namespace, CacheCounters())

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """(hits, misses) per namespace — for computing per-build deltas.

        Builds and deployments snapshot before and after a run, which makes
        this the natural operation boundary to persist batched LRU bumps.
        """
        with self._lock:
            self._flush_dirty_locked()
            return {ns: (c.hits, c.misses) for ns, c in self._counters.items()}

    def __len__(self) -> int:
        return len(self._entries)
