"""Content-addressed blob store — the foundation of the OCI image model.

Every object in an OCI registry (layer tarballs, image configs, manifests) is
a blob identified by the SHA-256 digest of its bytes. Immutability by
construction is the property the paper leans on in Sec. 5.2: any change to an
image layer produces a new digest and therefore a new image identity, which
is why deploy-time specialization must create a *new* image rather than
mutate the pulled one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.util.hashing import content_digest, is_digest, stable_hash


class BlobNotFound(KeyError):
    pass


@dataclass
class BlobStore:
    """Digest -> bytes mapping with integrity checking."""

    _blobs: dict[str, bytes] = field(default_factory=dict)

    def put(self, data: bytes | str) -> str:
        """Store a blob; returns its digest. Idempotent."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = content_digest(data)
        self._blobs[digest] = data
        return digest

    def get(self, digest: str) -> bytes:
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        try:
            return self._blobs[digest]
        except KeyError:
            raise BlobNotFound(digest) from None

    def get_text(self, digest: str) -> str:
        return self.get(digest).decode("utf-8")

    def has(self, digest: str) -> bool:
        return digest in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def copy_blob(self, digest: str, dest: "BlobStore") -> None:
        """Transfer one blob (push/pull primitive); verifies integrity."""
        data = self.get(digest)
        stored = dest.put(data)
        if stored != digest:  # pragma: no cover - put() recomputes, cannot differ
            raise RuntimeError("digest mismatch during transfer")


# -- artifact cache ------------------------------------------------------------


@dataclass
class CacheCounters:
    """Hit/miss accounting for one cache namespace."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CacheEntry:
    """One cached artifact: its blob digest, payload text, and — when the
    artifact lives in this process — the live object it serializes."""

    digest: str
    payload: str
    obj: Any = None


class ArtifactCache:
    """Content-addressed build-artifact cache layered on a :class:`BlobStore`.

    Pipeline stages key intermediate artifacts (preprocessed text, IR
    modules, lowered machine modules) by the content digests of everything
    that went into producing them, so a repeated build — or a batch
    deployment fanning one IR container out to many systems — reuses work
    instead of recomputing it. Payload text is persisted in the underlying
    blob store (shareable, digest-verified); non-serializable live objects
    (e.g. :class:`~repro.compiler.ir.Module`) ride along in-process only.

    Namespaces ("preprocess", "ir", "lower") keep independent hit/miss
    counters, surfaced per build in ``PipelineStats``. Thread-safe: the
    pipeline's parallel map may look up and publish concurrently.
    """

    def __init__(self, store: BlobStore | None = None):
        self.store = store if store is not None else BlobStore()
        self._index: dict[str, str] = {}      # cache key -> payload digest
        self._objects: dict[str, Any] = {}    # cache key -> live object
        self._counters: dict[str, CacheCounters] = {}
        self._lock = threading.Lock()

    @staticmethod
    def cache_key(namespace: str, parts: Any) -> str:
        """Canonical key: namespace + JSON-stable digest of the parts."""
        return stable_hash({"ns": namespace, "key": parts})

    def get(self, namespace: str, parts: Any,
            require_obj: bool = False) -> CacheEntry | None:
        """Look up an artifact; counts a hit or miss in ``namespace``.

        ``require_obj=True`` treats a payload-only entry as a miss — for
        artifacts (IR modules, machine modules) whose live object cannot be
        reconstructed from the payload text alone.
        """
        key = self.cache_key(namespace, parts)
        with self._lock:
            counters = self._counters.setdefault(namespace, CacheCounters())
            digest = self._index.get(key)
            obj = self._objects.get(key)
            if digest is None or not self.store.has(digest) \
                    or (require_obj and obj is None):
                counters.misses += 1
                return None
            counters.hits += 1
            # Read under the lock: the index said the blob exists, and
            # nothing may evict it between that check and this read.
            payload = self.store.get_text(digest)
        return CacheEntry(digest, payload, obj)

    def put(self, namespace: str, parts: Any, payload: str,
            obj: Any = None) -> CacheEntry:
        """Publish an artifact; idempotent, does not touch the counters."""
        key = self.cache_key(namespace, parts)
        with self._lock:
            # The backing BlobStore is a plain dict; keep its mutation under
            # this cache's lock so worker threads never race it.
            digest = self.store.put(payload)
            self._index[key] = digest
            if obj is not None:
                self._objects[key] = obj
            else:
                # Re-publishing without an object must not leave a stale
                # live object paired with the new payload.
                self._objects.pop(key, None)
        return CacheEntry(digest, payload, obj)

    def put_blob(self, payload: str) -> str:
        """Store a raw content-addressed blob with no index entry.

        For bulk artifact bodies (preprocessed text) that a payload refers
        to by digest, so index payloads stay small and hits stay O(1) in
        artifact size.
        """
        with self._lock:
            return self.store.put(payload)

    def counters(self, namespace: str) -> CacheCounters:
        with self._lock:
            return self._counters.setdefault(namespace, CacheCounters())

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """(hits, misses) per namespace — for computing per-build deltas."""
        with self._lock:
            return {ns: (c.hits, c.misses) for ns, c in self._counters.items()}

    def __len__(self) -> int:
        return len(self._index)
