"""Content-addressed blob store — the foundation of the OCI image model.

Every object in an OCI registry (layer tarballs, image configs, manifests) is
a blob identified by the SHA-256 digest of its bytes. Immutability by
construction is the property the paper leans on in Sec. 5.2: any change to an
image layer produces a new digest and therefore a new image identity, which
is why deploy-time specialization must create a *new* image rather than
mutate the pulled one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.hashing import content_digest, is_digest


class BlobNotFound(KeyError):
    pass


@dataclass
class BlobStore:
    """Digest -> bytes mapping with integrity checking."""

    _blobs: dict[str, bytes] = field(default_factory=dict)

    def put(self, data: bytes | str) -> str:
        """Store a blob; returns its digest. Idempotent."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = content_digest(data)
        self._blobs[digest] = data
        return digest

    def get(self, digest: str) -> bytes:
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        try:
            return self._blobs[digest]
        except KeyError:
            raise BlobNotFound(digest) from None

    def get_text(self, digest: str) -> str:
        return self.get(digest).decode("utf-8")

    def has(self, digest: str) -> bool:
        return digest in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def copy_blob(self, digest: str, dest: "BlobStore") -> None:
        """Transfer one blob (push/pull primitive); verifies integrity."""
        data = self.get(digest)
        stored = dest.put(data)
        if stored != digest:  # pragma: no cover - put() recomputes, cannot differ
            raise RuntimeError("digest mismatch during transfer")
