"""The XaaS core: the paper's contribution, on top of the substrates.

* :mod:`~repro.core.specialization` — specialization points, feature
  intersection (Fig. 4), operator-preference selection, OCI annotations;
* :mod:`~repro.core.source_container` — source containers: build the
  distributable image, deploy with discovery -> intersect -> select -> build
  (Fig. 6);
* :mod:`~repro.core.ir_container` — the IR-container pipeline: configuration
  diffing, preprocessing dedup, OpenMP flag analysis, vectorization delay,
  IR build and image assembly (Fig. 7);
* :mod:`~repro.core.deployment` — IR-container deployment: select, lower,
  link, install, new image (Fig. 8).

The staged execution engine the IR-container workflow runs on (stage graph,
artifact cache, parallel map, batch deployment) lives in
:mod:`repro.pipeline`; the batch entry points are re-exported here.
"""

from repro.core.deployment import (
    DeployedIRApp,
    IRDeploymentError,
    LoweringTask,
    deploy_ir_container,
    lower_configuration,
    lowering_cache_keys,
    plan_lowerings,
    select_simd,
)
from repro.core.ir_container import (
    IRContainerResult,
    IRPipelineError,
    PipelineStats,
    TranslationUnit,
    build_ir_container,
    config_name,
)
from repro.pipeline.batch import (
    BatchDeployment,
    DeploymentPlan,
    ISAGroup,
    deploy_batch,
    plan_batch,
)
from repro.core.source_container import (
    DeployedSourceApp,
    SourceContainer,
    SourceDeploymentError,
    build_source_image,
    deploy_source_container,
)
from repro.core.specialization import (
    CommonSpecialization,
    decode_specialization_annotation,
    default_selection,
    encode_specialization_annotation,
    intersect_specializations,
    specialization_tag,
)

__all__ = [
    "DeployedIRApp", "IRDeploymentError", "LoweringTask", "deploy_ir_container",
    "lower_configuration", "lowering_cache_keys", "plan_lowerings", "select_simd",
    "IRContainerResult", "IRPipelineError", "PipelineStats",
    "TranslationUnit", "build_ir_container", "config_name",
    "BatchDeployment", "DeploymentPlan", "ISAGroup", "deploy_batch", "plan_batch",
    "DeployedSourceApp", "SourceContainer", "SourceDeploymentError",
    "build_source_image", "deploy_source_container",
    "CommonSpecialization", "decode_specialization_annotation",
    "default_selection", "encode_specialization_annotation",
    "intersect_specializations", "specialization_tag",
]
