"""IR-container deployment (paper Sec. 4.3.1, Fig. 8).

The user picks one of the configurations baked into the IR container; the
deployment tool selects that configuration's IR subset, optimizes and lowers
it for the destination ISA (vectorization happens *here*, not at container
build), lets the build system finish linking/installation, and assembles a
new runnable image whose tag encodes the specialization points.

Batch deployment — fanning one IR container out to many systems while
reusing lowered objects across systems that share an ISA — lives in
:mod:`repro.pipeline.batch`; this module provides the single-system
primitive it composes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.apps.base import AppModel
from repro.compiler.driver import CompileOptions
from repro.compiler.lowering import MachineFunction, lower_module_cached
from repro.containers.image import (
    ANNOTATION_SPECIALIZATION,
    ANNOTATION_TARGET_SYSTEM,
    Image,
    ImageConfig,
    Layer,
    Platform,
)
from repro.containers.registry import Registry
from repro.containers.store import ArtifactCache, BlobStore
from repro.core.ir_container import IRContainerResult, config_name
from repro.core.specialization import encode_specialization_annotation, specialization_tag
from repro.discovery.system import SystemSpec, best_simd_target
from repro.perf.model import BuildArtifact, infer_libraries


class IRDeploymentError(RuntimeError):
    pass


@dataclass
class DeployedIRApp:
    """A deployed IR container: runnable image + perf artifact."""

    image: Image
    artifact: BuildArtifact
    options: dict[str, str]
    simd_name: str
    system: SystemSpec
    tag: str
    lowered_count: int
    notes: list[str] = field(default_factory=list)


def select_simd(options: dict[str, str], system: SystemSpec,
                simd_override: str | None = None) -> str:
    """The ISA a deployment will lower for (paper's precedence rules).

    ``simd_override`` forces a specific ISA; otherwise a configuration that
    pins one (``GMX_SIMD``) takes precedence — the IR set may depend on it
    through preprocessed text — and the system's best supported level is
    the default. The batch planner uses this to group systems that will
    share lowered objects before any lowering happens.
    """
    pinned = options.get("GMX_SIMD")
    if simd_override:
        return simd_override
    if pinned and pinned not in ("AUTO", ""):
        return pinned
    return best_simd_target(system).name


@dataclass(frozen=True)
class LoweringTask:
    """One deployment-time lowering: an IR, a target ISA, and flags.

    The full flag list (``-msimd=<isa>`` + the manifest's surviving
    lowering flags, ``-O3`` defaulted) determines the target machine and
    optimization level, and therefore the ``lower`` cache key — the unit
    the cluster scheduler dedups across workers.
    """

    target: str
    source: str
    ir_digest: str
    flags: tuple[str, ...]

    def cache_parts(self) -> dict:
        """The exact ``lower``-namespace key parts
        :func:`~repro.compiler.lowering.lower_module_cached` uses."""
        opts = CompileOptions.from_flags(list(self.flags))
        return {"ir": self.ir_digest, "target": opts.resolve_target().name,
                "opt": opts.opt_level}


def plan_lowerings(result: IRContainerResult, options: dict[str, str],
                   simd_name: str) -> list[LoweringTask]:
    """Every lowering a deployment of ``options`` onto ``simd_name`` runs.

    This is the deployment's work list *before* any lowering happens —
    what lets the batch scheduler probe the shared store for ISAs that are
    already lowered and route their systems to the front.
    """
    name = config_name(options)
    if name not in result.manifests:
        raise IRDeploymentError(
            f"configuration {options} was not baked into this IR container; "
            f"available: {sorted(result.manifests)}")
    tasks = []
    for entry in result.manifests[name]:
        flags = [f for f in entry["lowering_flags"] if not f.startswith("-msimd=")]
        flags.append(f"-msimd={simd_name}")
        if not any(f.startswith("-O") for f in flags):
            flags.append("-O3")
        tasks.append(LoweringTask(entry["target"], entry["source"],
                                  entry["ir"], tuple(flags)))
    return tasks


def lowering_cache_keys(result: IRContainerResult, options: dict[str, str],
                        simd_name: str, cache: ArtifactCache) -> set[str]:
    """The ``lower`` cache keys a deployment will look up, for store probing."""
    return {cache.cache_key("lower", task.cache_parts())
            for task in plan_lowerings(result, options, simd_name)}


def lower_configuration(result: IRContainerResult, options: dict[str, str],
                        simd_name: str,
                        cache: ArtifactCache | None = None) -> int:
    """Lower one configuration for one ISA, publishing through ``cache``.

    The cluster's ``lower`` jobs run exactly this: the machine modules land
    in the shared store (payload-only artifacts), and every subsequent
    deployment for the same ISA — on any worker — replays them. Returns the
    number of lowerings processed (cache hits included).
    """
    count = 0
    for task in plan_lowerings(result, options, simd_name):
        module = result.ir_modules.get(task.ir_digest)
        if module is None:
            continue  # stats-only pipeline run
        opts = CompileOptions.from_flags(list(task.flags))
        lower_module_cached(module, opts.resolve_target(),
                            opt_level=opts.opt_level,
                            cache=cache, ir_digest=task.ir_digest)
        count += 1
    return count


def check_ir_architecture(result: IRContainerResult, system: SystemSpec) -> str:
    """Architecture check: an x86 IR container cannot deploy on ARM (Sec. 5.1).

    Returns the system's architecture family; raises on a mismatch.
    """
    variant = result.image.platform.variant
    want = "aarch64" if system.architecture == "arm64" else "x86_64"
    if variant and variant != want:
        raise IRDeploymentError(
            f"IR container is {variant}, but {system.name} is {want}: "
            "IR is not cross-platform for C/C++ (Sec. 5.1)")
    return want


def deploy_ir_container(result: IRContainerResult, app: AppModel,
                        options: dict[str, str], system: SystemSpec,
                        store: BlobStore,
                        simd_override: str | None = None,
                        registry: Registry | None = None,
                        repository: str = "",
                        cache: ArtifactCache | None = None) -> DeployedIRApp:
    """Deploy one configuration of an IR container onto a system.

    ``options`` must match one of the configurations the container was built
    with (the paper's rule: users select from the values chosen at
    configuration time). ``simd_override`` forces a specific ISA; see
    :func:`select_simd` for the default precedence. A shared ``cache`` lets
    deployments reuse lowered machine modules across systems with the same
    ISA (what :func:`repro.pipeline.batch.deploy_batch` exploits).
    """
    name = config_name(options)
    if name not in result.manifests:
        raise IRDeploymentError(
            f"configuration {options} was not baked into this IR container; "
            f"available: {sorted(result.manifests)}")

    family = check_ir_architecture(result, system)
    simd_name = select_simd(options, system, simd_override)

    # Lower every IR of the selected configuration.
    entries = result.manifests[name]
    lowered: dict[str, str] = {}
    machine_functions: dict[str, MachineFunction] = {}
    openmp = False
    for task in plan_lowerings(result, options, simd_name):
        module = result.ir_modules.get(task.ir_digest)
        if module is None:
            continue  # stats-only pipeline run
        opts = CompileOptions.from_flags(list(task.flags))
        openmp = openmp or "-fopenmp" in module.frontend_flags
        mmod = lower_module_cached(module, opts.resolve_target(),
                                   opt_level=opts.opt_level,
                                   cache=cache, ir_digest=task.ir_digest)
        lowered[f"{task.target}/{task.source}"] = (
            f"object code for {simd_name} ({len(mmod.functions)} functions)")
        for fn_name, mfn in mmod.functions.items():
            if fn_name in app.hot_functions:
                machine_functions[fn_name] = mfn

    cfg = result.configurations[name]
    libs = infer_libraries(options)
    artifact = BuildArtifact(
        app=app, options=dict(options), config=cfg,
        simd_name=simd_name,
        target_family=family,
        openmp=openmp or options.get("GMX_OPENMP", "ON").upper() == "ON"
        or options.get("WITH_OPENMP", "OFF").upper() == "ON",
        gpu_backend=libs.gpu_backend,
        fft_library=libs.fft_library,
        blas_library=libs.blas_library,
        mpi_flavor=libs.mpi_flavor,
        machine_functions=machine_functions,
        containerized=True,
        label=f"xaas-ir@{system.name}/{simd_name}",
    )
    missing = set(app.hot_functions) - set(machine_functions)
    if missing and result.ir_files:
        raise IRDeploymentError(f"hot functions missing from IR set: {sorted(missing)}")

    selection = dict(options)
    selection["SIMD_LOWERED"] = simd_name
    tag = specialization_tag(selection)
    deploy_layer = Layer({
        f"/xaas/install/obj/{k.replace('/', '_')}.o": v for k, v in lowered.items()
    } | {
        "/xaas/install/link.json": json.dumps(
            {"targets": sorted({e['target'] for e in entries}),
             "simd": simd_name}, sort_keys=True),
    }, comment=f"lowered + linked for {system.name} ({simd_name})")
    deployed_image = result.image.derive(
        [deploy_layer], store,
        annotations={
            ANNOTATION_SPECIALIZATION: encode_specialization_annotation(selection),
            ANNOTATION_TARGET_SYSTEM: system.name,
        },
        platform=Platform(system.architecture),
    )
    notes = [f"lowered {len(entries)} TUs from "
             f"{len({e['ir'] for e in entries})} shared IRs"]
    if registry is not None and repository:
        registry.push(repository, tag, deployed_image, source_store=store)
        notes.append(f"pushed {repository}:{tag}")
    return DeployedIRApp(image=deployed_image, artifact=artifact,
                         options=dict(options), simd_name=simd_name,
                         system=system, tag=tag,
                         lowered_count=len(entries), notes=notes)
