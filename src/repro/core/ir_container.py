"""The XaaS IR-container pipeline (paper Sec. 4.2-4.3, Fig. 7) — facade.

Stages, exactly as the paper orders them:

1. **Configuration** — generate every build configuration in a containerized
   environment (fixed build-dir mount path), collect compile commands, and
   share translation units whose *full command* already coincides.
2. **Preprocessing** — run the preprocessor per TU and hash the canonical
   output; TUs with identical text can share an IR unless distinguished by
   remaining non-define flags.
3. **OpenMP detection** — a Clang-AST-style analysis drops the ``-fopenmp``
   flag from the comparison for files containing no OpenMP constructs.
4. **Vectorization delay** — ``-msimd``/``-O`` flags are stripped from the
   identity entirely: LLVM-style vectorizers run at IR level, so the ISA is
   bound at deployment, not at container build.

The staged engine itself lives in :mod:`repro.pipeline`:
:func:`build_ir_container` here is a thin facade that wires the stage graph
(:func:`repro.pipeline.stages.build_ir_pipeline`), threads an
:class:`~repro.containers.store.ArtifactCache` through it so repeated builds
reuse preprocessed text and compiled IR modules, and packages the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import AppModel
from repro.buildsys import BuildConfiguration, BuildEnvironment
from repro.containers.image import Image
from repro.containers.store import ArtifactCache, BlobStore
from repro.pipeline.engine import PipelineDefinitionError, StageExecutionError
from repro.pipeline.stages import (
    DEDUP_STAGES,
    IR_FORMAT,
    TranslationUnit,
    build_ir_pipeline,
    config_name,
)
from repro.pipeline.stats import PipelineStats

__all__ = [
    "IR_FORMAT", "TranslationUnit", "PipelineStats", "IRContainerResult",
    "IRPipelineError", "build_ir_container", "config_name",
]


@dataclass
class IRContainerResult:
    """Everything the IR-container build produces."""

    image: Image
    stats: PipelineStats
    # IR digest -> canonical IR text (also stored in the image layers).
    ir_files: dict[str, str]
    # config name -> list of {target, source, ir, lowering flags}.
    manifests: dict[str, list[dict]]
    configurations: dict[str, BuildConfiguration]
    # In-process handle on the compiled modules (digest -> ir.Module); the
    # image layers carry the canonical text, this carries the live objects
    # the deployment step lowers.
    ir_modules: dict[str, object] = field(default_factory=dict)


class IRPipelineError(RuntimeError):
    pass


def build_ir_container(app: AppModel, configs: list[dict[str, str]],
                       env: BuildEnvironment | None = None,
                       store: BlobStore | None = None,
                       arch_family: str = "x86_64",
                       stages: tuple[str, ...] = DEDUP_STAGES,
                       compile_irs: bool = True,
                       cache: ArtifactCache | None = None,
                       max_workers: int | None = None) -> IRContainerResult:
    """Run the full IR-container pipeline over the given configurations.

    ``stages`` selects which dedup stages to register (benchmarks disable
    stages selectively for ablation); ``compile_irs=False`` runs only the
    dedup analysis, which is what the large-scale statistics benchmarks
    need. Passing a shared ``cache`` lets repeated builds (ISA sweeps,
    benchmarks rebuilding the same app) skip preprocessing and IR
    compilation entirely; ``max_workers`` bounds the per-TU thread pool.
    """
    if not configs:
        raise IRPipelineError("at least one build configuration is required")
    from repro.perf.model import default_build_environment
    env = env or default_build_environment()
    # Note: "store or BlobStore()" would discard an *empty* caller store
    # (BlobStore defines __len__), so test identity explicitly.
    if store is None:
        store = BlobStore()
    if cache is None:
        cache = ArtifactCache()
    stats = PipelineStats(configurations=len(configs))

    before = cache.snapshot()
    try:
        pipeline = build_ir_pipeline(stages, compile_irs=compile_irs)
        run = pipeline.run({
            "app": app, "configs": configs, "env": env, "store": store,
            "arch_family": arch_family, "stats": stats, "cache": cache,
            "max_workers": max_workers,
        })
    except PipelineDefinitionError as exc:
        raise IRPipelineError(str(exc)) from exc
    except StageExecutionError as exc:
        # Preserve the pre-refactor exception contract: domain errors
        # (ConfigureError, PreprocessorError, ...) propagate unchanged;
        # only engine-level dataflow violations become IRPipelineError.
        if exc.__cause__ is not None:
            raise exc.__cause__
        raise IRPipelineError(str(exc)) from exc

    _finalize_stats(stats, stages, run.stage_seconds, before, cache.snapshot())
    ctx = run.context
    return IRContainerResult(image=ctx.require("image"), stats=stats,
                             ir_files=ctx.require("ir_files"),
                             manifests=ctx.require("manifests"),
                             configurations=ctx.require("configurations"),
                             ir_modules=ctx.require("ir_modules"))


def _finalize_stats(stats: PipelineStats, stages: tuple[str, ...],
                    stage_seconds: dict[str, float],
                    before: dict[str, tuple[int, int]],
                    after: dict[str, tuple[int, int]]) -> None:
    """Fill the derived funnel counters and this build's cache deltas."""
    if "preprocess" in stages:
        if "openmp" not in stages:
            stats.after_openmp = stats.after_preprocessing
        stats.openmp_flag_dropped = stats.after_preprocessing - stats.after_openmp
        stats.vector_flag_dropped = stats.after_openmp - stats.final_irs
    else:
        stats.after_preprocessing = stats.final_irs
        stats.after_openmp = stats.final_irs
    stats.stage_seconds = dict(stage_seconds)
    for namespace, (hits, misses) in after.items():
        prev_hits, prev_misses = before.get(namespace, (0, 0))
        if hits - prev_hits or misses - prev_misses:
            stats.cache_hits[namespace] = hits - prev_hits
            stats.cache_misses[namespace] = misses - prev_misses
