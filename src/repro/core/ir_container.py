"""The XaaS IR-container pipeline (paper Sec. 4.2-4.3, Fig. 7).

Stages, exactly as the paper orders them:

1. **Configuration** — generate every build configuration in a containerized
   environment (fixed build-dir mount path), collect compile commands, and
   share translation units whose *full command* already coincides.
2. **Preprocessing** — run the preprocessor per TU and hash the canonical
   output; TUs with identical text can share an IR unless distinguished by
   remaining non-define flags.
3. **OpenMP detection** — a Clang-AST-style analysis drops the ``-fopenmp``
   flag from the comparison for files containing no OpenMP constructs.
4. **Vectorization delay** — ``-msimd``/``-O`` flags are stripped from the
   identity entirely: LLVM-style vectorizers run at IR level, so the ISA is
   bound at deployment, not at container build.

The surviving equivalence classes are compiled to IR once each and packed
into an OCI image (architecture ``llvm-ir``) together with the source tree,
per-configuration manifests, and specialization annotations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.apps.base import AppModel
from repro.buildsys import (
    BuildConfiguration,
    BuildEnvironment,
    configure,
    make_include_resolver,
)
from repro.compiler import Compiler
from repro.compiler.driver import classify_flags
from repro.compiler.parser import parse
from repro.compiler.passes import detect_openmp
from repro.containers.image import (
    ANNOTATION_IR_FORMAT,
    ANNOTATION_SPECIALIZATION,
    Image,
    ImageConfig,
    Layer,
    Platform,
)
from repro.containers.store import BlobStore
from repro.util.hashing import content_digest, stable_hash

IR_FORMAT = "xaas-region-ir-v1"


@dataclass(frozen=True)
class TranslationUnit:
    """One compilation task inside one configuration."""

    config: str
    target: str
    source: str
    flags: tuple[str, ...]


@dataclass
class PipelineStats:
    """Per-stage accounting for Hypothesis 1 (Sec. 6.4)."""

    configurations: int = 0
    total_tus: int = 0
    after_configuration: int = 0
    after_preprocessing: int = 0
    after_openmp: int = 0
    final_irs: int = 0
    incompatible_flag_fraction: float = 0.0
    openmp_flag_dropped: int = 0
    vector_flag_dropped: int = 0

    @property
    def reduction(self) -> float:
        """Fraction of TU compilations avoided (the paper's headline %)."""
        if self.total_tus == 0:
            return 0.0
        return 1.0 - self.final_irs / self.total_tus

    def validates_hypothesis1(self) -> bool:
        """T' < sum(T_i): strictly fewer IRs than translation units."""
        return self.final_irs < self.total_tus

    def summary(self) -> str:
        return (f"{self.configurations} configs, {self.total_tus} TUs -> "
                f"{self.final_irs} IRs ({self.reduction:.1%} reduction); "
                f"stages: config {self.after_configuration}, "
                f"preprocess {self.after_preprocessing}, "
                f"openmp {self.after_openmp}, vectorize {self.final_irs}")


@dataclass
class IRContainerResult:
    """Everything the IR-container build produces."""

    image: Image
    stats: PipelineStats
    # IR digest -> canonical IR text (also stored in the image layers).
    ir_files: dict[str, str]
    # config name -> list of {target, source, ir, lowering flags}.
    manifests: dict[str, list[dict]]
    configurations: dict[str, BuildConfiguration]
    # In-process handle on the compiled modules (digest -> ir.Module); the
    # image layers carry the canonical text, this carries the live objects
    # the deployment step lowers.
    ir_modules: dict[str, object] = field(default_factory=dict)


class IRPipelineError(RuntimeError):
    pass


def build_ir_container(app: AppModel, configs: list[dict[str, str]],
                       env: BuildEnvironment | None = None,
                       store: BlobStore | None = None,
                       arch_family: str = "x86_64",
                       stages: tuple[str, ...] = ("preprocess", "openmp", "vectorize"),
                       compile_irs: bool = True) -> IRContainerResult:
    """Run the full IR-container pipeline over the given configurations.

    ``stages`` allows ablation (benchmarks disable stages selectively);
    ``compile_irs=False`` runs only the dedup analysis, which is what the
    large-scale statistics benchmarks need.
    """
    if not configs:
        raise IRPipelineError("at least one build configuration is required")
    from repro.perf.model import default_build_environment
    env = env or default_build_environment()
    # Note: "store or BlobStore()" would discard an *empty* caller store
    # (BlobStore defines __len__), so test identity explicitly.
    if store is None:
        store = BlobStore()
    stats = PipelineStats(configurations=len(configs))

    # -- stage 1: configuration ------------------------------------------------
    configurations: dict[str, BuildConfiguration] = {}
    tus: list[TranslationUnit] = []
    for options in configs:
        name = _config_name(options)
        cfg = configure(app.tree, options, env=env, name=name,
                        build_dir="/xaas/build")
        configurations[name] = cfg
        for cmd in cfg.compile_commands:
            tus.append(TranslationUnit(name, cmd.target, cmd.source, cmd.flags))
    stats.total_tus = len(tus)

    # Configuration-stage identity: the full command *plus* the content of
    # the generated build directory (config headers) — two configurations
    # with identical command lines still differ if configure emitted
    # different headers into the (identically-mounted) build dir.
    gen_digest = {name: stable_hash(sorted(
        (p, content_digest(c)) for p, c in cfg.generated_files.items()))
        for name, cfg in configurations.items()}
    config_groups: dict[str, list[TranslationUnit]] = {}
    for tu in tus:
        key = stable_hash({"t": tu.target, "s": tu.source, "f": list(tu.flags),
                           "gen": gen_digest[tu.config]})
        config_groups.setdefault(key, []).append(tu)
    stats.after_configuration = len(config_groups)
    # Fraction of repeat TUs whose raw flags do not match any earlier config.
    per_task: dict[tuple[str, str], set[str]] = {}
    for tu in tus:
        per_task.setdefault((tu.target, tu.source), set()).add(
            stable_hash([list(tu.flags), gen_digest[tu.config]]))
    repeats = sum(len(v) - 1 for v in per_task.values() if len(v) > 1)
    total_repeat_slots = stats.total_tus - len(per_task)
    stats.incompatible_flag_fraction = (
        repeats / total_repeat_slots if total_repeat_slots else 0.0)

    # -- stages 2-4: preprocessing, OpenMP, vectorization delay ---------------------
    final_groups: dict[str, list[TranslationUnit]] = {}
    pp_cache: dict[str, tuple[str, bool]] = {}
    pre_keys: set[str] = set()
    omp_keys: set[str] = set()
    for tu in tus:
        cfg = configurations[tu.config]
        cls = classify_flags(list(tu.flags))
        pp_key = stable_hash({"s": tu.source, "cfg_gen": sorted(
            (p, content_digest(c)) for p, c in cfg.generated_files.items()),
            "fe": sorted(f for f in cls.frontend if f.startswith(("-D", "-U", "-I")))})
        if pp_key in pp_cache:
            text, has_omp = pp_cache[pp_key]
        else:
            compiler = Compiler(make_include_resolver(app.tree, cfg))
            pre = compiler.preprocess(app.tree.read(tu.source), list(tu.flags), tu.source)
            text = pre.text
            has_omp = pre.has_openmp_pragma and _ast_confirms_openmp(text)
            pp_cache[pp_key] = (text, has_omp)

        text_digest = content_digest(text)
        fopenmp = "-fopenmp" in cls.frontend
        if "preprocess" not in stages:
            # Ablation: no preprocessing stage => configuration-stage identity
            # (raw command + generated build-dir content).
            final_groups.setdefault(stable_hash(
                {"t": tu.target, "s": tu.source, "f": list(tu.flags),
                 "gen": gen_digest[tu.config]}),
                []).append(tu)
            continue

        pre_key = stable_hash({"s": tu.source, "pp": text_digest,
                               "omp": fopenmp,
                               "tgt": list(cls.target), "opt": list(cls.opt)})
        pre_keys.add(pre_key)

        omp_relevant = fopenmp and (has_omp or "openmp" not in stages)
        omp_key = stable_hash({"s": tu.source, "pp": text_digest,
                               "omp": omp_relevant,
                               "tgt": list(cls.target), "opt": list(cls.opt)})
        omp_keys.add(omp_key)

        if "vectorize" in stages:
            final_key = stable_hash({"s": tu.source, "pp": text_digest,
                                     "omp": omp_relevant,
                                     "family": _family_of(cls.target, arch_family)})
        else:
            final_key = omp_key
        final_groups.setdefault(final_key, []).append(tu)

    if "preprocess" in stages:
        stats.after_preprocessing = len(pre_keys)
        stats.after_openmp = len(omp_keys) if "openmp" in stages else len(pre_keys)
        stats.openmp_flag_dropped = stats.after_preprocessing - stats.after_openmp
        stats.vector_flag_dropped = stats.after_openmp - len(final_groups)
    else:
        stats.after_preprocessing = len(final_groups)
        stats.after_openmp = len(final_groups)
    stats.final_irs = len(final_groups)

    # -- IR build --------------------------------------------------------------------
    ir_files: dict[str, str] = {}
    ir_modules: dict[str, object] = {}
    group_to_ir: dict[str, str] = {}
    if compile_irs:
        for key, members in final_groups.items():
            rep = members[0]
            cfg = configurations[rep.config]
            compiler = Compiler(make_include_resolver(app.tree, cfg))
            frontend_flags = [f for f in rep.flags
                              if f.startswith(("-D", "-U", "-I")) or f == "-fopenmp"]
            result = compiler.compile_to_ir(app.tree.read(rep.source),
                                            frontend_flags, rep.source)
            text = result.module.render()
            digest = content_digest(text)
            ir_files[digest] = text
            ir_modules[digest] = result.module
            group_to_ir[key] = digest
    else:
        for key in final_groups:
            group_to_ir[key] = "sha256:" + "0" * 64

    # -- per-configuration manifests -----------------------------------------------------
    manifests: dict[str, list[dict]] = {name: [] for name in configurations}
    for key, members in final_groups.items():
        for tu in members:
            cls = classify_flags(list(tu.flags))
            manifests[tu.config].append({
                "target": tu.target, "source": tu.source,
                "ir": group_to_ir[key],
                "lowering_flags": list(cls.target) + list(cls.opt),
            })

    image = _assemble_image(app, configs, configurations, ir_files, manifests,
                            store, arch_family, stats)
    return IRContainerResult(image=image, stats=stats, ir_files=ir_files,
                             manifests=manifests, configurations=configurations,
                             ir_modules=ir_modules)


def _ast_confirms_openmp(preprocessed: str) -> bool:
    """The authoritative AST check; falls back to the textual scan on
    sources outside the C subset."""
    try:
        return detect_openmp(parse(preprocessed))
    except Exception:
        return True


def _family_of(target_flags: tuple[str, ...], default: str) -> str:
    for flag in target_flags:
        if flag.startswith("--target="):
            return flag.split("=", 1)[1]
    return default


def _config_name(options: dict[str, str]) -> str:
    return "-".join(f"{k.lower()}_{v.lower()}" for k, v in sorted(options.items())) \
        or "default"


def _assemble_image(app, configs, configurations, ir_files, manifests, store,
                    arch_family, stats) -> Image:
    source_layer = Layer({f"/xaas/src/{p}": c for p, c in app.tree.files.items()},
                         comment="application source (system-dependent files + install)")
    ir_layer = Layer({f"/xaas/ir/{d.split(':', 1)[1][:24]}.ir": text
                      for d, text in ir_files.items()},
                     comment="deduplicated IR files")
    manifest_layer = Layer(
        {f"/xaas/manifests/{name}.json": json.dumps(entries, sort_keys=True, indent=1)
         for name, entries in manifests.items()},
        comment="per-configuration install manifests")
    toolchain_layer = Layer({
        "/xaas/toolchain/clang": "clang-19 (repro simulated toolchain)",
        "/xaas/toolchain/llvm-link": "llvm-link (repro)",
    }, comment="LLVM toolchain for deployment-time lowering")
    config_layer = Layer({
        "/xaas/configs.json": json.dumps(configs, sort_keys=True, indent=1),
        "/xaas/stats.json": json.dumps({
            "total_tus": stats.total_tus, "final_irs": stats.final_irs,
            "reduction": stats.reduction}, sort_keys=True),
    }, comment="available build configurations")
    platform = Platform("llvm-ir", variant=arch_family)
    annotations = {
        ANNOTATION_IR_FORMAT: IR_FORMAT,
        ANNOTATION_SPECIALIZATION: json.dumps(
            {k: sorted({c.get(k, "") for c in configs})
             for k in sorted({key for c in configs for key in c})},
            sort_keys=True),
        "org.xaas.app": app.name,
    }
    return Image.build(
        [toolchain_layer, source_layer, ir_layer, manifest_layer, config_layer],
        ImageConfig(platform=platform, labels={"org.xaas.kind": "ir-container"}),
        store, annotations)
