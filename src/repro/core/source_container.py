"""XaaS source containers: build and deployment (paper Sec. 4.1, Fig. 6).

A source container ships the application source, an open-source MPI, and the
build toolchain. Deployment discovers system features on a compute node,
intersects them with the application's specialization points, lets the user
(or an operator-preference policy) select values, and builds a new image
derived from the source container — specialized for exactly that system.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.apps.base import AppModel
from repro.containers.hooks import MPI_LIB_PATH, format_lib
from repro.containers.image import (
    ANNOTATION_SPECIALIZATION,
    ANNOTATION_TARGET_SYSTEM,
    Image,
    ImageConfig,
    Layer,
    Platform,
)
from repro.containers.registry import Registry
from repro.containers.store import BlobStore
from repro.core.specialization import (
    default_selection,
    encode_specialization_annotation,
    intersect_specializations,
    specialization_tag,
)
from repro.discovery.extract import analyze_build_script
from repro.discovery.system import SystemSpec
from repro.perf.model import BuildArtifact, build_app


class SourceDeploymentError(RuntimeError):
    pass


@dataclass
class SourceContainer:
    """A published source container plus its discovery metadata."""

    image: Image
    app: AppModel
    specialization_report: dict
    repository: str = ""
    tag: str = ""


def build_source_image(app: AppModel, store: BlobStore,
                       arch: str = "amd64",
                       mpi_abi: str = "mpich") -> SourceContainer:
    """Create the distributable source container (one per toolchain+arch)."""
    report = analyze_build_script(app.tree)
    layers = [
        Layer({
            "/opt/toolchain/clang": "clang-19 (repro simulated toolchain)",
            "/opt/toolchain/cmake": "cmake 3.27 (repro mini-CMake)",
            MPI_LIB_PATH: format_lib("mpi", name="mpich", version="4.1", abi=mpi_abi),
        }, comment="dev toolchain + open-source MPI"),
        Layer({f"/xaas/src/{p}": c for p, c in app.tree.files.items()},
              comment="application source"),
        Layer({"/xaas/specialization.json": json.dumps(report, sort_keys=True, indent=1)},
              comment="discovered specialization points"),
    ]
    config = ImageConfig(platform=Platform(arch),
                         labels={"org.xaas.kind": "source-container",
                                 "org.xaas.app": app.name})
    annotations = {ANNOTATION_SPECIALIZATION: json.dumps(report, sort_keys=True)}
    image = Image.build(layers, config, store, annotations)
    return SourceContainer(image=image, app=app, specialization_report=report)


@dataclass
class DeployedSourceApp:
    """A deployed (system-specialized) source container."""

    image: Image
    artifact: BuildArtifact
    selection: dict[str, str]
    system: SystemSpec
    tag: str
    excluded: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


def deploy_source_container(container: SourceContainer, system: SystemSpec,
                            store: BlobStore,
                            selection: dict[str, str] | None = None,
                            extra_defines: tuple[str, ...] = (),
                            registry: Registry | None = None,
                            repository: str = "",
                            build_host: SystemSpec | None = None) -> DeployedSourceApp:
    """Deploy on a system: discover, intersect, select, build, (push).

    ``selection`` overrides the operator-preference defaults. When the
    target system cannot build containers (Ault23, Aurora in the paper), the
    build happens on ``build_host`` (a dev machine with Docker) but the
    feature discovery still reflects the *target* system.
    """
    notes: list[str] = []
    common = intersect_specializations(container.specialization_report, system)
    resolved = default_selection(common, system, container.app.name)
    if selection:
        resolved.update(selection)
    _validate_selection(resolved, common)

    if not system.supports_container_build:
        host = build_host
        if host is None:
            raise SourceDeploymentError(
                f"{system.name} does not support container building; "
                "provide a build_host (e.g. the dev machine with Docker)")
        notes.append(f"image built on {host.name} (no container build on {system.name})")

    artifact = build_app(container.app, resolved, build_system=system,
                         extra_defines=extra_defines, containerized=True,
                         label=f"xaas-source@{system.name}")

    tag = specialization_tag(resolved)
    binaries = {
        f"/xaas/install/bin/{container.app.name}":
            f"lowered for {artifact.simd_name} / {artifact.gpu_backend or 'cpu'}",
        "/xaas/install/build-info.json": json.dumps({
            "options": resolved, "simd": artifact.simd_name,
            "gpu": artifact.gpu_backend, "fft": artifact.fft_library,
        }, sort_keys=True, indent=1),
    }
    deployed_image = container.image.derive(
        [Layer(binaries, comment=f"specialized build for {system.name}")],
        store,
        annotations={
            ANNOTATION_SPECIALIZATION: encode_specialization_annotation(resolved),
            ANNOTATION_TARGET_SYSTEM: system.name,
        })
    if registry is not None and repository:
        registry.push(repository, tag, deployed_image, source_store=store)
        notes.append(f"pushed {repository}:{tag}")
    return DeployedSourceApp(image=deployed_image, artifact=artifact,
                             selection=resolved, system=system, tag=tag,
                             excluded=dict(common.excluded), notes=notes)


def _validate_selection(selection: dict[str, str], common) -> None:
    simd = selection.get("GMX_SIMD")
    if simd and common.simd and simd not in common.simd and simd != "None":
        raise SourceDeploymentError(
            f"selected SIMD level {simd!r} is not supported on this system; "
            f"viable: {sorted(common.simd)}")
    gpu = selection.get("GMX_GPU")
    if gpu and gpu != "OFF" and common.gpu_backends and gpu not in common.gpu_backends:
        raise SourceDeploymentError(
            f"selected GPU backend {gpu!r} unavailable; viable: "
            f"{sorted(common.gpu_backends)}")
