"""Specialization points and the feature-intersection checker (Fig. 4).

The deployment step intersects the application's discovered specialization
points (Appendix-B report) with the target system's detected features
(Fig. 4b) to present the user only viable options (Fig. 4c), then resolves a
concrete selection using operator preferences (Sec. 4.1: "preferring MKL on
Intel systems over other BLAS/FFT libraries").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.discovery.system import SystemSpec, best_simd_target, simd_label_to_target_name


@dataclass
class CommonSpecialization:
    """The intersection result: viable values per specialization point."""

    simd: dict[str, str] = field(default_factory=dict)        # level -> flag
    gpu_backends: dict[str, dict] = field(default_factory=dict)
    fft_libraries: dict[str, dict] = field(default_factory=dict)
    linalg_libraries: dict[str, dict] = field(default_factory=dict)
    parallel: dict[str, dict] = field(default_factory=dict)
    excluded: dict[str, str] = field(default_factory=dict)    # name -> reason

    def to_json(self) -> dict:
        return {
            "common_specialization": {
                "vectorization_flags": dict(self.simd),
                "gpu_backends": self.gpu_backends,
                "fft_libraries": self.fft_libraries,
                "linear_algebra_libraries": self.linalg_libraries,
                "parallel_programming_libraries": self.parallel,
            },
            "excluded": dict(self.excluded),
        }


def intersect_specializations(app_report: dict, system: SystemSpec) -> CommonSpecialization:
    """Intersect application specialization points with system features."""
    features = system.detect_features()
    common = CommonSpecialization()

    # SIMD: keep levels the CPU supports (and the right architecture family).
    cpu_targets = {simd_label_to_target_name(f) for f in system.cpu.features}
    cpu_targets.add("None")
    family = "aarch64" if system.architecture == "arm64" else "x86_64"
    from repro.compiler.target import ALL_TARGETS
    for level, entry in app_report.get("simd_vectorization", {}).items():
        target = ALL_TARGETS.get(simd_label_to_target_name(level))
        if target is None:
            common.excluded[level] = "unknown SIMD level"
            continue
        if target.family != family:
            common.excluded[level] = f"wrong architecture family for {system.name}"
            continue
        if target.vector_bits > 0 and target.name not in cpu_targets:
            common.excluded[level] = f"CPU {system.cpu.model} lacks {target.name}"
            continue
        common.simd[level] = entry.get("build_flag") or ""

    # GPU backends: must be exposed by a device, with driver version >= min.
    system_backends = features["GPU Backends"]
    for backend, entry in app_report.get("gpu_backends", {}).items():
        match = next((b for b in system_backends if b.lower() == backend.lower()), None)
        if match is None:
            common.excluded[backend] = f"no {backend}-capable device on {system.name}"
            continue
        minimum = entry.get("minimum_version")
        available = system_backends[match].get("version") or ""
        if minimum and available and _vt(available) < _vt(minimum):
            common.excluded[backend] = (
                f"{backend} {available} older than required {minimum}")
            continue
        common.gpu_backends[backend] = {
            "version": available or None,
            "flag": entry.get("build_flag"),
        }

    # Libraries: present in the (augmented) module list.
    modules = {m.lower(): v for m, v in features["Modules"].items()}
    for name, entry in app_report.get("FFT_libraries", {}).items():
        if entry.get("built-in") or _module_match(name, modules):
            common.fft_libraries[name] = {"flag": entry.get("build_flag")}
        else:
            common.excluded[name] = f"FFT library {name} not installed"
    for name, entry in app_report.get("linear_algebra_libraries", {}).items():
        if _module_match(name, modules) or name.lower().startswith("gmx_"):
            common.linalg_libraries[name] = {"flag": entry.get("build_flag")}
        else:
            common.excluded[name] = f"linear algebra library {name} not installed"

    # Parallel runtimes: OpenMP/thread-MPI always compile; MPI needs a host MPI.
    for name, entry in app_report.get("parallel_programming_libraries", {}).items():
        if name.upper() == "MPI" and system.mpi_info is None:
            common.excluded[name] = f"no MPI runtime on {system.name}"
            continue
        common.parallel[name] = {"flag": entry.get("build_flag")}
    return common


def _module_match(name: str, modules: dict[str, str]) -> bool:
    lowered = name.lower()
    aliases = {
        "fftw": ("fftw", "fftw3"), "fftw3": ("fftw", "fftw3"),
        "mkl": ("mkl", "onemkl", "oneapi"), "cufft": ("cufft", "cuda"),
        "blas": ("blas", "openblas", "mkl", "cray-libsci"),
        "lapack": ("lapack", "openblas", "mkl", "cray-libsci"),
    }.get(lowered, (lowered,))
    return any(any(alias in module for module in modules) for alias in aliases)


def default_selection(common: CommonSpecialization, system: SystemSpec,
                      app_name: str = "") -> dict[str, str]:
    """Operator-preference resolution of one concrete configuration.

    Policy (Sec. 4.1): highest supported SIMD level; a GPU backend if any
    (CUDA preferred); MKL on Intel machines, otherwise FFTW; MPI if the host
    has one, else thread-MPI.
    """
    selection: dict[str, str] = {}
    best = best_simd_target(system)
    if common.simd:
        names = {simd_label_to_target_name(k): k for k in common.simd}
        chosen = names.get(best.name) or next(iter(common.simd))
        selection["GMX_SIMD"] = chosen
    if common.gpu_backends:
        order = ["CUDA", "HIP", "SYCL", "OpenCL"]
        chosen = min(common.gpu_backends,
                     key=lambda b: order.index(b) if b in order else 99)
        selection["GMX_GPU"] = chosen
    if common.fft_libraries:
        prefer_mkl = system.cpu.vendor == "intel" and any(
            n.lower() == "mkl" for n in common.fft_libraries)
        if prefer_mkl:
            selection["GMX_FFT_LIBRARY"] = "mkl"
        else:
            fftw = next((n for n in common.fft_libraries if "fftw" in n.lower()), None)
            selection["GMX_FFT_LIBRARY"] = "fftw3" if fftw else next(iter(common.fft_libraries))
    if "OpenMP" in common.parallel:
        selection["GMX_OPENMP"] = "ON"
    if "MPI" in common.parallel:
        selection["GMX_MPI"] = "ON"
    return selection


def encode_specialization_annotation(selection: dict[str, str]) -> str:
    """Serialize a selection for OCI image annotations (Sec. 5.2)."""
    return json.dumps(dict(sorted(selection.items())), separators=(",", ":"))


def decode_specialization_annotation(text: str) -> dict[str, str]:
    value = json.loads(text)
    if not isinstance(value, dict):
        raise ValueError("specialization annotation must be a JSON object")
    return value


def specialization_tag(selection: dict[str, str]) -> str:
    """Image tag encoding the specialization points (Sec. 4.3.1)."""
    parts = []
    for key in sorted(selection):
        value = selection[key].replace("/", "-").replace(":", "-")
        short = key.lower().removeprefix("gmx_").removeprefix("ggml_").removeprefix("with_")
        parts.append(f"{short}-{value.lower()}")
    return "_".join(parts) or "default"


def _vt(version: str) -> tuple[int, ...]:
    out = []
    for piece in version.split("."):
        digits = "".join(ch for ch in piece if ch.isdigit())
        out.append(int(digits) if digits else 0)
    return tuple(out) or (0,)
