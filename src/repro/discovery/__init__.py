"""Discovery: system features, specialization points, LLM-assisted analysis.

Implements both halves of the paper's discovery story (Sec. 3.2, 4.1):

* **System discovery** (:mod:`~repro.discovery.system`) — machine catalog of
  the paper's testbeds plus feature detection with HPC-environment
  augmentation;
* **Specialization discovery** (:mod:`~repro.discovery.extract`,
  :mod:`~repro.discovery.llm`) — rule-based extraction of specialization
  points from build scripts, and simulated LLM analysts whose error profiles
  are calibrated to the paper's Table 4;
* **Scoring** (:mod:`~repro.discovery.scoring`) — the precision/recall/F1
  evaluation harness;
* **Schema** (:mod:`~repro.discovery.schema`) — the Appendix-B JSON schema
  enforced on analyst output.
"""

from repro.discovery.extract import analyze_build_script, categorize_option
from repro.discovery.llm import (
    MODEL_PROFILES,
    LLMResult,
    ModelProfile,
    SimulatedLLM,
    get_model,
)
from repro.discovery.schema import (
    SPECIALIZATION_SCHEMA,
    empty_report,
    is_valid_report,
    validate_report,
)
from repro.discovery.scoring import (
    AggregateScore,
    EvaluationRow,
    Score,
    report_items,
    score_report,
)
from repro.discovery.system import (
    SYSTEMS,
    CPUSpec,
    GPUSpec,
    SystemSpec,
    best_simd_target,
    get_system,
    simd_label_to_target_name,
)

__all__ = [
    "analyze_build_script", "categorize_option",
    "MODEL_PROFILES", "LLMResult", "ModelProfile", "SimulatedLLM", "get_model",
    "SPECIALIZATION_SCHEMA", "empty_report", "is_valid_report", "validate_report",
    "AggregateScore", "EvaluationRow", "Score", "report_items", "score_report",
    "SYSTEMS", "CPUSpec", "GPUSpec", "SystemSpec", "best_simd_target",
    "get_system", "simd_label_to_target_name",
]
