"""Rule-based specialization extraction from build scripts.

This is the deterministic analyst: it interprets the build script (through
:func:`repro.buildsys.declared_options`), categorizes every declared option
with name heuristics, and emits a schema-conformant specialization report.
Used two ways:

* as the **ground truth** for the Table 4 experiment (the paper's authors
  hand-prepared theirs; ours is derived from the same scripts the simulated
  LLMs read, so truth and input cannot drift apart);
* as the backbone of the simulated LLM models, which perturb its output with
  model-specific error processes (:mod:`repro.discovery.llm`).
"""

from __future__ import annotations

import re

from repro.buildsys import SourceTree, declared_options, parse_script
from repro.buildsys.interpreter import OptionSpec
from repro.discovery.schema import empty_report, validate_report

# Keyword tables for categorizing option/choice names.
_GPU_BACKENDS = ("cuda", "hip", "sycl", "opencl", "openacc", "metal",
                 "vulkan", "level_zero", "levelzero", "musa", "cann")
_FFT_NAMES = ("fftw", "fftw3", "mkl", "onemkl", "onemath", "cufft", "vkfft",
              "clfft", "rocfft", "fftpack", "pocketfft")
_LINALG_NAMES = ("blas", "lapack", "scalapack", "openblas", "blis", "mkl",
                 "onemkl", "cublas", "elpa", "libsci", "accelerate")
_PARALLEL_NAMES = ("mpi", "openmp", "pthread", "pthreads", "thread_mpi",
                   "threads", "tbb", "openacc")
_SIMD_HINTS = ("simd", "vectoriz", "avx", "sse", "neon", "sve", "altivec", "amx")


def categorize_option(spec: OptionSpec) -> str:
    """Heuristic category for a declared option (mirrors the LLM prompt's
    taxonomy: GPU backends, parallel libs, linear algebra, FFT, SIMD...)."""
    name = spec.name.lower()
    doc = spec.doc.lower()
    text = f"{name} {doc}"
    if any(h in text for h in _SIMD_HINTS):
        return "simd"
    if "fft" in text:
        return "fft"
    if re.search(r"\bgpu\b", text) or name.endswith("_gpu"):
        return "gpu"
    if any(re.search(rf"\b{re.escape(b)}\b", text) for b in _GPU_BACKENDS):
        return "gpu"
    if any(p in text for p in _PARALLEL_NAMES):
        return "parallel"
    if any(l in text for l in _LINALG_NAMES):
        return "linalg"
    if "internal" in text or "own_" in name or "build_own" in name:
        return "internal"
    return "other"


def _classify_choice(choice: str) -> str:
    c = choice.lower()
    if c in ("on", "off", "auto", "none"):
        return "control"
    if c in _GPU_BACKENDS:
        return "gpu"
    if c in _FFT_NAMES or "fft" in c:
        return "fft"
    if c in _LINALG_NAMES:
        return "linalg"
    if any(h in c for h in _SIMD_HINTS) or c in ("sse2", "sse4.1"):
        return "simd"
    return "other"


def analyze_build_script(tree: SourceTree, script: str = "CMakeLists.txt") -> dict:
    """Produce the specialization report (Fig. 4a style, Appendix-B schema)."""
    report = empty_report()
    options = declared_options(tree, script=script)
    commands = parse_script(tree.read(script), script)

    report["build_system"] = {"type": "cmake", "minimum_version": _min_cmake(commands)}
    for cmd in commands:
        if cmd.name == "find_package" and cmd.args:
            _record_find_package(report, cmd.args)

    for spec in options.values():
        category = categorize_option(spec)
        if spec.kind == "multichoice":
            _record_multichoice(report, spec, category)
        else:
            _record_bool(report, spec, category)

    # GROMACS-style: a gpu multichoice with non-OFF default means GPU builds
    # are supported even if off by default.
    if report["gpu_backends"]:
        flag = next(iter(report["gpu_backends"].values()))["build_flag"]
        base_flag = flag.split("=")[0] if flag else None
        report["gpu_build"] = {"value": True, "build_flag": base_flag}

    validate_report(report)
    return report


def _min_cmake(commands) -> str | None:
    for cmd in commands:
        if cmd.name == "cmake_minimum_required":
            for i, arg in enumerate(cmd.args):
                if arg.upper() == "VERSION" and i + 1 < len(cmd.args):
                    return cmd.args[i + 1]
    return None


def _record_find_package(report: dict, args: tuple[str, ...]) -> None:
    name = args[0]
    version = None
    if len(args) > 1 and re.fullmatch(r"[\d.]+", args[1]):
        version = args[1]
    lowered = name.lower()
    if lowered in _GPU_BACKENDS:
        # Deduplicate case-insensitively: the multichoice may have recorded
        # this backend already (e.g. "OpenCL" vs find_package(OpenCL)).
        if any(existing.lower() == lowered for existing in report["gpu_backends"]):
            return
        report["gpu_backends"].setdefault(name.upper(), {
            "used_as_default": False, "build_flag": None, "minimum_version": version})
    elif lowered in _PARALLEL_NAMES:
        report["parallel_programming_libraries"].setdefault(name.upper(), {
            "used_as_default": False, "build_flag": None, "minimum_version": version})
    elif lowered in _LINALG_NAMES:
        report["linear_algebra_libraries"].setdefault(name, {
            "used_as_default": False, "build_flag": None, "condition": None})
    elif "fft" in lowered:
        report["FFT_libraries"].setdefault(name, {
            "used_as_default": False, "built-in": False,
            "dependencies": None, "build_flag": None})
    else:
        report["other_external_libraries"].setdefault(name, {
            "version": version, "used_as_default": False,
            "conditions": None, "build_flag": None})


def _record_multichoice(report: dict, spec: OptionSpec, category: str) -> None:
    for choice in spec.choices:
        kind = _classify_choice(choice)
        flag = f"-D{spec.name}={choice}"
        default = choice == spec.default
        if category == "simd" or kind == "simd":
            if kind == "control" and choice.lower() != "none":
                continue
            report["simd_vectorization"][choice] = {
                "build_flag": flag, "default": default}
        elif category == "gpu" or kind == "gpu":
            if kind == "control":
                continue
            report["gpu_backends"][choice] = {
                "used_as_default": default, "build_flag": flag,
                "minimum_version": None}
        elif category == "fft" or kind == "fft":
            if kind == "control":
                continue
            report["FFT_libraries"][choice] = {
                "used_as_default": default,
                "built-in": "built-in" in choice.lower() or "pack" in choice.lower(),
                "dependencies": None, "build_flag": flag}
        elif category == "linalg" or kind == "linalg":
            if kind == "control":
                continue
            report["linear_algebra_libraries"][choice] = {
                "used_as_default": default, "build_flag": flag, "condition": None}
        else:
            if kind == "control":
                continue
            report["other_external_libraries"][choice] = {
                "version": None, "used_as_default": default,
                "conditions": None, "build_flag": flag}


def _record_bool(report: dict, spec: OptionSpec, category: str) -> None:
    default_on = spec.default.upper() in ("ON", "TRUE", "1", "YES")
    flag = f"-D{spec.name}"
    entry = {"used_as_default": default_on, "build_flag": flag, "minimum_version": None}
    name = spec.name
    if category == "parallel":
        report["parallel_programming_libraries"][_parallel_name(name)] = entry
    elif category == "gpu":
        report["gpu_build"] = {"value": True, "build_flag": flag}
    elif category == "fft":
        report["FFT_libraries"][name] = {
            "used_as_default": default_on, "built-in": "own" in name.lower(),
            "dependencies": None, "build_flag": flag}
    elif category == "linalg":
        report["linear_algebra_libraries"][name] = {
            "used_as_default": default_on, "build_flag": flag, "condition": None}
    elif category == "simd":
        report["simd_vectorization"][name] = {"build_flag": flag, "default": default_on}
    elif category == "internal":
        report["internal_build"][name] = {"build_flag": flag}
    else:
        report["optimization_build_flags"].append(flag)


def _parallel_name(option_name: str) -> str:
    lowered = option_name.lower()
    for canon in ("thread_mpi", "openmp", "openacc", "mpi", "pthread", "tbb"):
        if canon in lowered:
            return {"thread_mpi": "Threads-MPI", "openmp": "OpenMP", "mpi": "MPI",
                    "pthread": "Pthreads", "tbb": "TBB", "openacc": "OpenACC"}[canon]
    return option_name
