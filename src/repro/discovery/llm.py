"""Simulated LLM analysts for specialization discovery (Table 4 substitution).

The paper sends build scripts plus an in-context-learning prompt (Appendix A)
to commercial models and scores the structured JSON they return. Offline, we
replace the remote model with a *noise process over the rule-based
extraction*: each simulated model reads the same build script, derives the
exact item set, then drops/hallucinates/mangles items according to an
empirically-shaped error profile fit to the paper's Table 4 (per-model
precision/recall distributions, token counts, latency, pricing).

What stays real: the prompt assembly and token accounting, the JSON-schema
validation of outputs, the scoring harness, and the qualitative model
ordering (Gemini ≻ Sonnet-3.7/o3-mini ≻ GPT-4o ≻ Claude-3.5). What is
synthetic: the error process itself — documented per profile below.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.buildsys import SourceTree
from repro.discovery.extract import analyze_build_script
from repro.discovery.schema import DICT_CATEGORIES, empty_report, is_valid_report
from repro.util.rng import DeterministicRNG
from repro.util.tokens import count_tokens

PROMPT_PREAMBLE_TOKENS = 1900  # the Appendix-A instructions + schema
IN_CONTEXT_EXAMPLE_TOKENS = 2600  # GROMACS/QE/Kokkos few-shot examples


@dataclass(frozen=True)
class ModelProfile:
    """Error/cost/latency profile of one simulated model.

    ``recall``/``precision`` pairs are (mean, spread) of per-run truncated
    normals; ``bad_run_prob`` triggers degenerate runs where the model
    returns a subset-only answer (observed for o3-mini and GPT-4o: F1 range
    0.55–0.97 across repetitions).
    """

    name: str
    vendor: str  # openai | anthropic | google
    price_in_per_mtok: float
    price_out_per_mtok: float
    tokens_out_mean: float
    tokens_out_std: float
    latency_mean_s: float
    latency_std_s: float
    recall: tuple[float, float]
    precision: tuple[float, float]
    bad_run_prob: float = 0.0
    bad_recall_factor: float = 0.6
    bad_precision_factor: float = 0.6
    # Formatting discipline: probability an emitted flag loses its -D prefix
    # or swaps hyphens/underscores (hurts only un-normalized scoring).
    format_mangle_rate: float = 0.02
    # Probability an FFT item is misfiled under linear algebra (the GPT-4o /
    # Gemini-1.5 failure the paper calls out).
    fft_linalg_confusion: float = 0.0
    # Accuracy penalty without in-context examples (llama.cpp generalization).
    generalization_recall_penalty: float = 0.15
    generalization_precision_penalty: float = 0.10
    latency_heavy_tail: bool = False  # Claude-3.5-Sonnet's 126 ± 335 s


# Profiles calibrated against Table 4 (GROMACS, 10 repetitions).
MODEL_PROFILES: dict[str, ModelProfile] = {p.name: p for p in [
    ModelProfile(
        name="gemini-flash-1.5-exp", vendor="google",
        price_in_per_mtok=0.075, price_out_per_mtok=0.30,
        tokens_out_mean=2333.5, tokens_out_std=147.6,
        latency_mean_s=16.40, latency_std_s=1.00,
        recall=(0.905, 0.030), precision=(0.895, 0.040),
        fft_linalg_confusion=0.05),
    ModelProfile(
        name="gemini-flash-2-exp", vendor="google",
        price_in_per_mtok=0.10, price_out_per_mtok=0.40,
        tokens_out_mean=2610.8, tokens_out_std=189.4,
        latency_mean_s=11.96, latency_std_s=0.86,
        recall=(0.970, 0.035), precision=(0.972, 0.035)),
    ModelProfile(
        name="claude-3-5-haiku-20241022", vendor="anthropic",
        price_in_per_mtok=0.80, price_out_per_mtok=4.00,
        tokens_out_mean=1568.9, tokens_out_std=174.2,
        latency_mean_s=20.09, latency_std_s=1.96,
        recall=(0.545, 0.040), precision=(0.860, 0.030)),
    ModelProfile(
        name="claude-3-5-sonnet-20241022", vendor="anthropic",
        price_in_per_mtok=3.00, price_out_per_mtok=15.00,
        tokens_out_mean=1528.7, tokens_out_std=39.2,
        latency_mean_s=126.18, latency_std_s=335.31,
        recall=(0.548, 0.015), precision=(0.878, 0.005),
        latency_heavy_tail=True),
    ModelProfile(
        name="claude-3-7-sonnet-20250219", vendor="anthropic",
        price_in_per_mtok=3.00, price_out_per_mtok=15.00,
        tokens_out_mean=3122.7, tokens_out_std=155.1,
        latency_mean_s=50.29, latency_std_s=21.67,
        recall=(0.900, 0.010), precision=(0.875, 0.025)),
    ModelProfile(
        name="o3-mini-2025-01-31", vendor="openai",
        price_in_per_mtok=1.10, price_out_per_mtok=4.40,
        tokens_out_mean=8003.9, tokens_out_std=1160.8,
        latency_mean_s=108.40, latency_std_s=40.02,
        recall=(0.930, 0.040), precision=(0.915, 0.040),
        bad_run_prob=0.12, bad_recall_factor=0.60, bad_precision_factor=0.60),
    ModelProfile(
        name="gpt-4o-2024-08-06", vendor="openai",
        price_in_per_mtok=2.50, price_out_per_mtok=10.00,
        tokens_out_mean=1540.0, tokens_out_std=146.1,
        latency_mean_s=26.06, latency_std_s=6.96,
        recall=(0.745, 0.085), precision=(0.900, 0.060),
        bad_run_prob=0.12, bad_recall_factor=0.75, bad_precision_factor=0.58,
        fft_linalg_confusion=0.08, format_mangle_rate=0.06),
]}


@dataclass
class LLMResult:
    """One simulated invocation: the report plus telemetry."""

    model: str
    report: dict
    tokens_in: int
    tokens_out: int
    latency_s: float
    cost_usd: float
    schema_valid: bool
    run_id: int


@dataclass
class SimulatedLLM:
    """One analyst instance. Deterministic given (profile, seed)."""

    profile: ModelProfile
    seed: str = "xaas"

    def analyze(self, tree: SourceTree, script: str = "CMakeLists.txt",
                run_id: int = 0, in_context_examples: bool = True,
                extra_scripts: tuple[str, ...] = ()) -> LLMResult:
        """Simulate one model invocation over the project's build script(s)."""
        rng = DeterministicRNG(f"{self.seed}/{self.profile.name}/{script}/{run_id}")
        truth = analyze_build_script(tree, script)
        for extra in extra_scripts:
            extra_truth = analyze_build_script(tree, extra)
            _merge_reports(truth, extra_truth)

        recall_mu, recall_sd = self.profile.recall
        prec_mu, prec_sd = self.profile.precision
        if not in_context_examples:
            recall_mu = max(0.05, recall_mu - self.profile.generalization_recall_penalty)
            prec_mu = max(0.05, prec_mu - self.profile.generalization_precision_penalty)
            recall_sd *= 1.8
            prec_sd *= 1.8
        if rng.bernoulli(self.profile.bad_run_prob):
            recall_mu *= self.profile.bad_recall_factor
            prec_mu *= self.profile.bad_precision_factor
        run_recall = _clip(rng.normal(recall_mu, recall_sd))
        run_precision = _clip(rng.normal(prec_mu, prec_sd))

        report = self._perturb(truth, run_recall, run_precision, rng,
                               in_context_examples)

        text = tree.read(script) + "".join(tree.read(s) for s in extra_scripts)
        tokens_in = (count_tokens(text, self.profile.vendor)
                     + PROMPT_PREAMBLE_TOKENS
                     + (IN_CONTEXT_EXAMPLE_TOKENS if in_context_examples else 0))
        tokens_out = max(200, int(rng.normal(self.profile.tokens_out_mean,
                                             self.profile.tokens_out_std)))
        latency = self._latency(rng)
        cost = (tokens_in * self.profile.price_in_per_mtok
                + tokens_out * self.profile.price_out_per_mtok) / 1e6
        return LLMResult(
            model=self.profile.name, report=report, tokens_in=tokens_in,
            tokens_out=tokens_out, latency_s=latency, cost_usd=cost,
            schema_valid=is_valid_report(report), run_id=run_id)

    # -- error process -------------------------------------------------------

    def _perturb(self, truth: dict, recall: float, precision: float,
                 rng: DeterministicRNG, in_context: bool) -> dict:
        report = copy.deepcopy(truth)
        kept = 0
        # Drop items to hit the sampled recall.
        for category in DICT_CATEGORIES:
            for name in list(report.get(category, {})):
                if rng.bernoulli(1.0 - recall):
                    del report[category][name]
                else:
                    kept += 1
        for category in ("compiler_flags", "optimization_build_flags", "architectures"):
            keep_list = []
            for flag in report.get(category, []):
                if not rng.bernoulli(1.0 - recall):
                    keep_list.append(flag)
                    kept += 1
            report[category] = keep_list

        # FFT <-> linear-algebra confusion (misfiled items are both FP and FN).
        if self.profile.fft_linalg_confusion > 0:
            for name in list(report.get("FFT_libraries", {})):
                if rng.bernoulli(self.profile.fft_linalg_confusion):
                    entry = report["FFT_libraries"].pop(name)
                    report["linear_algebra_libraries"][name] = {
                        "used_as_default": entry.get("used_as_default", False),
                        "build_flag": entry.get("build_flag"), "condition": None}

        # Formatting mangle: lose -D prefixes / swap separators.
        mangle = self.profile.format_mangle_rate * (1.0 if in_context else 2.5)
        for category in DICT_CATEGORIES:
            for name, entry in report.get(category, {}).items():
                flag = entry.get("build_flag")
                if flag and rng.bernoulli(mangle):
                    entry["build_flag"] = _mangle_flag(flag, rng)

        # Hallucinate false positives to hit the sampled precision.
        want_fp = int(round(kept * (1.0 - precision) / max(precision, 1e-6)))
        for i in range(want_fp):
            fake = _FAKE_ITEMS[rng.integers(0, len(_FAKE_ITEMS))]
            category, name, flag = fake
            if category in ("compiler_flags", "optimization_build_flags", "architectures"):
                report.setdefault(category, []).append(f"{flag}_{i}")
                continue
            entry: dict = {"used_as_default": False, "build_flag": f"{flag}_{i}"}
            if category == "FFT_libraries":
                entry.update({"built-in": False, "dependencies": None})
            if category == "linear_algebra_libraries":
                entry["condition"] = None
            if category == "other_external_libraries":
                entry.update({"version": None, "conditions": None})
            if category == "simd_vectorization":
                entry = {"build_flag": f"{flag}_{i}", "default": False}
            report.setdefault(category, {})[f"{name}_{i}"] = entry
        return report

    def _latency(self, rng: DeterministicRNG) -> float:
        if self.profile.latency_heavy_tail:
            # Lognormal tuned so mean/std land near the observed 126 ± 335 s.
            import math
            mu_target = self.profile.latency_mean_s
            sd_target = self.profile.latency_std_s
            sigma2 = math.log(1 + (sd_target / mu_target) ** 2)
            mu = math.log(mu_target) - sigma2 / 2
            return max(2.0, rng.lognormal(mu, sigma2 ** 0.5))
        return max(1.0, rng.normal(self.profile.latency_mean_s,
                                   self.profile.latency_std_s))


_FAKE_ITEMS = [
    ("gpu_backends", "METAL", "-DENABLE_METAL"),
    ("parallel_programming_libraries", "CILK", "-DUSE_CILK"),
    ("linear_algebra_libraries", "EIGEN", "-DUSE_EIGEN"),
    ("FFT_libraries", "KISSFFT", "-DUSE_KISSFFT"),
    ("other_external_libraries", "ZLIB", "-DWITH_ZLIB"),
    ("simd_vectorization", "MMX", "-DSIMD=MMX"),
    ("other_external_libraries", "BOOST", "-DWITH_BOOST"),
    ("optimization_build_flags", "TURBO", "-DENABLE_TURBO_MODE"),
]


def _mangle_flag(flag: str, rng: DeterministicRNG) -> str:
    choice = rng.integers(0, 3)
    if choice == 0 and flag.startswith("-D"):
        return flag[2:]  # missing -D prefix
    if choice == 1:
        return flag.replace("_", "-")
    return flag.replace("-D", "-D ").strip()


def _merge_reports(base: dict, extra: dict) -> None:
    for category in DICT_CATEGORIES:
        base.setdefault(category, {}).update(extra.get(category, {}))
    for category in ("compiler_flags", "optimization_build_flags", "architectures"):
        seen = set(base.get(category, []))
        for item in extra.get(category, []):
            if item not in seen:
                base.setdefault(category, []).append(item)
    if extra.get("gpu_build", {}).get("value"):
        base["gpu_build"] = extra["gpu_build"]


def _clip(value: float, low: float = 0.02, high: float = 1.0) -> float:
    return max(low, min(high, value))


def get_model(name: str, seed: str = "xaas") -> SimulatedLLM:
    try:
        return SimulatedLLM(MODEL_PROFILES[name], seed)
    except KeyError:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_PROFILES)}") from None
