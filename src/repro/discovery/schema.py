"""The specialization-points JSON schema (paper Appendix B).

The paper supplies this draft-07 schema to the LLM to force structured
output; we use it both to validate simulated-LLM results and to validate the
rule-based extraction the ground truth comes from.
"""

from __future__ import annotations

from repro.util.json_schema import SchemaError, validate_schema


def _feature_entry(extra_props: dict | None = None, required: list | None = None) -> dict:
    props = {
        "used_as_default": {"type": "boolean"},
        "build_flag": {"type": ["string", "null"]},
        "minimum_version": {"type": ["string", "null"]},
    }
    props.update(extra_props or {})
    return {
        "type": "object",
        "additionalProperties": {
            "type": "object",
            "properties": props,
            "required": required or ["used_as_default", "build_flag"],
        },
    }


SPECIALIZATION_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "properties": {
        "gpu_build": {
            "type": "object",
            "properties": {
                "value": {"type": "boolean"},
                "build_flag": {"type": ["string", "null"]},
            },
            "required": ["value", "build_flag"],
        },
        "gpu_backends": _feature_entry(),
        "parallel_programming_libraries": _feature_entry(),
        "linear_algebra_libraries": _feature_entry(
            {"condition": {"type": ["string", "null"]}}),
        "FFT_libraries": _feature_entry({
            "built-in": {"type": "boolean"},
            "dependencies": {"type": ["string", "null"]},
        }),
        "other_external_libraries": _feature_entry({
            "version": {"type": ["string", "null"]},
            "conditions": {"type": ["string", "null"]},
        }),
        "compiler_flags": {"type": "array", "items": {"type": "string"}},
        "optimization_build_flags": {"type": "array", "items": {"type": "string"}},
        "compilers": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "properties": {"minimum_version": {"type": ["string", "null"]}},
                "required": ["minimum_version"],
            },
        },
        "architectures": {"type": "array", "items": {"type": "string"}},
        "simd_vectorization": _feature_entry(
            {"default": {"type": "boolean"}}, required=["build_flag"]),
        "build_system": {
            "type": "object",
            "properties": {
                "type": {"type": "string", "enum": ["cmake", "make", "undetermined"]},
                "minimum_version": {"type": ["string", "null"]},
            },
            "required": ["type"],
        },
        "internal_build": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "properties": {"build_flag": {"type": ["string", "null"]}},
                "required": ["build_flag"],
            },
        },
    },
    "required": [
        "gpu_build", "gpu_backends", "parallel_programming_libraries",
        "linear_algebra_libraries", "FFT_libraries", "other_external_libraries",
        "compiler_flags", "optimization_build_flags", "compilers",
        "architectures", "simd_vectorization", "build_system", "internal_build",
    ],
    "additionalProperties": False,
}

# Categories whose members are counted as individual specialization items by
# the Table 4 scoring harness.
DICT_CATEGORIES = (
    "gpu_backends", "parallel_programming_libraries",
    "linear_algebra_libraries", "FFT_libraries", "other_external_libraries",
    "simd_vectorization", "compilers", "internal_build",
)
LIST_CATEGORIES = ("compiler_flags", "optimization_build_flags", "architectures")


def empty_report() -> dict:
    """A schema-valid report with nothing discovered."""
    return {
        "gpu_build": {"value": False, "build_flag": None},
        "gpu_backends": {},
        "parallel_programming_libraries": {},
        "linear_algebra_libraries": {},
        "FFT_libraries": {},
        "other_external_libraries": {},
        "compiler_flags": [],
        "optimization_build_flags": [],
        "compilers": {},
        "architectures": [],
        "simd_vectorization": {},
        "build_system": {"type": "undetermined", "minimum_version": None},
        "internal_build": {},
    }


def validate_report(report: dict) -> None:
    """Raise SchemaError unless ``report`` conforms to the Appendix-B schema."""
    validate_schema(report, SPECIALIZATION_SCHEMA)


def is_valid_report(report: dict) -> bool:
    try:
        validate_report(report)
    except SchemaError:
        return False
    return True
