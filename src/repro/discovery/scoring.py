"""Scoring harness for specialization discovery (paper Table 4, Sec. 6.2).

The paper normalizes the structure of specialization points, compares the
LLM's findings against a ground truth, counts true/false positives and
negatives, and reports precision, recall and F1 aggregated over repeated
runs. This module is that harness — it is exercised identically whether the
analyst is the rule-based extractor, a simulated LLM, or (in the original
work) a remote model.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.discovery.schema import DICT_CATEGORIES, LIST_CATEGORIES


def _normalize_name(name: str) -> str:
    return name.lower().replace("-", "_").replace(" ", "_")


def _normalize_flag(flag: str | None) -> str:
    """Canonical flag form: ensure -D prefix, unify hyphen/underscore."""
    if not flag:
        return ""
    flag = flag.strip()
    if not flag.startswith("-"):
        flag = "-D" + flag
    name, eq, value = flag.partition("=")
    return _normalize_name(name.lstrip("-D")) + (eq + value if eq else "")


def report_items(report: dict, normalize: bool = True) -> set[tuple[str, str]]:
    """Flatten a specialization report into comparable (category, item) pairs.

    With ``normalize=False`` the raw names/flags are compared verbatim —
    which is how minor formatting discrepancies (hyphen vs underscore,
    missing ``-D``) hurt un-normalized scores in the paper's llama.cpp
    generalization experiment.
    """
    items: set[tuple[str, str]] = set()
    norm_name = _normalize_name if normalize else (lambda s: s)
    norm_flag = _normalize_flag if normalize else (lambda s: s or "")
    for category in DICT_CATEGORIES:
        for name, entry in report.get(category, {}).items():
            flag = entry.get("build_flag") if isinstance(entry, dict) else None
            items.add((category, f"{norm_name(name)}|{norm_flag(flag)}"))
    for category in LIST_CATEGORIES:
        for flag in report.get(category, []):
            items.add((category, norm_flag(flag) if normalize else flag))
    gpu = report.get("gpu_build", {})
    if isinstance(gpu, dict) and gpu.get("value"):
        items.add(("gpu_build", norm_flag(gpu.get("build_flag"))))
    bs = report.get("build_system", {})
    if isinstance(bs, dict) and bs.get("type") and bs["type"] != "undetermined":
        items.add(("build_system", bs["type"]))
    return items


@dataclass(frozen=True)
class Score:
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_report(predicted: dict, truth: dict, normalize: bool = True) -> Score:
    """Compare a predicted report against the ground truth."""
    pred_items = report_items(predicted, normalize)
    true_items = report_items(truth, normalize)
    tp = len(pred_items & true_items)
    return Score(tp, len(pred_items - true_items), len(true_items - pred_items))


@dataclass
class AggregateScore:
    """Min/median/max over repeated runs, as Table 4 reports."""

    f1: tuple[float, float, float]
    precision: tuple[float, float, float]
    recall: tuple[float, float, float]
    runs: int

    @staticmethod
    def from_scores(scores: list[Score]) -> "AggregateScore":
        if not scores:
            raise ValueError("no scores to aggregate")

        def mmm(values: list[float]) -> tuple[float, float, float]:
            return (min(values), statistics.median(values), max(values))

        return AggregateScore(
            f1=mmm([s.f1 for s in scores]),
            precision=mmm([s.precision for s in scores]),
            recall=mmm([s.recall for s in scores]),
            runs=len(scores),
        )


@dataclass
class EvaluationRow:
    """One Table 4 row: a model's cost/latency/accuracy on one project."""

    model: str
    tokens_in_mean: float
    tokens_in_std: float
    tokens_out_mean: float
    tokens_out_std: float
    latency_mean: float
    latency_std: float
    cost_usd: float
    scores: AggregateScore
    extra: dict = field(default_factory=dict)

    def format_row(self) -> str:
        f = self.scores.f1
        p = self.scores.precision
        r = self.scores.recall
        return (f"{self.model:<28} {self.tokens_in_mean:>7.0f} ± {self.tokens_in_std:<5.0f}"
                f" {self.tokens_out_mean:>7.1f} ± {self.tokens_out_std:<6.1f}"
                f" {self.latency_mean:>7.2f} ± {self.latency_std:<7.2f}"
                f" {self.cost_usd:>6.3f}"
                f"  {f[0]:.3f}/{f[1]:.3f}/{f[2]:.3f}"
                f"  {p[0]:.3f}/{p[1]:.3f}/{p[2]:.3f}"
                f"  {r[0]:.3f}/{r[1]:.3f}/{r[2]:.3f}")
