"""System discovery: machine specifications and feature detection.

Models the paper's testbeds (Sec. 6.1) and the system-discovery step of
source-container deployment (Sec. 4.1, Fig. 6): detect CPU features,
accelerators and the development environment, then *augment* the raw
detection with knowledge of standard HPC environments (CUDA present =>
assume cuFFT, ROCm => rocFFT).

A :class:`SystemSpec` also satisfies the host protocol of the container
hooks (``mpi``, ``gpu``, ``fabric_provider`` attributes) and supplies the
:class:`~repro.buildsys.interpreter.BuildEnvironment` used when configuring
on that machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buildsys.interpreter import BuildEnvironment


@dataclass(frozen=True)
class GPUSpec:
    vendor: str           # nvidia | amd | intel
    model: str
    driver_cuda: str = ""  # CUDA version the driver supports (nvidia)
    compute_capability: str = ""
    backends: tuple[str, ...] = ()  # CUDA / OpenCL / SYCL / HIP / LevelZero
    memory_gb: int = 16

    def to_json(self) -> dict:
        return {
            "vendor": self.vendor, "model": self.model,
            "driver_cuda": self.driver_cuda,
            "compute_capability": self.compute_capability,
            "backends": list(self.backends), "memory_gb": self.memory_gb,
        }


@dataclass(frozen=True)
class CPUSpec:
    model: str
    architecture: str      # amd64 | arm64
    vendor: str            # intel | amd | arm
    sockets: int
    cores_per_socket: int
    features: tuple[str, ...]  # vectorization labels, archspec-style
    base_ghz: float = 2.4

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def to_json(self) -> dict:
        return {
            "model": self.model, "architecture": self.architecture,
            "vendor": self.vendor, "sockets": self.sockets,
            "cores_per_socket": self.cores_per_socket,
            "vectorization": list(self.features), "base_ghz": self.base_ghz,
        }


@dataclass(frozen=True)
class SystemSpec:
    """A full machine description, as system discovery would produce."""

    name: str
    cpu: CPUSpec
    gpus: tuple[GPUSpec, ...] = ()
    mpi_info: dict | None = None              # {"name", "version", "abi"}
    fabric: str | None = None                 # libfabric provider name
    modules: dict[str, str] = field(default_factory=dict)  # package -> version
    container_runtime: str = "docker"
    supports_container_build: bool = True
    # Key into the perf-model machine table (repro.perf.machine).
    perf_key: str = ""

    # -- hook protocol -------------------------------------------------------

    @property
    def architecture(self) -> str:
        return self.cpu.architecture

    @property
    def mpi(self) -> dict | None:
        return self.mpi_info

    @property
    def gpu(self) -> dict | None:
        if not self.gpus:
            return None
        return self.gpus[0].to_json()

    @property
    def fabric_provider(self) -> str | None:
        return self.fabric

    # -- discovery -----------------------------------------------------------

    def build_environment(self) -> BuildEnvironment:
        """Packages visible to find_package() on this machine."""
        packages = dict(self.modules)
        for gpu in self.gpus:
            if "CUDA" in gpu.backends and gpu.driver_cuda:
                packages.setdefault("CUDA", gpu.driver_cuda)
            if "HIP" in gpu.backends:
                packages.setdefault("HIP", packages.get("ROCm", "5.4.3"))
            if "SYCL" in gpu.backends:
                packages.setdefault("SYCL", "2024.2")
            if "OpenCL" in gpu.backends:
                packages.setdefault("OpenCL", "3.0")
        if self.mpi_info:
            packages.setdefault("MPI", self.mpi_info.get("version", "4.0"))
        return BuildEnvironment(packages=packages)

    def detect_features(self) -> dict:
        """The 'System Features' JSON of Fig. 4b, with HPC augmentation."""
        features: dict = {
            "CPU Info": self.cpu.to_json(),
            "GPU Backends": {},
            "MPI": self.mpi_info or {},
            "Network": {"provider": self.fabric or "tcp"},
            "Modules": dict(self.modules),
        }
        for gpu in self.gpus:
            for backend in gpu.backends:
                entry = features["GPU Backends"].setdefault(backend, {
                    "devices": [], "version": "",
                })
                entry["devices"].append(gpu.model)
                if backend == "CUDA":
                    entry["version"] = gpu.driver_cuda
        # Augmentation (Sec. 4.1): assume vendor math libraries follow the
        # GPU runtime even when not explicitly detected as modules.
        augmented = dict(features["Modules"])
        if "CUDA" in features["GPU Backends"]:
            augmented.setdefault("cuFFT", features["GPU Backends"]["CUDA"]["version"])
            augmented.setdefault("cuBLAS", features["GPU Backends"]["CUDA"]["version"])
        if "HIP" in features["GPU Backends"]:
            augmented.setdefault("rocFFT", "5.4")
        if "SYCL" in features["GPU Backends"]:
            augmented.setdefault("oneMKL", "2024.2")
        features["Modules"] = augmented
        return features


# -- testbed catalog (paper Sec. 6.1) -------------------------------------------

def ault23() -> SystemSpec:
    """CSCS Ault node 23: Intel Xeon Gold 6130 + NVIDIA V100, Sarus."""
    return SystemSpec(
        name="ault23",
        cpu=CPUSpec("Intel Xeon Gold 6130", "amd64", "intel", 2, 16,
                    ("sse2", "sse4.1", "avx2_128", "avx_256", "avx2_256", "avx_512"),
                    base_ghz=2.1),
        gpus=(GPUSpec("nvidia", "V100", driver_cuda="12.4", compute_capability="7.0",
                      backends=("CUDA", "OpenCL")),),
        mpi_info={"name": "openmpi", "version": "4.1", "abi": "ompi"},
        fabric="verbs",
        modules={"MKL": "2024.0", "FFTW": "3.3.10", "GCC": "11.4", "hwloc": "2.9"},
        container_runtime="sarus",
        supports_container_build=False,
        perf_key="xeon-6130",
    )


def ault25() -> SystemSpec:
    """CSCS Ault node 25: AMD EPYC 7742 + NVIDIA A100, Sarus."""
    return SystemSpec(
        name="ault25",
        cpu=CPUSpec("AMD EPYC 7742", "amd64", "amd", 2, 64,
                    ("sse2", "sse4.1", "avx2_128", "avx_256", "avx2_256"),
                    base_ghz=2.25),
        gpus=(GPUSpec("nvidia", "A100", driver_cuda="12.4", compute_capability="8.0",
                      backends=("CUDA", "OpenCL")),),
        mpi_info={"name": "openmpi", "version": "4.1", "abi": "ompi"},
        fabric="verbs",
        modules={"FFTW": "3.3.10", "GCC": "11.4", "OpenBLAS": "0.3.26"},
        container_runtime="sarus",
        supports_container_build=False,
        perf_key="epyc-7742",
    )


def ault01() -> SystemSpec:
    """CSCS Ault nodes 01-04: Intel Xeon Gold 6154, CPU-only (Fig. 12 CPU runs)."""
    return SystemSpec(
        name="ault01-04",
        cpu=CPUSpec("Intel Xeon Gold 6154", "amd64", "intel", 2, 18,
                    ("sse2", "sse4.1", "avx2_128", "avx_256", "avx2_256", "avx_512"),
                    base_ghz=3.0),
        mpi_info={"name": "openmpi", "version": "4.1", "abi": "ompi"},
        fabric="verbs",
        modules={"MKL": "2024.0", "FFTW": "3.3.10", "GCC": "11.4"},
        container_runtime="sarus",
        supports_container_build=True,
        perf_key="xeon-6154",
    )


def clariden() -> SystemSpec:
    """CSCS Alps Clariden: GH200 superchip, Slingshot, Podman."""
    return SystemSpec(
        name="clariden",
        cpu=CPUSpec("NVIDIA Grace", "arm64", "arm", 1, 72,
                    ("neon_asimd", "sve"), base_ghz=3.1),
        gpus=(GPUSpec("nvidia", "GH200", driver_cuda="12.8", compute_capability="9.0",
                      backends=("CUDA", "OpenCL"), memory_gb=96),),
        mpi_info={"name": "cray-mpich", "version": "8.1.29", "abi": "mpich"},
        fabric="cxi",
        modules={"FFTW": "3.3.10", "GCC": "12.3", "cray-libsci": "23.12"},
        container_runtime="podman",
        supports_container_build=True,
        perf_key="gh200",
    )


def aurora() -> SystemSpec:
    """ALCF Aurora: Xeon CPU Max + Intel Data Center GPU Max, Apptainer."""
    return SystemSpec(
        name="aurora",
        cpu=CPUSpec("Intel Xeon CPU Max 9470", "amd64", "intel", 2, 52,
                    ("sse2", "sse4.1", "avx2_128", "avx_256", "avx2_256", "avx_512"),
                    base_ghz=2.0),
        gpus=(GPUSpec("intel", "Data Center GPU Max 1550",
                      backends=("SYCL", "OpenCL", "LevelZero"), memory_gb=128),),
        mpi_info={"name": "mpich-aurora", "version": "4.2", "abi": "mpich"},
        fabric="cxi",
        modules={"oneAPI": "2024.2", "oneMKL": "2024.2", "icpx": "2024.2"},
        container_runtime="apptainer",
        supports_container_build=False,
        perf_key="xeon-max",
    )


def dev_machine() -> SystemSpec:
    """Local development machine with Docker (where Ault/Aurora images are built)."""
    return SystemSpec(
        name="dev-machine",
        cpu=CPUSpec("generic x86_64", "amd64", "intel", 1, 8,
                    ("sse2", "sse4.1", "avx_256", "avx2_256"), base_ghz=3.0),
        mpi_info={"name": "mpich", "version": "4.1", "abi": "mpich"},
        modules={"GCC": "11.4", "Clang": "19.0", "FFTW": "3.3.10"},
        container_runtime="docker",
        supports_container_build=True,
        perf_key="dev",
    )


SYSTEMS = {
    "ault23": ault23, "ault25": ault25, "ault01-04": ault01,
    "clariden": clariden, "aurora": aurora, "dev-machine": dev_machine,
}


def get_system(name: str) -> SystemSpec:
    try:
        return SYSTEMS[name]()
    except KeyError:
        raise KeyError(f"unknown system {name!r}; known: {sorted(SYSTEMS)}") from None


def simd_label_to_target_name(label: str) -> str:
    """Map a discovery feature label to a TargetMachine name."""
    mapping = {
        "sse2": "SSE2", "sse4.1": "SSE4.1", "sse4_1": "SSE4.1",
        "avx2_128": "AVX2_128", "avx_256": "AVX_256", "avx": "AVX_256",
        "avx2_256": "AVX2_256", "avx2": "AVX2_256",
        "avx_512": "AVX_512", "avx512f": "AVX_512", "avx512": "AVX_512",
        "neon_asimd": "ARM_NEON_ASIMD", "neon": "ARM_NEON_ASIMD",
        "sve": "ARM_SVE",
    }
    return mapping.get(label.lower(), label)


def best_simd_target(spec: SystemSpec):
    """Highest-level SIMD target the machine supports (GROMACS' AUTO)."""
    from repro.compiler.target import ALL_TARGETS

    best = None
    for label in spec.cpu.features:
        name = simd_label_to_target_name(label)
        target = ALL_TARGETS.get(name)
        if target is None or target.family != (
                "aarch64" if spec.architecture == "arm64" else "x86_64"):
            continue
        if best is None or target.feature_level > best.feature_level:
            best = target
    if best is None:
        from repro.compiler.target import ARM_NONE, X86_NONE
        return ARM_NONE if spec.architecture == "arm64" else X86_NONE
    return best
