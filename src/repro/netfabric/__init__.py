"""Network substrate: libfabric providers and MPI transport selection.

Backs Table 3 (provider capability matrix) and Sec. 6.5 (containerized MPI
intra-node bandwidth): containerized MPI reaching the network through a
libfabric replacement loses shared-memory transport unless a combined
provider (LinkX) routes local traffic, costing ~3x intra-node bandwidth.
"""

from repro.netfabric.bandwidth import (
    BandwidthResult,
    TransportPath,
    intra_node_bandwidth,
    message_sweep,
)
from repro.netfabric.providers import (
    FEATURES,
    PROVIDERS,
    Provider,
    Support,
    feature_matrix,
    get_provider,
    providers_supporting,
)

__all__ = [
    "BandwidthResult", "TransportPath", "intra_node_bandwidth", "message_sweep",
    "FEATURES", "PROVIDERS", "Provider", "Support", "feature_matrix",
    "get_provider", "providers_supporting",
]
