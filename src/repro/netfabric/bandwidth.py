"""Intra-node MPI bandwidth model (paper Sec. 6.5).

On Clariden, co-located MPI ranks must share the four GH200 chips per node.
Bare-metal Cray-MPICH uses shared memory (up to 64 GB/s on the same socket);
a containerized MPI whose libfabric was replaced with the host ``cxi``
provider reaches the Slingshot NIC but *not* shared memory, peaking at
~23.5 GB/s; the experimental LinkX provider composes ``shm`` with ``cxi``
and restores 64-70 GB/s.

The model: transport selection by (deployment kind, provider capability),
then a latency/bandwidth ramp over message size (classic alpha-beta form).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netfabric.providers import Provider, get_provider


class TransportPath(enum.Enum):
    """How an intra-node message actually travels."""

    SHARED_MEMORY = "shared-memory"
    NIC_LOOPBACK = "nic-loopback"
    TCP_LOOPBACK = "tcp-loopback"


@dataclass(frozen=True)
class BandwidthResult:
    provider: str
    path: TransportPath
    peak_gbps: float
    latency_us: float

    def bandwidth_at(self, message_bytes: int) -> float:
        """Effective GB/s for one message size (alpha-beta ramp)."""
        if message_bytes <= 0:
            return 0.0
        transfer_s = message_bytes / (self.peak_gbps * 1e9)
        total_s = self.latency_us * 1e-6 + transfer_s
        return message_bytes / total_s / 1e9


def select_transport(provider: Provider, containerized: bool,
                     hook_replaced: bool) -> TransportPath:
    """Which path intra-node messages take.

    Bare-metal MPI (or a provider that composes shared memory, like LinkX)
    uses shared memory. A containerized MPI that had its libfabric replaced
    talks to the NIC even for local peers — the namespace isolation breaks
    the shm bootstrap (Sec. 6.5). Without any replacement, container MPI
    falls back to TCP loopback.
    """
    if provider.shared_memory_local:
        return TransportPath.SHARED_MEMORY
    if not containerized:
        # Bare-metal MPI stacks pair the network provider with shm locally.
        return TransportPath.SHARED_MEMORY
    if hook_replaced:
        return TransportPath.NIC_LOOPBACK
    return TransportPath.TCP_LOOPBACK


# Bare-metal shared-memory peaks per MPI implementation (Sec. 6.5 reports
# Cray-MPICH at 64 GB/s and containerized OpenMPI-over-cxi at 23.5 GB/s;
# LinkX reaches 64 (MPICH) / 70 (OpenMPI)).
_SHM_PEAK_GBPS = {"cray-mpich": 64.0, "mpich": 60.0, "openmpi": 58.0,
                  "mpich-aurora": 55.0}
_LNX_PEAK_GBPS = {"mpich": 64.0, "cray-mpich": 64.0, "openmpi": 70.0}


def intra_node_bandwidth(mpi_name: str, provider_name: str,
                         containerized: bool, hook_replaced: bool = True) -> BandwidthResult:
    """Peak same-socket bandwidth for a deployment scenario."""
    provider = get_provider(provider_name)
    path = select_transport(provider, containerized, hook_replaced)
    if path is TransportPath.SHARED_MEMORY:
        if provider.shared_memory_local and provider_name == "lnx":
            peak = _LNX_PEAK_GBPS.get(mpi_name, 62.0)
        else:
            peak = _SHM_PEAK_GBPS.get(mpi_name, 50.0)
        latency = 0.4
    elif path is TransportPath.NIC_LOOPBACK:
        peak = provider.intra_node_gbps
        latency = 2.0
    else:
        peak = min(6.0, provider.intra_node_gbps)
        latency = 12.0
    return BandwidthResult(provider_name, path, peak, latency)


def message_sweep(result: BandwidthResult,
                  sizes: tuple[int, ...] = tuple(2 ** k for k in range(10, 27))
                  ) -> list[tuple[int, float]]:
    """OSU-style bandwidth curve: (message size, effective GB/s)."""
    return [(size, result.bandwidth_at(size)) for size in sizes]
