"""libfabric provider capability model (paper Table 3).

Libfabric exposes a portable API, but providers differ in feature support —
which is exactly why relinking libfabric "is not a general method for
performance specialization" (Sec. 2.2). The matrix below transcribes Table 3
(libfabric 2.0): full (YES), partial (P), unsupported (NO), not-used (NA),
unknown (UNK).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Support(enum.Enum):
    YES = "yes"
    PARTIAL = "partial"
    NO = "no"
    NA = "n/a"
    UNKNOWN = "?"

    @property
    def usable(self) -> bool:
        return self in (Support.YES, Support.PARTIAL)


FEATURES = (
    "message", "reliable_datagram", "datagram", "tagged_message",
    "directed_receive", "multi_receive", "atomic_operations",
    "memory_registration", "manual_progress", "auto_progress",
    "wait_objects", "completion_events", "resource_management",
    "scalable_endpoints", "trigger_operations",
)

Y, P, N, NA, U = Support.YES, Support.PARTIAL, Support.NO, Support.NA, Support.UNKNOWN


@dataclass(frozen=True)
class Provider:
    """One libfabric provider with its capability row and transports."""

    name: str               # fi_info name, e.g. "cxi"
    fabric: str             # human name, e.g. "Slingshot"
    features: dict[str, Support] = field(default_factory=dict)
    # Memory registration mode is a string column in Table 3.
    memory_registration: str = "basic"
    # Does the provider route intra-node traffic through shared memory?
    # (cxi does NOT — the Sec. 6.5 problem; LinkX composes shm + cxi.)
    shared_memory_local: bool = False
    # Peak bandwidths (GB/s) used by the bandwidth model.
    inter_node_gbps: float = 10.0
    intra_node_gbps: float = 10.0

    def supports(self, feature: str) -> Support:
        if feature not in FEATURES:
            raise KeyError(f"unknown libfabric feature {feature!r}")
        return self.features.get(feature, Support.NO)


def _row(values: str) -> dict[str, Support]:
    mapping = {"Y": Y, "P": P, "N": N, "A": NA, "U": U}
    return {feat: mapping[v] for feat, v in zip(FEATURES, values)}


# Table 3 rows. The feature string maps positionally onto FEATURES; the
# memory-registration column is kept separately (it is not boolean).
PROVIDERS: dict[str, Provider] = {p.name: p for p in [
    Provider("tcp", "TCP", _row("YYNYYYNAN" "YYYYNN"), "n/a",
             shared_memory_local=False, inter_node_gbps=3.0, intra_node_gbps=6.0),
    Provider("verbs", "InfiniBand", _row("YPYPNNPAN" "NPNPNN"), "basic",
             shared_memory_local=False, inter_node_gbps=25.0, intra_node_gbps=18.0),
    Provider("cxi", "Slingshot", _row("NYNYYYYAY" "NYYYNY"), "scalable",
             shared_memory_local=False, inter_node_gbps=25.0, intra_node_gbps=23.5),
    Provider("efa", "EFA", _row("NYPYYYPAY" "NNNPNN"), "local",
             shared_memory_local=False, inter_node_gbps=12.5, intra_node_gbps=12.0),
    Provider("opx", "Omni-Path", _row("NYNYYYYAY" "PUNYYN"), "scalable",
             shared_memory_local=False, inter_node_gbps=12.5, intra_node_gbps=12.0),
    # Not in Table 3 but central to Sec. 6.5: shm and the LinkX composition.
    Provider("shm", "Shared memory", _row("YYNYYYYAN" "YYYYNN"), "local",
             shared_memory_local=True, inter_node_gbps=0.0, intra_node_gbps=64.0),
    Provider("lnx", "LinkX (shm+cxi)", _row("NYNYYYYAY" "NYYYNY"), "scalable",
             shared_memory_local=True, inter_node_gbps=25.0, intra_node_gbps=67.0),
]}


def get_provider(name: str) -> Provider:
    try:
        return PROVIDERS[name]
    except KeyError:
        raise KeyError(f"unknown provider {name!r}; known: {sorted(PROVIDERS)}") from None


def feature_matrix(include_extra: bool = False) -> list[tuple[str, ...]]:
    """Render Table 3: one row per feature, one column per provider."""
    names = ["tcp", "verbs", "cxi", "efa", "opx"]
    if include_extra:
        names += ["shm", "lnx"]
    rows = []
    for feature in FEATURES:
        if feature == "memory_registration":
            rows.append(("Memory Registration",
                         *(PROVIDERS[n].memory_registration for n in names)))
            continue
        pretty = feature.replace("_", " ").title()
        symbols = {Support.YES: "yes", Support.PARTIAL: "P", Support.NO: "no",
                   Support.NA: "N/A", Support.UNKNOWN: "?"}
        rows.append((pretty, *(symbols[PROVIDERS[n].supports(feature)] for n in names)))
    return rows


def providers_supporting(feature: str, *, fully: bool = False) -> list[str]:
    """Query the matrix: which providers can be used for a feature?"""
    out = []
    for name, provider in PROVIDERS.items():
        support = provider.supports(feature)
        if support is Support.YES or (not fully and support is Support.PARTIAL):
            out.append(name)
    return sorted(out)
