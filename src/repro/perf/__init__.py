"""Performance model: machine parameters, cost execution, app runtimes.

``repro.perf`` closes the loop between the compiler substrate and the
evaluation figures: lowered kernels are executed symbolically against
machine models of the paper's testbeds, so a build strategy's runtime is a
consequence of the flags it fed the pipeline.
"""

from repro.perf.executor import KernelCost, estimate_kernel, kernel_seconds
from repro.perf.machine import MACHINES, MachinePerf, machine_perf
from repro.perf.model import (
    BuildArtifact,
    BuildIncompatibleError,
    ExecutionReport,
    LibraryBindings,
    build_app,
    default_build_environment,
    infer_libraries,
    run_workload,
)

__all__ = [
    "KernelCost", "estimate_kernel", "kernel_seconds",
    "MACHINES", "MachinePerf", "machine_perf",
    "BuildArtifact", "BuildIncompatibleError", "ExecutionReport",
    "LibraryBindings", "build_app", "default_build_environment",
    "infer_libraries", "run_workload",
]
