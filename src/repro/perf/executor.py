"""Symbolic execution of lowered machine code: the cost model.

Walks a :class:`~repro.compiler.lowering.MachineFunction` resolving loop trip
counts from workload bindings and charging per-instruction cycle costs. SIMD
loops advance ``W`` elements per iteration at the target's per-lane
efficiency; OpenMP-parallel loops divide by the machine's effective thread
count. The result is deterministic — the same build on the same machine
always predicts the same runtime, which is what lets benchmarks compare
build *strategies* cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lowering import MachineFunction, MachineInstr, MCall, MIf, MLoop
from repro.perf.machine import MachinePerf
from repro.util.exprs import ExprError, eval_expr


class CostError(ValueError):
    pass


@dataclass(frozen=True)
class KernelCost:
    """Cycles for one kernel invocation, split for diagnostics."""

    cycles: float
    vector_loops: int
    scalar_loops: int
    parallel_loops: int


def _effective_lanes(width: int, efficiency: float) -> float:
    """Observed speedup of a W-lane SIMD loop: 1 + (W-1) * efficiency."""
    if width <= 1:
        return 1.0
    return 1.0 + (width - 1) * efficiency


def estimate_kernel(fn: MachineFunction, bindings: dict[str, float],
                    threads: int, machine: MachinePerf,
                    openmp_enabled: bool = True) -> KernelCost:
    """Estimate the cycle cost of one call to ``fn`` under ``bindings``."""
    stats = {"vector": 0, "scalar": 0, "parallel": 0}
    cycles = _cost_items(fn.body, fn, bindings, threads, machine,
                         openmp_enabled, stats)
    return KernelCost(cycles, stats["vector"], stats["scalar"], stats["parallel"])


def _trip_count(loop: MLoop, bindings: dict[str, float]) -> float:
    if loop.const_trip is not None:
        return float(loop.const_trip)
    if loop.bound_src is None:
        raise CostError(f"loop {loop.var!r} has no resolvable bound")
    try:
        bound = eval_expr(loop.bound_src, bindings)
        start = eval_expr(loop.start_src, bindings) if loop.start_src else 0.0
    except ExprError as exc:
        raise CostError(f"cannot resolve trip count for loop {loop.var!r}: {exc}") from None
    return max(0.0, bound - start)


def _cost_items(items, fn: MachineFunction, bindings, threads, machine,
                openmp_enabled, stats) -> float:
    total = 0.0
    veff = fn.target.vector_efficiency
    for item in items:
        if isinstance(item, MachineInstr):
            total += item.cycles
        elif isinstance(item, MCall):
            total += item.cycles
        elif isinstance(item, MIf):
            then_cost = _cost_items(item.then, fn, bindings, threads, machine,
                                    openmp_enabled, stats)
            else_cost = _cost_items(item.orelse, fn, bindings, threads, machine,
                                    openmp_enabled, stats)
            total += item.cond_cycles + item.selectivity * then_cost \
                + (1 - item.selectivity) * else_cost
        elif isinstance(item, MLoop):
            trips = _trip_count(item, bindings)
            body = _cost_items(item.body, fn, bindings, threads, machine,
                               openmp_enabled, stats)
            lanes = _effective_lanes(item.vector_width, veff)
            iterations = trips / lanes
            if item.vector_width > 1:
                stats["vector"] += 1
                # The scalar epilogue: on average (W-1)/2 leftover elements.
                iterations += (item.vector_width - 1) / 2.0 / lanes
            else:
                stats["scalar"] += 1
            loop_cycles = item.header_cycles + iterations * (body + 1.0)
            if item.vector_width <= 1:
                loop_cycles /= machine.scalar_boost
            if item.parallel and openmp_enabled and threads > 1:
                stats["parallel"] += 1
                loop_cycles = loop_cycles / machine.threads_effective(threads) \
                    + 200.0  # fork/join overhead
            total += loop_cycles
        else:  # pragma: no cover - defensive
            raise CostError(f"unknown machine item {type(item).__name__}")
    return total


def kernel_seconds(fn: MachineFunction, bindings: dict[str, float],
                   threads: int, machine: MachinePerf,
                   openmp_enabled: bool = True) -> float:
    """Wall-clock seconds for one invocation of ``fn``."""
    cost = estimate_kernel(fn, bindings, threads, machine, openmp_enabled)
    return cost.cycles / (machine.clock_ghz * 1e9 * machine.ipc)
