"""Machine performance parameters for the execution model.

Each testbed node gets a :class:`MachinePerf` record keyed by the
``perf_key`` of its :class:`~repro.discovery.system.SystemSpec`. Parameters
are calibrated so the simulated kernels land near the paper's measured
runtimes (EXPERIMENTS.md records paper-vs-measured); the *relationships*
(which build wins, crossover points) emerge from executing the lowered code,
not from per-experiment constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachinePerf:
    """Throughput description of one machine."""

    key: str
    clock_ghz: float
    ipc: float                   # sustained instructions-per-cycle factor
    thread_efficiency: float     # OpenMP scaling: eff lanes = 1+(t-1)*eff
    # Relative GPU kernel throughput in "pair units"/second (0 = no GPU).
    gpu_tput: float = 0.0
    gpu_launch_overhead_s: float = 1.0e-4
    # Library speed coefficients: multiplier on library work (lower=faster).
    library_coeff: dict[str, float] = field(default_factory=dict)
    # Container runtime overhead on total runtime (the paper finds it
    # negligible; keep it small but nonzero).
    container_overhead: float = 0.005
    # Wide out-of-order cores (Grace/Neoverse V2) run scalar code relatively
    # faster, shrinking the None->SIMD gap on ARM (Fig. 2 right).
    scalar_boost: float = 1.0

    def threads_effective(self, threads: int) -> float:
        if threads <= 1:
            return 1.0
        return 1.0 + (threads - 1) * self.thread_efficiency


_DEFAULT_LIBS = {
    # CPU FFT backends
    "fftw3": 1.00, "mkl": 0.80, "fftpack": 1.90, "own-fftw": 1.05,
    # BLAS backends (affects the paper's Spack-default-vs-MKL gap, Fig. 10)
    "openblas": 1.25, "blis": 1.10, "internal-blas": 1.45, "cray-libsci": 0.95,
    # GPU FFT
    "cufft": 0.40, "vkfft": 0.55, "rocfft": 0.45, "onemath": 0.50, "clfft": 0.75,
}


def _m(key, clock, ipc, teff, gpu=0.0, libs=None, **kw):
    merged = dict(_DEFAULT_LIBS)
    merged.update(libs or {})
    return MachinePerf(key=key, clock_ghz=clock, ipc=ipc,
                       thread_efficiency=teff, gpu_tput=gpu,
                       library_coeff=merged, **kw)


MACHINES: dict[str, MachinePerf] = {m.key: m for m in [
    # Intel Xeon Gold 6130 (Ault23): the Fig. 2 x86 and Fig. 10 machine.
    _m("xeon-6130", clock=2.1, ipc=1.35, teff=0.82, gpu=0.42,
       libs={"mkl": 0.75}),
    # Intel Xeon Gold 6154 (Ault01-04): Fig. 12 CPU runs, higher clock.
    _m("xeon-6154", clock=3.0, ipc=1.35, teff=0.80, gpu=0.0,
       libs={"mkl": 0.75}),
    # AMD EPYC 7742 (Ault25): A100 host; MKL less favoured on AMD.
    _m("epyc-7742", clock=2.25, ipc=1.30, teff=0.85, gpu=0.48,
       libs={"mkl": 1.05, "openblas": 1.10}),
    # NVIDIA Grace Hopper (Clariden): fast ARM cores, H100-class GPU.
    _m("gh200", clock=3.1, ipc=1.42, teff=0.88, gpu=0.90,
       libs={"cray-libsci": 0.90}, scalar_boost=1.55),
    # Intel Xeon Max + Intel Data Center GPU Max (Aurora).
    _m("xeon-max", clock=2.0, ipc=1.30, teff=0.78, gpu=0.17,
       libs={"onemath": 0.95, "mkl": 0.72}),
    # Generic dev machine.
    _m("dev", clock=3.0, ipc=1.2, teff=0.75),
]}


def machine_perf(key: str) -> MachinePerf:
    try:
        return MACHINES[key]
    except KeyError:
        raise KeyError(f"unknown machine perf key {key!r}; known: {sorted(MACHINES)}") from None
