"""Application build + execution model: predict workload runtimes.

``build_app`` drives the *real* pipeline end to end: configure the app's
build script, compile its hot kernels with the per-target compile-command
flags (preprocess -> IR -> vectorize -> lower), and record the library/GPU
choices the configuration made. ``run_workload`` then symbolically executes
the lowered kernels on a machine model. Build strategies differ *only* in
the flags and libraries they feed this pipeline — the performance gaps of
Figs. 2/10/11/12 are downstream consequences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.base import AppModel, Workload
from repro.buildsys import (
    BuildConfiguration,
    BuildEnvironment,
    configure,
    make_include_resolver,
)
from repro.compiler import Compiler
from repro.compiler.driver import CompileOptions
from repro.compiler.lowering import MachineFunction, lower_module
from repro.discovery.system import SystemSpec, best_simd_target
from repro.perf.executor import kernel_seconds
from repro.perf.machine import MachinePerf, machine_perf

# GPU throughput unit: work units (pair interactions / vector elements) per
# second at machine.gpu_tput == 1.0.
GPU_UNIT_RATE = 30.0e9
# FFT cost model: cycles per grid point per log2(grid) at coefficient 1.0.
FFT_CYCLES_PER_POINT = 6.0


class BuildIncompatibleError(RuntimeError):
    """The built artifact cannot run on the requested system."""


@dataclass
class BuildArtifact:
    """A built application: lowered hot kernels + configuration metadata."""

    app: AppModel
    options: dict[str, str]
    config: BuildConfiguration
    simd_name: str
    target_family: str
    openmp: bool
    gpu_backend: str | None
    fft_library: str
    blas_library: str
    mpi_flavor: str  # none | mpich | ompi | thread-mpi
    machine_functions: dict[str, MachineFunction] = field(default_factory=dict)
    extra_defines: tuple[str, ...] = ()
    containerized: bool = False
    label: str = ""

    @property
    def description(self) -> str:
        gpu = self.gpu_backend or "CPU-only"
        return (f"{self.app.name} [{self.label or 'build'}] simd={self.simd_name} "
                f"gpu={gpu} fft={self.fft_library} omp={self.openmp}")


def default_build_environment() -> BuildEnvironment:
    """A fully-stocked environment (container dependency layers provide all)."""
    return BuildEnvironment(packages={
        "MPI": "4.1", "FFTW": "3.3.10", "MKL": "2024.2", "CUDA": "12.8",
        "HIP": "5.7", "SYCL": "2024.2", "OpenCL": "3.0", "hwloc": "2.9",
        "BLAS": "3.12", "LAPACK": "3.12", "OpenBLAS": "0.3.26",
        "ScaLAPACK": "2.2", "ELPA": "2024.03",
    })


def build_app(app: AppModel, options: dict[str, str],
              env: BuildEnvironment | None = None,
              build_system: SystemSpec | None = None,
              opt_level: int = 3,
              extra_defines: tuple[str, ...] = (),
              containerized: bool = False,
              label: str = "",
              fft_library: str | None = None,
              blas_library: str | None = None) -> BuildArtifact:
    """Configure + compile + lower the app's hot kernels for one configuration.

    ``build_system`` resolves ``AUTO`` SIMD (GROMACS-style detection on the
    build host). ``fft_library``/``blas_library`` override the library
    bindings when the environment (e.g. Spack defaults) dictates them.
    """
    options = dict(options)
    simd_name = options.get("GMX_SIMD", "")
    if simd_name == "AUTO" or (not simd_name and app.name == "gromacs"):
        target = best_simd_target(build_system) if build_system else None
        simd_name = target.name if target else "None"
        options["GMX_SIMD"] = simd_name

    env = env or default_build_environment()
    name = label or "-".join(f"{k}={v}" for k, v in sorted(options.items())) or "default"
    config = configure(app.tree, options, env=env, name=name, build_dir="/xaas/build")
    host_flags: list[str] = []
    if build_system is not None and build_system.architecture == "arm64":
        host_flags.append("--target=aarch64")
    resolver = make_include_resolver(app.tree, config)

    # Locate and compile the hot kernels with their real compile commands.
    machine_functions: dict[str, MachineFunction] = {}
    target_family = "x86_64"
    openmp = False
    compiler = Compiler(resolver)
    for source, flags in _hot_sources(app, config):
        flags = list(flags) + host_flags + [f"-O{opt_level}"] + list(extra_defines)
        opts = CompileOptions.from_flags(flags)
        openmp = openmp or opts.fopenmp
        target_family = opts.target_family
        result = compiler.compile_to_ir(app.tree.read(source), flags, source)
        target = opts.resolve_target()
        mmod = lower_module(result.module, target, opt_level=opt_level)
        for fn_name, mfn in mmod.functions.items():
            if fn_name in app.hot_functions:
                machine_functions[fn_name] = mfn

    missing = set(app.hot_functions) - set(machine_functions)
    if missing:
        raise RuntimeError(f"{app.name}: hot functions not built: {sorted(missing)}")

    libs = infer_libraries(options)
    return BuildArtifact(
        app=app, options=options, config=config,
        simd_name=simd_name or "None",
        target_family=target_family,
        openmp=openmp,
        gpu_backend=libs.gpu_backend,
        fft_library=fft_library or libs.fft_library,
        blas_library=blas_library or libs.blas_library,
        mpi_flavor=libs.mpi_flavor,
        machine_functions=machine_functions,
        extra_defines=tuple(extra_defines),
        containerized=containerized,
        label=label,
    )


@dataclass(frozen=True)
class LibraryBindings:
    """The library/runtime choices a configuration implies.

    Public form of the option-sniffing helpers below — the deployment layer
    consumes this instead of reaching into this module's private functions.
    """

    gpu_backend: str | None
    fft_library: str
    blas_library: str
    mpi_flavor: str  # none | mpich | ompi | thread-mpi


def infer_libraries(options: dict[str, str]) -> LibraryBindings:
    """Infer GPU/FFT/BLAS/MPI bindings from a configuration's options."""
    return LibraryBindings(
        gpu_backend=_gpu_backend(options),
        fft_library=_fft_library(options),
        blas_library=_blas_library(options),
        mpi_flavor=_mpi_flavor(options),
    )


def _hot_sources(app: AppModel, config: BuildConfiguration):
    """Yield (source, flags) for files defining the app's hot functions."""
    wanted = set(app.hot_functions)
    seen: set[str] = set()
    for cmd in config.compile_commands:
        if cmd.source in seen:
            continue
        content = app.tree.read(cmd.source)
        if any(f" {name}(" in content or content.startswith(f"{name}(")
               or f"double {name}(" in content or f"void {name}(" in content
               or f"int {name}(" in content or f"float {name}(" in content
               for name in wanted):
            seen.add(cmd.source)
            yield cmd.source, cmd.flags


def _gpu_backend(options: dict[str, str]) -> str | None:
    gpu = options.get("GMX_GPU", "OFF")
    if gpu not in ("", "OFF"):
        return gpu
    for opt, backend in (("GGML_CUDA", "CUDA"), ("GGML_SYCL", "SYCL"),
                         ("GGML_HIP", "HIP"), ("QE_ENABLE_CUDA", "CUDA")):
        if options.get(opt, "OFF").upper() in ("ON", "TRUE", "1"):
            return backend
    return None


def _fft_library(options: dict[str, str]) -> str:
    if options.get("GMX_BUILD_OWN_FFTW", "OFF").upper() == "ON":
        return "own-fftw"
    lib = options.get("GMX_FFT_LIBRARY", options.get("QE_FFTW_VENDOR", "fftw3"))
    return {"FFTW3": "fftw3", "Internal": "fftpack", "AUTO": "fftw3",
            "MKL": "mkl"}.get(lib, lib)


def _blas_library(options: dict[str, str]) -> str:
    if options.get("GGML_BLAS", "OFF").upper() == "ON":
        return options.get("GGML_BLAS_VENDOR", "OpenBLAS").lower()
    if options.get("GMX_EXTERNAL_BLAS", "OFF").upper() == "ON":
        return "openblas"
    return "internal-blas"


def _mpi_flavor(options: dict[str, str]) -> str:
    if options.get("GMX_MPI", options.get("WITH_MPI",
                   options.get("QE_ENABLE_MPI", "OFF"))).upper() == "ON":
        return "mpich"
    if options.get("GMX_THREAD_MPI", "OFF").upper() == "ON":
        return "thread-mpi"
    return "none"


# -- execution ----------------------------------------------------------------


@dataclass
class ExecutionReport:
    """Predicted execution of one workload on one system."""

    app: str
    workload: str
    system: str
    build_label: str
    total_seconds: float
    compute_seconds: float
    io_seconds: float
    kernel_seconds: dict[str, float]
    library_seconds: float
    gpu_seconds: float
    gpu_offloaded: bool
    threads: int
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        gpu = " [GPU]" if self.gpu_offloaded else ""
        return (f"{self.app}/{self.workload} on {self.system} ({self.build_label}){gpu}: "
                f"{self.total_seconds:.1f}s")


def run_workload(artifact: BuildArtifact, system: SystemSpec, workload_name: str,
                 threads: int | None = None, steps: int | None = None,
                 in_container: bool | None = None) -> ExecutionReport:
    """Predict wall-clock time for one workload run."""
    app = artifact.app
    workload = app.workload(workload_name)
    machine = machine_perf(system.perf_key)
    _check_compatibility(artifact, system)

    threads = threads or min(system.cpu.total_cores, 36)
    if not artifact.openmp:
        threads = 1
    steps = steps or workload.steps
    gpu_on = _gpu_usable(artifact, system)

    kernel_breakdown: dict[str, float] = {}
    cpu_per_step = 0.0
    gpu_work = 0.0
    notes: list[str] = []
    for fn_name, calls in app.hot_functions.items():
        mfn = artifact.machine_functions[fn_name]
        if gpu_on and fn_name in app.gpu_functions:
            gpu_work += workload.bindings.get(app.gpu_work_binding, 0.0) * calls
            kernel_breakdown[fn_name] = 0.0
            continue
        secs = kernel_seconds(mfn, workload.bindings, threads, machine,
                              openmp_enabled=artifact.openmp) * calls
        kernel_breakdown[fn_name] = secs
        cpu_per_step += secs

    gpu_per_step = 0.0
    if gpu_on and gpu_work > 0:
        launches = sum(1 for f in app.gpu_functions if f in app.hot_functions)
        gpu_per_step = gpu_work * app.gpu_unit_cost \
            / (machine.gpu_tput * GPU_UNIT_RATE) \
            + launches * machine.gpu_launch_overhead_s
        notes.append(f"GPU offload via {artifact.gpu_backend}")

    lib_per_step = _library_seconds(app, artifact, workload, machine, threads, gpu_on)
    # An externally selected BLAS drags the whole CPU section (the paper's
    # Spack-default-OpenBLAS observation applies to the CPU part even when
    # the non-bonded work runs on the GPU).
    cpu_per_step *= _blas_drag(artifact, machine)

    per_step = cpu_per_step + gpu_per_step + lib_per_step
    compute = per_step * steps
    containerized = artifact.containerized if in_container is None else in_container
    if containerized:
        compute *= 1.0 + machine.container_overhead
        notes.append(f"container runtime {system.container_runtime}")
    io = workload.io_seconds * (1.15 if containerized else 1.0)
    return ExecutionReport(
        app=app.name, workload=workload_name, system=system.name,
        build_label=artifact.label or artifact.simd_name,
        total_seconds=compute + io, compute_seconds=compute, io_seconds=io,
        kernel_seconds={k: v * steps for k, v in kernel_breakdown.items()},
        library_seconds=lib_per_step * steps,
        gpu_seconds=gpu_per_step * steps,
        gpu_offloaded=gpu_on and gpu_work > 0,
        threads=threads, notes=notes,
    )


def _check_compatibility(artifact: BuildArtifact, system: SystemSpec) -> None:
    want = "arm64" if artifact.target_family == "aarch64" else "amd64"
    if want != system.architecture:
        raise BuildIncompatibleError(
            f"{artifact.description} targets {want}, but {system.name} is "
            f"{system.architecture}")
    # Code compiled for a newer ISA level faults on older CPUs.
    from repro.compiler.target import ALL_TARGETS
    built = ALL_TARGETS.get(artifact.simd_name)
    host_best = best_simd_target(system)
    if built and built.vector_bits > 0 and not host_best.supports(built):
        raise BuildIncompatibleError(
            f"{system.name} ({host_best.name}) cannot execute {built.name} code")


def _gpu_usable(artifact: BuildArtifact, system: SystemSpec) -> bool:
    if artifact.gpu_backend is None or not system.gpus:
        return False
    if not any(artifact.gpu_backend in gpu.backends for gpu in system.gpus):
        return False
    # The Aurora quirk (Sec. 6.3.1): GROMACS' SYCL path needs a device
    # compile definition documented outside the build system; without the
    # manual fix the container silently runs CPU-only.
    if system.gpus[0].vendor == "intel" and artifact.app.name == "gromacs":
        if not any("GMX_GPU_NB_CLUSTER_SIZE" in d for d in artifact.extra_defines):
            return False
    return True


def _library_seconds(app: AppModel, artifact: BuildArtifact, workload: Workload,
                     machine: MachinePerf, threads: int, gpu_on: bool) -> float:
    if "fft_3d" not in app.library_work:
        return 0.0
    n_grid = workload.bindings.get("n_grid", 0.0)
    if n_grid <= 0:
        return 0.0
    if gpu_on:
        # PME FFTs ride along on the GPU (cuFFT/oneMath); charged as GPU work.
        lib = {"CUDA": "cufft", "HIP": "rocfft", "SYCL": "onemath",
               "OpenCL": "vkfft"}.get(artifact.gpu_backend, "cufft")
        coeff = machine.library_coeff.get(lib, 1.2)
        return n_grid * math.log2(max(2.0, n_grid)) * coeff \
            / (machine.gpu_tput * GPU_UNIT_RATE)
    coeff = machine.library_coeff.get(artifact.fft_library, 1.2)
    cycles = n_grid * math.log2(max(2.0, n_grid)) * FFT_CYCLES_PER_POINT * coeff
    eff = machine.threads_effective(threads if artifact.openmp else 1)
    return cycles * _blas_drag(artifact, machine) \
        / (machine.clock_ghz * 1e9 * machine.ipc * eff)


def _blas_drag(artifact: BuildArtifact, machine: MachinePerf) -> float:
    """Multiplier on CPU-side work from the linked BLAS/LAPACK choice."""
    if artifact.blas_library == "internal-blas":
        return 1.0
    return machine.library_coeff.get(artifact.blas_library, 1.1) * 0.25 + 0.75
