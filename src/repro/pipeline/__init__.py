"""Staged pipeline engine, artifact cache plumbing, and batch deployment.

The production backbone of the IR-container workflow:

* :mod:`~repro.pipeline.engine` — generic :class:`Stage`/:class:`Pipeline`
  abstraction with validated dataflow and per-stage timing;
* :mod:`~repro.pipeline.stages` — the IR-container stages (configure,
  preprocess, OpenMP, vectorization delay, IR compile, image assembly)
  decomposed from the old monolithic ``build_ir_container``;
* :mod:`~repro.pipeline.stats` — the dedup/cache/timing scorecard;
* :mod:`~repro.pipeline.parallel` — deterministic thread-pool map;
* :mod:`~repro.pipeline.batch` — plan + execute one-container-to-many-
  systems deployments with lowered-object reuse per ISA group.
"""

from repro.pipeline.batch import (
    BatchDeployment,
    DeploymentPlan,
    ISAGroup,
    deploy_batch,
    plan_batch,
)
from repro.pipeline.engine import (
    Context,
    Pipeline,
    PipelineDefinitionError,
    PipelineRun,
    Stage,
    StageExecutionError,
    StageTiming,
)
from repro.pipeline.parallel import parallel_map
from repro.pipeline.stages import (
    DEDUP_STAGES,
    ConfigureStage,
    ImageAssemblyStage,
    IRCompileStage,
    OpenMPStage,
    PreprocessStage,
    StatsOnlyIRStage,
    TranslationUnit,
    VectorizeStage,
    build_ir_pipeline,
    config_name,
)
from repro.pipeline.stats import PipelineStats

__all__ = [
    "BatchDeployment", "DeploymentPlan", "ISAGroup", "deploy_batch", "plan_batch",
    "Context", "Pipeline", "PipelineDefinitionError", "PipelineRun",
    "Stage", "StageExecutionError", "StageTiming",
    "parallel_map",
    "DEDUP_STAGES", "ConfigureStage", "ImageAssemblyStage", "IRCompileStage",
    "OpenMPStage", "PreprocessStage", "StatsOnlyIRStage", "TranslationUnit",
    "VectorizeStage", "build_ir_pipeline", "config_name",
    "PipelineStats",
]
