"""Parallel batch deployment: one IR container, many target systems.

The paper's deployment step (Sec. 4.3.1, Fig. 8) specializes one system at
a time. At fleet scale, the same IR container is deployed to every node
class of a datacenter — and most of the work (optimizing + lowering each IR
for the destination ISA) is identical across systems that share one.

:func:`plan_batch` groups the requested systems by ``(architecture family,
selected SIMD level)`` *before* any lowering happens, and
:func:`deploy_batch` deploys the groups concurrently while threading one
:class:`~repro.containers.store.ArtifactCache` through all of them: the
first system of each ISA group lowers the configuration's IRs, every other
system reuses the cached machine modules (the ``lower`` namespace hit
counters make the reuse auditable). With a persistent store
(:mod:`repro.store` file/remote backends) the reuse crosses process
boundaries: lowered modules are payload-only artifacts, so a later batch
in a cold process deploys without lowering anything at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.containers.store import ArtifactCache, BlobStore
from repro.pipeline.parallel import parallel_map

if TYPE_CHECKING:  # pragma: no cover - import cycle: core builds on pipeline
    from repro.apps.base import AppModel
    from repro.containers.registry import Registry
    from repro.core.deployment import DeployedIRApp
    from repro.core.ir_container import IRContainerResult
    from repro.discovery.system import SystemSpec


@dataclass(frozen=True)
class ISAGroup:
    """Systems that will share lowered objects: same family, same SIMD."""

    family: str
    simd_name: str
    systems: tuple[str, ...]


@dataclass
class DeploymentPlan:
    """The fan-out schedule for one IR container over many systems."""

    app: str
    options: dict[str, str]
    groups: list[ISAGroup] = field(default_factory=list)
    # system name -> reason it cannot take this container (wrong arch).
    incompatible: dict[str, str] = field(default_factory=dict)

    @property
    def system_order(self) -> list[str]:
        return [name for group in self.groups for name in group.systems]

    def summary(self) -> str:
        parts = [f"{g.family}/{g.simd_name}: {', '.join(g.systems)}"
                 for g in self.groups]
        text = f"{len(self.system_order)} systems in {len(self.groups)} ISA groups"
        if self.incompatible:
            text += f" ({len(self.incompatible)} incompatible)"
        return text + " — " + "; ".join(parts) if parts else text


@dataclass
class BatchDeployment:
    """Everything ``deploy_batch`` produces."""

    plan: DeploymentPlan
    # In the order the systems were requested (skipping incompatible ones).
    deployments: list[DeployedIRApp] = field(default_factory=list)
    lowerings_performed: int = 0
    lowerings_reused: int = 0

    def by_system(self) -> dict[str, DeployedIRApp]:
        return {d.system.name: d for d in self.deployments}


def plan_batch(result: IRContainerResult, app: AppModel,
               options: dict[str, str], systems: list[SystemSpec],
               simd_override: str | None = None,
               skip_incompatible: bool = False) -> DeploymentPlan:
    """Group systems by the ISA their deployment will lower for.

    Grouping uses the same precedence rules as single-system deployment
    (:func:`~repro.core.deployment.select_simd`), so the plan exactly
    predicts which systems share cached lowered objects.
    """
    from repro.core.deployment import (
        IRDeploymentError,
        check_ir_architecture,
        select_simd,
    )
    plan = DeploymentPlan(app=app.name, options=dict(options))
    buckets: dict[tuple[str, str], list[str]] = {}
    seen: set[str] = set()
    for system in systems:
        if system.name in seen:  # a repeated name is one deployment, not two
            continue
        seen.add(system.name)
        try:
            family = check_ir_architecture(result, system)
        except IRDeploymentError as exc:
            if not skip_incompatible:
                raise
            plan.incompatible[system.name] = str(exc)
            continue
        simd = select_simd(options, system, simd_override)
        buckets.setdefault((family, simd), []).append(system.name)
    plan.groups = [ISAGroup(family, simd, tuple(names))
                   for (family, simd), names in buckets.items()]
    return plan


def deploy_batch(result: IRContainerResult, app: AppModel,
                 options: dict[str, str], systems: list[SystemSpec],
                 store: BlobStore,
                 cache: ArtifactCache | None = None,
                 simd_override: str | None = None,
                 registry: Registry | None = None,
                 repository: str = "",
                 skip_incompatible: bool = False,
                 max_workers: int | None = None) -> BatchDeployment:
    """Deploy one IR container to every system in a single batch.

    ISA groups deploy concurrently; within a group systems deploy in
    order, so the group's first deployment populates the shared ``cache``
    and the rest hit it. Lowered-object reuse is reported via
    ``lowerings_performed``/``lowerings_reused`` (per-batch deltas of the
    cache's ``lower`` namespace counters).
    """
    from repro.core.deployment import IRDeploymentError, deploy_ir_container
    if not systems:
        raise IRDeploymentError("deploy_batch needs at least one system")
    if cache is None:
        # Default the cache onto the deployment's own blob store: when the
        # caller hands us a persistent store (file/remote backend), lowered
        # machine modules persist alongside the image blobs and the *next*
        # batch — even in another process — starts warm.
        cache = ArtifactCache(store)
    by_name = {system.name: system for system in systems}
    plan = plan_batch(result, app, options, systems,
                      simd_override=simd_override,
                      skip_incompatible=skip_incompatible)
    before = cache.snapshot().get("lower", (0, 0))

    def _deploy_group(group: ISAGroup) -> list[DeployedIRApp]:
        return [deploy_ir_container(result, app, options, by_name[name], store,
                                    simd_override=simd_override,
                                    registry=registry, repository=repository,
                                    cache=cache)
                for name in group.systems]

    grouped = parallel_map(_deploy_group, plan.groups, max_workers)
    after = cache.snapshot().get("lower", (0, 0))

    # Report in the order the systems were first requested.
    deployed = {dep.system.name: dep for deps in grouped for dep in deps}
    ordered = []
    for system in systems:
        dep = deployed.pop(system.name, None)
        if dep is not None:
            ordered.append(dep)
    return BatchDeployment(plan=plan, deployments=ordered,
                           lowerings_performed=after[1] - before[1],
                           lowerings_reused=after[0] - before[0])
