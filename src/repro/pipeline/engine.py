"""Staged pipeline engine: typed stages, validated dataflow, per-stage timing.

The IR-container workflow (paper Sec. 4.2-4.3, Fig. 7) is inherently staged
— configure, preprocess, OpenMP analysis, vectorization delay, IR compile,
image assembly — and later stages consume exactly what earlier stages
produce. This module makes that dataflow explicit: a :class:`Stage` declares
the context keys it ``consumes`` and ``produces``, and a :class:`Pipeline`
refuses at *registration* time to accept a stage whose inputs nothing
upstream provides. Running a pipeline records wall-clock timing per stage,
the raw material for the per-stage sharding follow-ups on the roadmap.
Each stage execution also observes its duration into the process-default
metrics registry (``pipeline.stage.duration_seconds{stage=...}``) and
opens a trace span, so a ``--trace`` run shows stages nested under
whatever command (or cluster job) drove the pipeline.

The engine is deliberately domain-free; the IR-container stages live in
:mod:`repro.pipeline.stages`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.telemetry import registry as _registry
from repro.telemetry import trace as _trace


class PipelineDefinitionError(ValueError):
    """A stage graph that cannot run: missing inputs or duplicate names."""


class StageExecutionError(RuntimeError):
    """A stage failed or violated its declared outputs."""


@dataclass(frozen=True)
class StageTiming:
    stage: str
    seconds: float


class Context:
    """The pipeline's dataflow state: a key -> artifact mapping.

    Stages read through :meth:`require` and write through :meth:`publish`;
    publish enforces the running stage's ``produces`` declaration so the
    registration-time validation cannot be bypassed at run time.
    """

    def __init__(self, initial: dict[str, Any] | None = None):
        self._values: dict[str, Any] = dict(initial or {})
        self._writable: frozenset[str] | None = None  # None => unrestricted

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def require(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise StageExecutionError(
                f"context key {key!r} required but never produced") from None

    def publish(self, key: str, value: Any) -> None:
        if self._writable is not None and key not in self._writable:
            raise StageExecutionError(
                f"stage published undeclared key {key!r}; declared: "
                f"{sorted(self._writable)}")
        self._values[key] = value

    def keys(self) -> Iterable[str]:
        return self._values.keys()


class Stage:
    """One unit of pipeline work.

    Subclasses set ``name``, declare ``consumes``/``produces`` (context
    keys), and implement :meth:`run`. A stage may re-publish a key it also
    consumes — that is how refinement stages (OpenMP analysis narrowing the
    preprocessing partition) overwrite the working partition in place.
    """

    name: str = "stage"
    consumes: tuple[str, ...] = ()
    produces: tuple[str, ...] = ()

    def run(self, ctx: Context) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class PipelineRun:
    """The outcome of one pipeline execution."""

    context: Context
    timings: list[StageTiming] = field(default_factory=list)

    @property
    def stage_seconds(self) -> dict[str, float]:
        return {t.stage: t.seconds for t in self.timings}


class Pipeline:
    """An ordered, validated sequence of stages.

    ``inputs`` names the context keys the caller will supply to
    :meth:`run`; every stage's ``consumes`` must be satisfied by those
    inputs or by an earlier stage's ``produces``.
    """

    def __init__(self, name: str, inputs: tuple[str, ...] = ()):
        self.name = name
        self.inputs = tuple(inputs)
        self.stages: list[Stage] = []
        self._available: set[str] = set(inputs)

    def register(self, stage: Stage) -> "Pipeline":
        if any(s.name == stage.name for s in self.stages):
            raise PipelineDefinitionError(
                f"pipeline {self.name!r}: duplicate stage {stage.name!r}")
        missing = [k for k in stage.consumes if k not in self._available]
        if missing:
            raise PipelineDefinitionError(
                f"pipeline {self.name!r}: stage {stage.name!r} consumes "
                f"{missing} which nothing upstream produces "
                f"(available: {sorted(self._available)})")
        self.stages.append(stage)
        self._available.update(stage.produces)
        return self

    def run(self, initial: dict[str, Any]) -> PipelineRun:
        missing = [k for k in self.inputs if k not in initial]
        if missing:
            raise StageExecutionError(
                f"pipeline {self.name!r}: missing inputs {missing}")
        ctx = Context(initial)
        timings: list[StageTiming] = []
        for stage in self.stages:
            ctx._writable = frozenset(stage.produces)
            start = time.perf_counter()
            try:
                with _trace.span(f"pipeline.stage.{stage.name}",
                                 attrs={"pipeline": self.name}):
                    stage.run(ctx)
            except StageExecutionError:
                raise
            except Exception as exc:
                raise StageExecutionError(
                    f"stage {stage.name!r} failed: {exc}") from exc
            finally:
                ctx._writable = None
            elapsed = time.perf_counter() - start
            timings.append(StageTiming(stage.name, elapsed))
            _registry.get_registry().histogram(
                "pipeline.stage.duration_seconds",
                stage=stage.name).observe(elapsed)
            absent = [k for k in stage.produces if k not in ctx]
            if absent:
                raise StageExecutionError(
                    f"stage {stage.name!r} declared but did not produce {absent}")
        return PipelineRun(context=ctx, timings=timings)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)
