"""Deterministic thread-pool map for per-TU and per-system pipeline loops.

The preprocess/IR-compile loops and the batch-deployment lowering fan out
over independent work items; this helper runs them on a
:class:`~concurrent.futures.ThreadPoolExecutor` while guaranteeing the
result list preserves input order, so pipeline output (manifests, image
layers, digests) stays byte-identical to a serial run.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

# Modest default: the work is simulated (CPU-light), and HPC login nodes —
# where deployments run — are shared machines.
DEFAULT_MAX_WORKERS = 8


def default_worker_count(n_items: int) -> int:
    """Pool width for ``n_items`` tasks: always >= 1, never wider than the
    item count, the machine, or :data:`DEFAULT_MAX_WORKERS`."""
    return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1, n_items))


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 max_workers: int | None = None) -> list[R]:
    """Map ``fn`` over ``items`` concurrently; results in input order.

    ``max_workers=1`` (or zero/one items) degrades to a plain serial loop,
    which keeps tracebacks simple under test. Error semantics match the
    serial loop's: the *first* exception (in item order) propagates
    unchanged. On failure the pool is shut down cleanly — not-yet-started
    items are cancelled, already-running ones are awaited — so no worker
    thread outlives the call and no second exception is silently lost.
    """
    seq: Sequence[T] = list(items)
    workers = default_worker_count(len(seq)) if max_workers is None \
        else max(1, max_workers)
    if len(seq) <= 1 or workers == 1:
        return [fn(item) for item in seq]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in seq]
        try:
            wait(futures, return_when=FIRST_EXCEPTION)
        finally:
            # Reached on failure *or* on the wait itself being interrupted
            # (KeyboardInterrupt): drop everything not yet running so the
            # pool's __exit__ joins promptly instead of draining the queue.
            for future in futures:
                future.cancel()
        for future in futures:
            if not future.cancelled() and future.exception() is not None:
                raise future.exception()  # first failure in item order
        return [future.result() for future in futures]
