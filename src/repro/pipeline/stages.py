"""The IR-container pipeline stages (paper Sec. 4.2-4.3, Fig. 7).

The monolithic ``build_ir_container`` is decomposed into six independently
testable stages wired through the :mod:`repro.pipeline.engine` dataflow:

1. :class:`ConfigureStage` — run every build configuration, collect the
   translation units, and share TUs whose full command (plus generated
   build-dir content) already coincides.
2. :class:`PreprocessStage` — preprocess each distinct (source, config
   headers, frontend defines) combination once — through the
   :class:`~repro.containers.store.ArtifactCache`, so repeated builds skip
   the work entirely — and partition TUs by preprocessed text.
3. :class:`OpenMPStage` — the Clang-AST-style analysis that drops
   ``-fopenmp`` from the identity of TUs containing no OpenMP constructs.
4. :class:`VectorizeStage` — vectorization delay: ``-msimd``/``-O`` flags
   leave the identity entirely; the ISA binds at deployment.
5. :class:`IRCompileStage` — compile one IR per surviving equivalence
   class (cache-aware, parallel); :class:`StatsOnlyIRStage` is the
   dedup-analysis-only variant the statistics benchmarks use.
6. :class:`ImageAssemblyStage` — pack IRs, sources, manifests and
   annotations into the OCI image (architecture ``llvm-ir``).

The old ``stages=`` ablation tuple is now literally "which stages to
register": :func:`build_ir_pipeline` constructs the engine accordingly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.buildsys import configure_cached, make_include_resolver
from repro.compiler import Compiler
from repro.compiler.driver import classify_flags, compile_to_ir_cached
from repro.compiler.parser import parse
from repro.compiler.passes import detect_openmp
from repro.containers.image import (
    ANNOTATION_IR_FORMAT,
    ANNOTATION_SPECIALIZATION,
    Image,
    ImageConfig,
    Layer,
    Platform,
)
from repro.pipeline.engine import Pipeline, Stage
from repro.pipeline.parallel import parallel_map
from repro.util.hashing import content_digest, stable_hash

IR_FORMAT = "xaas-region-ir-v1"

#: Dedup stages in paper order; the ablation tuple selects a subset.
DEDUP_STAGES = ("preprocess", "openmp", "vectorize")


@dataclass(frozen=True)
class TranslationUnit:
    """One compilation task inside one configuration."""

    config: str
    target: str
    source: str
    flags: tuple[str, ...]


def config_name(options: dict[str, str]) -> str:
    """Canonical name of a build configuration (stable across callers)."""
    return "-".join(f"{k.lower()}_{v.lower()}" for k, v in sorted(options.items())) \
        or "default"


def tree_fingerprint(tree) -> str:
    """Content digest over a whole source tree — the cache's coarse guard:
    any source or header edit invalidates every derived artifact."""
    return tree.fingerprint()


def ast_confirms_openmp(preprocessed: str) -> bool:
    """The authoritative AST check; falls back to the textual scan on
    sources outside the C subset."""
    try:
        return detect_openmp(parse(preprocessed))
    except Exception:
        return True


def _family_of(target_flags: tuple[str, ...], default: str) -> str:
    for flag in target_flags:
        if flag.startswith("--target="):
            return flag.split("=", 1)[1]
    return default


# -- stage 1: configuration ----------------------------------------------------


class ConfigureStage(Stage):
    """Generate every configuration; share TUs with identical commands.

    Configurations resolve through the artifact cache
    (:func:`~repro.buildsys.configure_cached`): on a warm store the
    build-script interpreter never runs, which is what keeps the per-job
    warm rebuilds of the cluster scheduler cheap.
    """

    name = "configure"
    consumes = ("app", "configs", "env", "stats", "cache")
    produces = ("configurations", "tus", "gen_digest", "tree_digest", "groups")

    def run(self, ctx) -> None:
        app = ctx.require("app")
        stats = ctx.require("stats")
        env = ctx.require("env")
        cache = ctx.require("cache")
        tree_digest = tree_fingerprint(app.tree)
        configurations = {}
        tus: list[TranslationUnit] = []
        for options in ctx.require("configs"):
            name = config_name(options)
            cfg, fresh = configure_cached(app.tree, options, env=env,
                                          name=name, build_dir="/xaas/build",
                                          cache=cache, tree_digest=tree_digest)
            stats.configure_ops += 1 if fresh else 0
            configurations[name] = cfg
            for cmd in cfg.compile_commands:
                tus.append(TranslationUnit(name, cmd.target, cmd.source, cmd.flags))
        stats.total_tus = len(tus)

        # Configuration-stage identity: the full command *plus* the content
        # of the generated build directory (config headers) — two
        # configurations with identical command lines still differ if
        # configure emitted different headers into the build dir.
        gen_digest = {name: stable_hash(sorted(
            (p, content_digest(c)) for p, c in cfg.generated_files.items()))
            for name, cfg in configurations.items()}
        groups: dict[str, list[TranslationUnit]] = {}
        for tu in tus:
            key = stable_hash({"t": tu.target, "s": tu.source,
                               "f": list(tu.flags), "gen": gen_digest[tu.config]})
            groups.setdefault(key, []).append(tu)
        stats.after_configuration = len(groups)

        # Fraction of repeat TUs whose raw flags match no earlier config.
        per_task: dict[tuple[str, str], set[str]] = {}
        for tu in tus:
            per_task.setdefault((tu.target, tu.source), set()).add(
                stable_hash([list(tu.flags), gen_digest[tu.config]]))
        repeats = sum(len(v) - 1 for v in per_task.values() if len(v) > 1)
        total_repeat_slots = stats.total_tus - len(per_task)
        stats.incompatible_flag_fraction = (
            repeats / total_repeat_slots if total_repeat_slots else 0.0)

        ctx.publish("configurations", configurations)
        ctx.publish("tus", tus)
        ctx.publish("gen_digest", gen_digest)
        ctx.publish("tree_digest", tree_digest)
        ctx.publish("groups", groups)


# -- stage 2: preprocessing ----------------------------------------------------


class PreprocessStage(Stage):
    """Preprocess each distinct TU identity once; partition by output text.

    Distinct identities are preprocessed through the artifact cache (misses
    run concurrently); TUs whose canonical output coincides can share an IR
    unless distinguished by remaining non-define flags.
    """

    name = "preprocess"
    consumes = ("app", "tus", "configurations", "gen_digest", "tree_digest",
                "stats", "cache", "max_workers")
    produces = ("tu_attrs", "groups")

    def run(self, ctx) -> None:
        app = ctx.require("app")
        tus = ctx.require("tus")
        configurations = ctx.require("configurations")
        gen_digest = ctx.require("gen_digest")
        tree_digest = ctx.require("tree_digest")
        stats = ctx.require("stats")
        cache = ctx.require("cache")

        # One classification + cache-key per TU; unique keys in first-seen
        # order so the parallel fan-out stays deterministic.
        per_tu: list[dict] = []
        unique: dict[str, tuple[dict, TranslationUnit]] = {}
        for tu in tus:
            cls = classify_flags(list(tu.flags))
            # -fopenmp belongs in the identity: Compiler.preprocess defines
            # _OPENMP under it, so TUs differing only in -fopenmp may
            # preprocess differently. (The old monolith's in-build cache
            # aliased them; a persistent cache must not.)
            parts = {
                "s": tu.source, "tree": tree_digest,
                "gen": gen_digest[tu.config],
                "fe": sorted(f for f in cls.frontend
                             if f.startswith(("-D", "-U", "-I"))
                             or f == "-fopenmp"),
            }
            key = cache.cache_key("preprocess", parts)
            per_tu.append({"cls": cls, "pp_key": key,
                           "fopenmp": "-fopenmp" in cls.frontend})
            unique.setdefault(key, (parts, tu))

        # Resolve every unique identity: cache hit or concurrent preprocess.
        resolved: dict[str, tuple[str, bool]] = {}  # key -> (text digest, omp)
        missing: list[tuple[str, dict, TranslationUnit]] = []
        for key, (parts, tu) in unique.items():
            entry = cache.get("preprocess", parts)
            if entry is not None:
                payload = json.loads(entry.payload)
                resolved[key] = (payload["text_digest"], payload["has_omp"])
            else:
                missing.append((key, parts, tu))

        def _preprocess(item):
            _key, _parts, tu = item
            cfg = configurations[tu.config]
            compiler = Compiler(make_include_resolver(app.tree, cfg))
            pre = compiler.preprocess(app.tree.read(tu.source),
                                      list(tu.flags), tu.source)
            has_omp = pre.has_openmp_pragma and ast_confirms_openmp(pre.text)
            return pre.text, has_omp

        results = parallel_map(_preprocess, missing, ctx.require("max_workers"))
        stats.preprocess_ops += len(missing)
        for (key, parts, _tu), (text, has_omp) in zip(missing, results):
            # The canonical text goes in its own content-addressed blob —
            # this is what lets a cold process on a persistent/remote store
            # (repro.store backends) replay it via text_digest; the
            # indexed payload stays small so warm hits are O(1) in text size.
            text_digest = cache.put_blob(text)
            resolved[key] = (text_digest, has_omp)
            cache.put("preprocess", parts, json.dumps(
                {"text_digest": text_digest, "has_omp": has_omp},
                sort_keys=True))

        groups: dict[str, list[TranslationUnit]] = {}
        for tu, attrs in zip(tus, per_tu):
            text_digest, has_omp = resolved[attrs["pp_key"]]
            attrs["pp"] = text_digest
            attrs["has_omp"] = has_omp
            # Until the OpenMP stage refines it, -fopenmp always splits.
            attrs["omp_relevant"] = attrs["fopenmp"]
            cls = attrs["cls"]
            key = stable_hash({"s": tu.source, "pp": text_digest,
                               "omp": attrs["fopenmp"],
                               "tgt": list(cls.target), "opt": list(cls.opt)})
            groups.setdefault(key, []).append(tu)
        stats.after_preprocessing = len(groups)

        ctx.publish("tu_attrs", per_tu)
        ctx.publish("groups", groups)


# -- stage 3: OpenMP detection -------------------------------------------------


class OpenMPStage(Stage):
    """Drop ``-fopenmp`` from the identity of TUs without OpenMP constructs."""

    name = "openmp"
    consumes = ("tus", "tu_attrs", "stats")
    produces = ("tu_attrs", "groups")

    def run(self, ctx) -> None:
        tus = ctx.require("tus")
        tu_attrs = ctx.require("tu_attrs")
        stats = ctx.require("stats")
        groups: dict[str, list[TranslationUnit]] = {}
        for tu, attrs in zip(tus, tu_attrs):
            attrs["omp_relevant"] = attrs["fopenmp"] and attrs["has_omp"]
            cls = attrs["cls"]
            key = stable_hash({"s": tu.source, "pp": attrs["pp"],
                               "omp": attrs["omp_relevant"],
                               "tgt": list(cls.target), "opt": list(cls.opt)})
            groups.setdefault(key, []).append(tu)
        stats.after_openmp = len(groups)
        ctx.publish("tu_attrs", tu_attrs)
        ctx.publish("groups", groups)


# -- stage 4: vectorization delay ----------------------------------------------


class VectorizeStage(Stage):
    """Strip ``-msimd``/``-O`` from the identity: the ISA binds at deploy."""

    name = "vectorize"
    consumes = ("tus", "tu_attrs", "arch_family", "stats")
    produces = ("groups",)

    def run(self, ctx) -> None:
        arch_family = ctx.require("arch_family")
        groups: dict[str, list[TranslationUnit]] = {}
        for tu, attrs in zip(ctx.require("tus"), ctx.require("tu_attrs")):
            key = stable_hash({"s": tu.source, "pp": attrs["pp"],
                               "omp": attrs["omp_relevant"],
                               "family": _family_of(attrs["cls"].target,
                                                    arch_family)})
            groups.setdefault(key, []).append(tu)
        ctx.publish("groups", groups)


# -- stage 5: IR compilation ---------------------------------------------------


class IRCompileStage(Stage):
    """Compile one IR per equivalence class — cache-aware and parallel."""

    name = "ir-compile"
    consumes = ("app", "configurations", "gen_digest", "tree_digest",
                "groups", "cache", "stats", "max_workers")
    produces = ("ir_files", "ir_modules", "group_to_ir")

    def run(self, ctx) -> None:
        app = ctx.require("app")
        configurations = ctx.require("configurations")
        gen_digest = ctx.require("gen_digest")
        tree_digest = ctx.require("tree_digest")
        groups = ctx.require("groups")
        cache = ctx.require("cache")
        stats = ctx.require("stats")
        stats.final_irs = len(groups)

        def _compile_one(item):
            _key, members = item
            rep = members[0]
            frontend_flags = [f for f in rep.flags
                              if f.startswith(("-D", "-U", "-I")) or f == "-fopenmp"]
            cfg = configurations[rep.config]
            compiler = Compiler(make_include_resolver(app.tree, cfg))
            return compile_to_ir_cached(
                compiler, app.tree.read(rep.source), frontend_flags, rep.source,
                cache=cache,
                context_key={"tree": tree_digest, "gen": gen_digest[rep.config]})

        items = list(groups.items())
        compiled = parallel_map(_compile_one, items,
                                ctx.require("max_workers"))
        ir_files: dict[str, str] = {}
        ir_modules: dict[str, object] = {}
        group_to_ir: dict[str, str] = {}
        for (key, _members), (text, module, fresh) in zip(items, compiled):
            digest = content_digest(text)
            ir_files[digest] = text
            ir_modules[digest] = module
            group_to_ir[key] = digest
            stats.ir_compile_ops += 1 if fresh else 0
        ctx.publish("ir_files", ir_files)
        ctx.publish("ir_modules", ir_modules)
        ctx.publish("group_to_ir", group_to_ir)


class StatsOnlyIRStage(Stage):
    """Dedup analysis without compiling IRs (large-scale statistics runs)."""

    name = "ir-compile"
    consumes = ("groups", "stats")
    produces = ("ir_files", "ir_modules", "group_to_ir")

    def run(self, ctx) -> None:
        groups = ctx.require("groups")
        ctx.require("stats").final_irs = len(groups)
        ctx.publish("ir_files", {})
        ctx.publish("ir_modules", {})
        ctx.publish("group_to_ir", {key: "sha256:" + "0" * 64 for key in groups})


# -- stage 6: image assembly ---------------------------------------------------


class ImageAssemblyStage(Stage):
    """Per-configuration manifests + OCI image (architecture ``llvm-ir``)."""

    name = "assemble-image"
    consumes = ("app", "configs", "configurations", "groups", "group_to_ir",
                "ir_files", "store", "arch_family", "stats")
    produces = ("manifests", "image")

    def run(self, ctx) -> None:
        app = ctx.require("app")
        configs = ctx.require("configs")
        configurations = ctx.require("configurations")
        group_to_ir = ctx.require("group_to_ir")

        manifests: dict[str, list[dict]] = {name: [] for name in configurations}
        for key, members in ctx.require("groups").items():
            for tu in members:
                cls = classify_flags(list(tu.flags))
                manifests[tu.config].append({
                    "target": tu.target, "source": tu.source,
                    "ir": group_to_ir[key],
                    "lowering_flags": list(cls.target) + list(cls.opt),
                })
        image = assemble_image(app, configs, ctx.require("ir_files"), manifests,
                               ctx.require("store"), ctx.require("arch_family"),
                               ctx.require("stats"))
        ctx.publish("manifests", manifests)
        ctx.publish("image", image)


def assemble_image(app, configs, ir_files, manifests, store,
                   arch_family, stats) -> Image:
    source_layer = Layer({f"/xaas/src/{p}": c for p, c in app.tree.files.items()},
                         comment="application source (system-dependent files + install)")
    ir_layer = Layer({f"/xaas/ir/{d.split(':', 1)[1][:24]}.ir": text
                      for d, text in ir_files.items()},
                     comment="deduplicated IR files")
    manifest_layer = Layer(
        {f"/xaas/manifests/{name}.json": json.dumps(entries, sort_keys=True, indent=1)
         for name, entries in manifests.items()},
        comment="per-configuration install manifests")
    toolchain_layer = Layer({
        "/xaas/toolchain/clang": "clang-19 (repro simulated toolchain)",
        "/xaas/toolchain/llvm-link": "llvm-link (repro)",
    }, comment="LLVM toolchain for deployment-time lowering")
    config_layer = Layer({
        "/xaas/configs.json": json.dumps(configs, sort_keys=True, indent=1),
        "/xaas/stats.json": json.dumps({
            "total_tus": stats.total_tus, "final_irs": stats.final_irs,
            "reduction": stats.reduction}, sort_keys=True),
    }, comment="available build configurations")
    platform = Platform("llvm-ir", variant=arch_family)
    annotations = {
        ANNOTATION_IR_FORMAT: IR_FORMAT,
        ANNOTATION_SPECIALIZATION: json.dumps(
            {k: sorted({c.get(k, "") for c in configs})
             for k in sorted({key for c in configs for key in c})},
            sort_keys=True),
        "org.xaas.app": app.name,
    }
    return Image.build(
        [toolchain_layer, source_layer, ir_layer, manifest_layer, config_layer],
        ImageConfig(platform=platform, labels={"org.xaas.kind": "ir-container"}),
        store, annotations)


# -- pipeline construction -----------------------------------------------------

PIPELINE_INPUTS = ("app", "configs", "env", "store", "arch_family",
                   "stats", "cache", "max_workers")


def build_ir_pipeline(stages: tuple[str, ...] = DEDUP_STAGES,
                      compile_irs: bool = True) -> Pipeline:
    """Wire the IR-container pipeline; ``stages`` selects the dedup stages.

    The OpenMP and vectorization stages consume the preprocessing stage's
    outputs, so without ``"preprocess"`` they cannot be registered and the
    pipeline degrades to configuration-stage identity — exactly the
    paper's ablation semantics.
    """
    pipeline = Pipeline("ir-container", inputs=PIPELINE_INPUTS)
    pipeline.register(ConfigureStage())
    if "preprocess" in stages:
        pipeline.register(PreprocessStage())
        if "openmp" in stages:
            pipeline.register(OpenMPStage())
        if "vectorize" in stages:
            pipeline.register(VectorizeStage())
    pipeline.register(IRCompileStage() if compile_irs else StatsOnlyIRStage())
    pipeline.register(ImageAssemblyStage())
    return pipeline
