"""Pipeline accounting: dedup funnel, cache traffic, per-stage timing.

``PipelineStats`` started life as the Hypothesis-1 scorecard (Sec. 6.4 —
how many of the T translation units survive to become IRs) and now also
carries the operational counters the staged engine produces: artifact-cache
hits and misses per namespace, how many preprocess/IR-compile operations
actually executed (zero on a fully warm cache), and wall-clock seconds per
stage.

:meth:`PipelineStats.publish_to` folds one build's counters into a
:class:`~repro.telemetry.registry.MetricsRegistry` — cluster workers call
it after every job so their heartbeat metric deltas carry pipeline-level
throughput (ops executed, cache traffic, stage seconds) alongside the
store/wire counters, and ``repro cluster top`` can aggregate them
farm-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PipelineStats:
    """Per-stage accounting for Hypothesis 1 (Sec. 6.4) plus cache/timing."""

    configurations: int = 0
    total_tus: int = 0
    after_configuration: int = 0
    after_preprocessing: int = 0
    after_openmp: int = 0
    final_irs: int = 0
    incompatible_flag_fraction: float = 0.0
    openmp_flag_dropped: int = 0
    vector_flag_dropped: int = 0
    # Operations actually executed this build (cache hits skip them).
    configure_ops: int = 0
    preprocess_ops: int = 0
    ir_compile_ops: int = 0
    # Artifact-cache traffic this build, per namespace ("preprocess", "ir").
    cache_hits: dict[str, int] = field(default_factory=dict)
    cache_misses: dict[str, int] = field(default_factory=dict)
    # Wall-clock seconds per registered stage.
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def reduction(self) -> float:
        """Fraction of TU compilations avoided (the paper's headline %)."""
        if self.total_tus == 0:
            return 0.0
        return 1.0 - self.final_irs / self.total_tus

    def validates_hypothesis1(self) -> bool:
        """T' < sum(T_i): strictly fewer IRs than translation units."""
        return self.final_irs < self.total_tus

    def cache_hit_total(self) -> int:
        return sum(self.cache_hits.values())

    def summary(self) -> str:
        return (f"{self.configurations} configs, {self.total_tus} TUs -> "
                f"{self.final_irs} IRs ({self.reduction:.1%} reduction); "
                f"stages: config {self.after_configuration}, "
                f"preprocess {self.after_preprocessing}, "
                f"openmp {self.after_openmp}, vectorize {self.final_irs}")

    def publish_to(self, registry) -> None:
        """Fold this build's counters into ``registry`` (additive — safe
        to call once per build on a long-lived registry)."""
        counters = {
            "pipeline.configure_ops": self.configure_ops,
            "pipeline.preprocess_ops": self.preprocess_ops,
            "pipeline.ir_compile_ops": self.ir_compile_ops,
            "pipeline.total_tus": self.total_tus,
            "pipeline.final_irs": self.final_irs,
        }
        for name, value in counters.items():
            if value:
                registry.counter(name).inc(value)
        for namespace, hits in self.cache_hits.items():
            if hits:
                registry.counter("cache.hits",
                                 namespace=namespace).inc(hits)
        for namespace, misses in self.cache_misses.items():
            if misses:
                registry.counter("cache.misses",
                                 namespace=namespace).inc(misses)
        for stage, seconds in self.stage_seconds.items():
            registry.histogram("pipeline.stage.duration_seconds",
                               stage=stage).observe(seconds)

    def to_json(self) -> dict:
        """Machine-readable form (``repro.cli ir-build --json``)."""
        return {
            "configurations": self.configurations,
            "total_tus": self.total_tus,
            "after_configuration": self.after_configuration,
            "after_preprocessing": self.after_preprocessing,
            "after_openmp": self.after_openmp,
            "final_irs": self.final_irs,
            "reduction": self.reduction,
            "incompatible_flag_fraction": self.incompatible_flag_fraction,
            "openmp_flag_dropped": self.openmp_flag_dropped,
            "vector_flag_dropped": self.vector_flag_dropped,
            "configure_ops": self.configure_ops,
            "preprocess_ops": self.preprocess_ops,
            "ir_compile_ops": self.ir_compile_ops,
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "stage_seconds": dict(self.stage_seconds),
        }
