"""Persistent shared artifact-store subsystem.

The paper's deployment story (Sec. 5.2) rests on content-addressed,
immutable artifacts; PR 1's :class:`~repro.containers.store.ArtifactCache`
keys preprocess/IR/lowered artifacts by input digests but lives and dies
with one process. This package supplies the missing persistence layer:

* :class:`~repro.store.backend.Backend` — the blob-storage protocol every
  store speaks: content-addressed blobs (``put``/``get``/``has``/``delete``)
  plus mutable named *refs* (git-style pointers) for the cache index and
  pin set.
* :class:`~repro.store.backend.MemoryBackend` — today's in-process dict
  semantics, now behind the protocol.
* :class:`~repro.store.backend.FileBackend` — blobs persisted under a
  sharded ``objects/ab/cdef...`` directory layout with atomic writes, so
  CI runs and fleet builders warm-start from disk.
* :class:`~repro.store.remote.RemoteBackend` /
  :class:`~repro.store.remote.StoreServer` — a small push/pull/has wire
  protocol over a local socket, letting two processes share one store.
* :class:`~repro.store.async_server.AsyncStoreServer` — the same
  protocol from a ``selectors`` event loop: hundreds of pooled sessions
  on one thread, streamed blob bodies, write-side backpressure.
* :class:`~repro.store.tiered.TieredBackend` — a fast local tier in
  front of a shared upstream: read-through promotion, single-flight miss
  de-duplication, batched write-back flush, refs always upstream — the
  ccache/sccache local-cache-per-builder topology.
* :func:`~repro.store.gc.collect` — size accounting and LRU garbage
  collection over a cache's access-ordered index, honouring pinned
  manifests.
* :func:`~repro.store.transfer.export_store` /
  :func:`~repro.store.transfer.import_store` — move a whole store between
  machines as one archive.

`repro.containers.store` layers :class:`BlobStore`/:class:`ArtifactCache`
on top of these backends without changing their call sites.
"""

from repro.store.backend import (
    INDEX_REF,
    INDEX_REF_PREFIX,
    PINS_REF,
    Backend,
    BackendError,
    BlobNotFound,
    FileBackend,
    MemoryBackend,
    index_ref_name,
    index_ref_names,
)
from repro.store.async_server import AsyncStoreServer
from repro.store.gc import GCReport, collect
from repro.store.remote import (RemoteBackend, RemoteStoreError, StoreServer,
                                StoreUnavailable)
from repro.store.tiered import TierDegraded, TieredBackend
from repro.store.transfer import export_store, import_store
from repro.store.wire import SessionPool, WireSession

__all__ = [
    "Backend", "BackendError", "BlobNotFound", "FileBackend", "MemoryBackend",
    "INDEX_REF", "INDEX_REF_PREFIX", "PINS_REF",
    "index_ref_name", "index_ref_names",
    "GCReport", "collect",
    "AsyncStoreServer", "RemoteBackend", "RemoteStoreError", "StoreServer",
    "StoreUnavailable",
    "TierDegraded", "TieredBackend",
    "SessionPool", "WireSession",
    "export_store", "import_store",
]
