"""Event-loop store server: one thread multiplexing every connection.

:class:`AsyncStoreServer` serves the exact wire protocol of
:class:`~repro.store.remote.StoreServer` — same commands, same framing,
same error surfaces — but from a ``selectors``-based event loop instead
of a thread per connection. A build farm's worth of pooled
:class:`~repro.store.wire.WireSession`\\ s (hundreds of mostly-idle
sockets, bursts of pipelined requests) costs one file descriptor each
and zero threads, instead of a stack and a scheduler entry per socket.

Design:

* **Non-blocking sockets, incremental parsing.** Each connection owns an
  input buffer and a small state machine (``header`` -> ``body`` /
  ``chunks`` -> back), so a request header split across ten TCP segments
  or a 4 MiB chunked body arriving at line rate both parse without a
  dedicated thread blocking on ``recv``.
* **A small executor for blocking backend I/O.** Command dispatch against
  a persistent backend (``FileBackend`` disk ops) runs on a
  ``ThreadPoolExecutor`` of a few workers; results come back to the loop
  through a completion queue and a socketpair waker. Streamed transfers
  ride the same executor: a chunked put's writer opens, writes (in
  batches of whatever chunks arrived since the last batch) and commits
  off-loop, and a chunked get's size probe and disk reads are pulled
  off-loop an outbuf's worth at a time — one contended disk never stalls
  the other connections. Against an in-memory backend, everything runs
  inline — the ops are microseconds and the executor hop would dominate.
* **Write-side backpressure.** Responses append to a bounded
  per-connection output buffer. When a slow reader lets it reach
  ``max_outbuf_bytes``, the loop stops *reading* from that connection
  (so it cannot pipeline more work) and stops pulling from an in-flight
  chunked response until the buffer drains below the bound again. The
  same bound caps a chunked put's not-yet-written backlog when the disk
  is the slow side. One stalled peer costs one buffer, never the loop.
* **O(chunk) body residency.** Streamed puts feed each chunk straight
  into the backend's incremental blob writer; streamed gets pull the
  blob ``CHUNK_SIZE`` bytes at a time, paced by the output buffer. The
  ``peak_body_bytes`` high-water mark in :class:`ServerMetrics` is the
  observable: a 4 MiB streamed transfer moves it by one chunk, not one
  blob.
* **max_body_bytes.** An oversized fixed body is consumed and discarded
  (framing survives), an oversized chunked body aborts its writer and
  drains to the terminator; both get a clean ``"too_large"`` error frame
  and the session continues.
* **Fault isolation.** A header that parses as JSON but is malformed
  where it counts (``"size": "abc"``) fails that session with an error
  frame; a bug anywhere in a per-connection handler closes that
  connection. Neither reaches the event loop — a single poisoned packet
  must never take down the daemon.

Ordering: responses must leave in request order, so while a chunked
response is being pumped (or a request is executing) the loop parses no
further requests from that connection — pipelined input simply waits in
the buffer. A half-close from a one-shot client is honored the same way
the thread server honors it: everything already buffered is parsed and
answered, the output flushed, then the connection closed.

Connection identity: the loop never tests liveness by fd membership —
fds are reused, so a completion for a connection that died mid-request
could otherwise act on the unrelated connection that inherited its fd.
Every check is ``_conns.get(conn.fd) is conn``, and :meth:`_close` only
evicts the table entry that still maps to the closing object.
"""

from __future__ import annotations

import collections
import json
import selectors
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.store.backend import (
    Backend,
    BlobNotFound,
    iter_blob,
    open_blob_writer,
)
from repro.store.remote import (
    DEFAULT_MAX_BODY_BYTES,
    ServerMetrics,
    _too_large_response,
    body_declared,
    dispatch_command,
)
from repro.store.wire import (
    CHUNK_PREFIX_BYTES,
    CHUNK_SIZE,
    CHUNK_TERMINATOR,
    MAX_CHUNK_BYTES,
    MAX_HEADER_BYTES,
    chunk_prefix,
    encode_message,
    parse_chunk_prefix,
)
from repro.telemetry import events as _events
from repro.telemetry.history import HistorySampler, MetricsHistory
from repro.telemetry.trace import TraceRecorder, begin_wire_span, end_wire_span

__all__ = ["AsyncStoreServer", "DEFAULT_MAX_OUTBUF_BYTES"]

#: Per-connection output-buffer bound: the backpressure high-water mark.
#: Reaching it pauses both reads from that peer and chunk production for
#: it. Large enough to keep a healthy reader's pipe full, small enough
#: that a thousand stalled peers still cost well under a gigabyte. The
#: same bound caps a chunked put's parsed-but-unwritten backlog.
DEFAULT_MAX_OUTBUF_BYTES = 1 << 20

# Sized for bulk transfer: reading 64 KiB at a time would cost a full
# select round per chunk frame and cap large-blob throughput well below
# loopback speed; a 256 KiB recv and a send that can flush a whole
# high-water output buffer keep the loop syscall-bound, not round-bound.
_RECV_BYTES = 1 << 18
_SEND_BYTES = 1 << 20

_ACCEPT = "accept"
_WAKER = "waker"


class _Connection:
    """Per-connection parse/write state for the event loop."""

    __slots__ = ("sock", "fd", "inbuf", "pos", "outbuf", "state", "need",
                 "req", "discard", "declared", "writer", "stream",
                 "stream_total", "failure", "busy", "eof", "closing",
                 "events", "registered", "io_busy", "pending",
                 "pending_bytes", "put_done", "put_over", "opened",
                 "put_digest", "trace_tok", "paused")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.fd = sock.fileno()
        self.inbuf = bytearray()
        self.pos = 0            # parse offset into inbuf (compacted lazily)
        self.outbuf = bytearray()
        self.state = "header"
        self.need = 0           # fixed-body bytes still owed
        self.req = None         # header awaiting its fixed body
        self.discard = False    # fixed body being drained (too large)
        self.declared = 0       # size of the body being drained
        self.writer = None      # incremental blob writer (chunked put)
        self.stream = None      # chunk iterator (chunked response)
        self.stream_total = 0   # chunked-put payload bytes so far
        self.failure = None     # deferred chunked-put error (bad digest...)
        self.busy = False       # a request is executing; don't parse more
        self.eof = False        # peer half-closed its write side
        self.closing = False    # flush outbuf, then close
        self.events = 0
        self.registered = False
        # Executor-routed streamed I/O (persistent backends only):
        self.io_busy = False    # a disk op for this conn is in flight
        self.pending = []       # parsed put chunks awaiting their write op
        self.pending_bytes = 0
        self.put_done = False   # terminator seen; commit once writes drain
        self.put_over = False   # body exceeded max_body_bytes; draining
        self.opened = False     # blob writer open was attempted
        self.put_digest = None
        self.trace_tok = None   # (wire-span token, cmd) of a traced request
        self.paused = False     # reads suspended by write-side backpressure


class AsyncStoreServer:
    """Drop-in :class:`~repro.store.remote.StoreServer` replacement on a
    ``selectors`` event loop.

    Usage is identical (``start()``/``stop()``/context manager,
    ``address``, ``stats()``); only the concurrency model differs. The
    default for ``cache serve`` — pass ``--threaded`` there for the old
    flavor.
    """

    flavor = "async"

    def __init__(self, backend: Backend, host: str = "127.0.0.1",
                 port: int = 0,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 max_outbuf_bytes: int = DEFAULT_MAX_OUTBUF_BYTES,
                 executor_workers: "int | None" = None,
                 history_interval: float = 1.0):
        self.backend = backend
        self.max_body_bytes = max_body_bytes
        self.max_outbuf_bytes = max_outbuf_bytes
        self.metrics = ServerMetrics()
        self._backpressure_pauses = self.metrics.registry.counter(
            "store.server.backpressure_pauses")
        #: Spans recorded for traced requests, drained by the `telemetry`
        #: wire op (bounded; untraced traffic records nothing).
        self.recorder = TraceRecorder()
        #: Fixed-memory metrics history fed by a local sampler thread
        #: while the server runs; surfaced by the `telemetry` wire op.
        self.history = MetricsHistory()
        self._history_sampler = HistorySampler(
            self.metrics.registry, self.history, interval=history_interval)
        if executor_workers is None:
            # Persistent backends block on disk; memory ones would pay
            # more for the executor hop than for the op itself.
            executor_workers = 4 if getattr(backend, "persistent", False) \
                else 0
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="store-io") if executor_workers else None
        self._done: collections.deque = collections.deque()
        self._conns: dict[int, _Connection] = {}
        self._selector = selectors.DefaultSelector()
        self._listen = socket.create_server((host, port), backlog=256,
                                            reuse_port=False)
        self._listen.setblocking(False)
        self._selector.register(self._listen, selectors.EVENT_READ, _ACCEPT)
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ,
                                _WAKER)
        self._cas_lock = threading.Lock()
        self._stopping = False
        self._thread: "threading.Thread | None" = None

    # -- public surface (parity with StoreServer) ------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listen.getsockname()[:2]
        return str(host), int(port)

    @property
    def connections_served(self) -> int:
        return self.metrics.connections_served

    @property
    def requests_served(self) -> int:
        return self.metrics.requests_served

    def stats(self) -> dict:
        """Traffic counters — exactly
        :data:`~repro.store.remote.SERVER_STATS_FIELDS`, the schema
        shared with the thread flavor."""
        return self.metrics.snapshot()

    def cas_ref(self, name: str, expected: bytes | None, data: bytes) -> bool:
        """Atomic server-side ref compare-and-swap (same contract as the
        thread server's)."""
        cas = getattr(self.backend, "compare_and_set_ref", None)
        if cas is not None:
            return bool(cas(name, expected, data))
        with self._cas_lock:  # pragma: no cover - all bundled backends CAS
            if self.backend.get_ref(name) != expected:
                return False
            self.backend.set_ref(name, data)
            return True

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run,
                                        name="store-server-async",
                                        daemon=True)
        self._thread.start()
        self._history_sampler.start()
        return self.address

    def stop(self) -> None:
        self._history_sampler.stop()
        self._stopping = True
        self._wakeup()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        for sock in (self._listen, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._selector.close()

    def __enter__(self) -> "AsyncStoreServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- event loop ------------------------------------------------------------

    def _wakeup(self) -> None:
        try:
            self._wake_send.send(b"\x01")
        except OSError:  # pragma: no cover - full pipe already wakes us
            pass

    def _live(self, conn: _Connection) -> bool:
        """Whether ``conn`` is still THE connection on its fd. Identity,
        not membership: a reused fd must never vouch for a dead object."""
        return self._conns.get(conn.fd) is conn

    def _run(self) -> None:
        while not self._stopping:
            for key, mask in self._selector.select():
                if key.data is _ACCEPT:
                    self._accept()
                elif key.data is _WAKER:
                    try:
                        while self._wake_recv.recv(1024):
                            pass
                    except BlockingIOError:
                        pass
                else:
                    conn = key.data
                    if not self._live(conn):
                        continue  # closed earlier this sweep
                    try:
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                        if self._live(conn) and \
                                mask & selectors.EVENT_WRITE:
                            self._on_writable(conn)
                    except Exception:  # a handler bug costs one connection,
                        self._close(conn)  # never the loop
            self._drain_done()
        for conn in list(self._conns.values()):
            self._close(conn)

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listen.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            conn = _Connection(sock)
            self._conns[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            conn.events = selectors.EVENT_READ
            conn.registered = True
            self.metrics.connection()

    def _close(self, conn: _Connection) -> None:
        if self._conns.get(conn.fd) is conn:
            del self._conns[conn.fd]
        if conn.registered:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            conn.registered = False
        conn.pending.clear()
        conn.pending_bytes = 0
        if conn.io_busy:
            # An executor op owns the writer/stream right now; its
            # completion callback sees the dead connection and cleans up.
            conn.writer = None
            conn.stream = None
        if conn.writer is not None:
            try:
                conn.writer.abort()
            except Exception:  # pragma: no cover
                pass
            conn.writer = None
        if conn.stream is not None:
            self._close_stream(conn.stream)
            conn.stream = None
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass

    @staticmethod
    def _close_stream(stream) -> None:
        close = getattr(stream, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # pragma: no cover
                pass

    def _update(self, conn: _Connection) -> None:
        """Recompute selector interest; close if the session is over."""
        if not self._live(conn):
            return
        if (not conn.outbuf and conn.stream is None and not conn.busy
                and not conn.io_busy):
            if conn.closing or (conn.eof and not conn.inbuf):
                self._close(conn)
                return
        events = 0
        want_read = (not conn.eof and not conn.closing and not conn.busy
                     and conn.stream is None)
        buffer_full = (len(conn.outbuf) >= self.max_outbuf_bytes
                       or conn.pending_bytes >= self.max_outbuf_bytes)
        if want_read and not buffer_full:
            events |= selectors.EVENT_READ
        if want_read and buffer_full:
            if not conn.paused:  # edge, not level: one event per pause
                conn.paused = True
                self._backpressure_pauses.inc()
                _events.emit("warn", "backpressure pause: reads suspended",
                             fd=conn.fd, outbuf_bytes=len(conn.outbuf),
                             pending_bytes=conn.pending_bytes,
                             max_outbuf_bytes=self.max_outbuf_bytes)
        elif conn.paused:
            conn.paused = False
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        if events == conn.events:
            return
        if not events:
            if conn.registered:
                self._selector.unregister(conn.sock)
                conn.registered = False
        elif conn.registered:
            self._selector.modify(conn.sock, events, conn)
        else:
            self._selector.register(conn.sock, events, conn)
            conn.registered = True
        conn.events = events if events else 0

    # -- reading / parsing -----------------------------------------------------

    def _on_readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_BYTES)
        except BlockingIOError:
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            conn.eof = True
        else:
            self.metrics.add_in(len(data))
            conn.inbuf += data
        self._process(conn)
        self._update(conn)

    def _process(self, conn: _Connection) -> None:
        """Advance the parse state machine over buffered input.

        Stops while a request executes or a chunked response streams —
        responses leave in request order, so pipelined input waits.
        Parsing moves ``conn.pos`` through ``inbuf`` and compacts once on
        the way out, so consuming a frame never memmoves the buffer tail
        (a 4 MiB chunked body is ~64 frames, not 64 buffer rewrites).
        """
        try:
            while (not conn.busy and not conn.closing
                    and conn.stream is None and self._live(conn)):
                if conn.state == "header":
                    if not self._parse_header(conn):
                        return
                elif conn.state == "body":
                    if not self._parse_body(conn):
                        return
                elif conn.state == "chunks":
                    if not self._parse_chunk(conn):
                        return
        finally:
            if conn.pos:
                del conn.inbuf[:conn.pos]
                conn.pos = 0

    def _fail(self, conn: _Connection, error: str) -> None:
        """Framing failure: answer once, then end the session (the frame
        stream cannot be resynchronized)."""
        self._respond(conn, {"ok": False, "error": error})
        conn.closing = True

    def _parse_header(self, conn: _Connection) -> bool:
        idx = conn.inbuf.find(b"\n", conn.pos)
        if idx < 0:
            if len(conn.inbuf) - conn.pos > MAX_HEADER_BYTES:
                self._fail(conn, "header too large")
            elif conn.eof and len(conn.inbuf) > conn.pos:
                self._fail(conn, "malformed header: truncated")
            return False
        line = bytes(conn.inbuf[conn.pos:idx])
        conn.pos = idx + 1
        if len(line) > MAX_HEADER_BYTES:
            self._fail(conn, "header too large")
            return False
        try:
            req = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            self._fail(conn, f"malformed header: {exc}")
            return False
        if not isinstance(req, dict):
            self._fail(conn, "malformed header: not an object")
            return False
        if req.get("cmd") == "bye":
            conn.closing = True
            return False
        self.metrics.request()
        # Traced request: remember a wire-span token; the span closes in
        # `_respond` when this request's response header is buffered
        # (responses leave in request order, so the pairing is exact).
        token = begin_wire_span(req.get("trace"))
        conn.trace_tok = (token, req.get("cmd")) if token is not None else None
        try:
            self._begin_request(conn, req)
        except Exception as exc:
            # Valid JSON, malformed where it counts ("size": "abc",
            # "blobs": 123): the body length is unknowable, so the
            # session ends — and the failure must never reach the loop.
            self._fail(conn, f"malformed header: {exc}")
            return False
        return True

    def _begin_request(self, conn: _Connection, req: dict) -> None:
        cmd = req.get("cmd")
        if req.get("chunked"):
            if cmd == "put":
                conn.state = "chunks"
                conn.stream_total = 0
                conn.failure = None
                conn.writer = None
                conn.put_done = False
                conn.put_over = False
                del conn.pending[:]
                conn.pending_bytes = 0
                conn.put_digest = req.get("digest")
                if self._executor is None:
                    try:
                        conn.writer = open_blob_writer(self.backend,
                                                       req["digest"])
                    except Exception as exc:
                        # Malformed digest or failed open (ENOSPC,
                        # EACCES): drain the chunk stream, then report.
                        conn.failure = exc
                    conn.opened = True
                else:
                    # The writer opens lazily inside the first I/O batch,
                    # off the loop thread.
                    conn.opened = False
                return
            if cmd == "get":
                self._begin_chunked_get(conn, req)
                return
            self._fail(conn, f"command {cmd!r} does not stream")
            return
        declared = body_declared(req)
        if declared > self.max_body_bytes:
            conn.state = "body"
            conn.need = declared
            conn.declared = declared
            conn.discard = True
            return
        if declared:
            conn.state = "body"
            conn.need = declared
            conn.discard = False
            conn.req = req
            return
        self._dispatch(conn, req, b"")

    def _parse_body(self, conn: _Connection) -> bool:
        avail = len(conn.inbuf) - conn.pos
        if conn.discard:
            take = min(avail, conn.need)
            conn.pos += take
            conn.need -= take
            if conn.need:
                if conn.eof:
                    self._fail(conn, f"short body: expected {conn.need} "
                                     f"more bytes")
                return False
            conn.discard = False
            conn.state = "header"
            self._respond(conn, _too_large_response(conn.declared,
                                                    self.max_body_bytes))
            return True
        if avail < conn.need:
            if conn.eof:
                self._fail(conn, f"short body: expected "
                                 f"{conn.need - avail} more bytes")
            return False
        body = bytes(conn.inbuf[conn.pos:conn.pos + conn.need])
        conn.pos += conn.need
        req, conn.req = conn.req, None
        conn.need = 0
        conn.state = "header"
        self.metrics.note_body(len(body))
        self._dispatch(conn, req, body)
        return True

    def _parse_chunk(self, conn: _Connection) -> bool:
        avail = len(conn.inbuf) - conn.pos
        if avail < CHUNK_PREFIX_BYTES:
            if conn.eof:
                self._fail(conn, "short body: chunk stream truncated")
            return False
        size = parse_chunk_prefix(conn.inbuf, conn.pos)
        if size == 0:
            conn.pos += CHUNK_PREFIX_BYTES
            conn.state = "header"
            if self._executor is None:
                self._finish_chunked_put(conn)
            else:
                # Writes may still be in flight; hold response ordering
                # (busy) and commit once the write queue drains.
                conn.busy = True
                conn.put_done = True
                self._drive_put(conn)
            return True
        if size > MAX_CHUNK_BYTES:
            self._fail(conn, f"chunk frame of {size} bytes exceeds "
                             f"{MAX_CHUNK_BYTES}")
            return False
        frame = CHUNK_PREFIX_BYTES + size
        if avail < frame:
            if conn.eof:
                self._fail(conn, "short body: chunk stream truncated")
            return False
        start = conn.pos + CHUNK_PREFIX_BYTES
        chunk = bytes(conn.inbuf[start:start + size])
        conn.pos += frame
        conn.stream_total += size
        if conn.stream_total > self.max_body_bytes:
            conn.put_over = True  # keep draining; answer at terminator
        if self._executor is None:
            self._put_chunk_inline(conn, chunk)
        elif not conn.put_over and conn.failure is None:
            self.metrics.note_body(len(chunk))
            conn.pending.append(chunk)
            conn.pending_bytes += size
            self._drive_put(conn)
        elif conn.put_over:
            self._drive_put(conn)  # abort the writer promptly
        return True

    def _put_chunk_inline(self, conn: _Connection, chunk: bytes) -> None:
        if conn.writer is None:
            return  # draining: failed open, overflow, or write failure
        self.metrics.note_body(conn.stream_total if conn.writer.buffered
                               else len(chunk))
        if conn.put_over:
            conn.writer.abort()
            conn.writer = None
            return
        try:
            conn.writer.write(chunk)
        except Exception as exc:  # disk full mid-stream, etc.
            conn.failure = exc
            conn.writer.abort()
            conn.writer = None

    # -- executing -------------------------------------------------------------

    def _dispatch(self, conn: _Connection, req: dict, body: bytes) -> None:
        self._submit(conn, lambda: self._run_command(req, body))

    def _run_command(self, req: dict, body: bytes) -> tuple[dict, bytes]:
        try:
            return dispatch_command(self.backend, self.cas_ref, req, body,
                                    server=self)
        except BlobNotFound as exc:
            return {"ok": False, "not_found": True, "error": str(exc)}, b""
        except Exception as exc:
            return {"ok": False, "error": str(exc)}, b""

    def _finish_chunked_put(self, conn: _Connection) -> None:
        writer, conn.writer = conn.writer, None
        failure, conn.failure = conn.failure, None
        total = conn.stream_total
        max_body = self.max_body_bytes

        def commit() -> tuple[dict, bytes]:
            if total > max_body:
                return _too_large_response(total, max_body), b""
            if failure is not None:
                return {"ok": False, "error": str(failure)}, b""
            try:
                writer.commit()
            except Exception as exc:  # integrity rejection and kin
                return {"ok": False, "error": str(exc)}, b""
            # NOT "size": that would declare a response body.
            return {"ok": True, "received": total}, b""

        self._submit(conn, commit)

    def _submit(self, conn: _Connection, fn) -> None:
        conn.busy = True
        if self._executor is None:
            self._finish(conn, fn())
            return
        future = self._executor.submit(fn)
        future.add_done_callback(
            lambda f, conn=conn: self._enqueue(
                conn, lambda c: self._finish_future(c, f)))

    def _enqueue(self, conn: _Connection, fn) -> None:
        """Executor thread: queue a loop-side completion, poke the loop."""
        self._done.append((conn, fn))
        self._wakeup()

    def _finish_future(self, conn: _Connection, future) -> None:
        try:
            result = future.result()
        except Exception as exc:  # pragma: no cover - _run_command catches
            result = ({"ok": False, "error": str(exc)}, b"")
        self._finish(conn, result)

    def _drain_done(self) -> None:
        while self._done:
            conn, fn = self._done.popleft()
            try:
                fn(conn)
                if self._live(conn):
                    self._process(conn)
                    self._update(conn)
            except Exception:  # pragma: no cover - completions clean up
                self._close(conn)

    def _finish(self, conn: _Connection, result: tuple[dict, bytes]) -> None:
        conn.busy = False
        if not self._live(conn):
            return
        header, payload = result
        self._respond(conn, header, payload)

    # -- executor-routed streamed I/O ------------------------------------------

    def _drive_put(self, conn: _Connection) -> None:
        """Advance a chunked put's disk I/O off the loop thread.

        At most one executor op per connection; chunks parsed meanwhile
        queue in ``conn.pending`` (bounded by the read-side backpressure
        in ``_update``). The writer opens lazily inside the first op,
        and the terminator's commit waits for the queue to drain — every
        disk touch happens on the executor.
        """
        if conn.io_busy or conn.closing:
            return
        discard = conn.put_over or conn.failure is not None
        if discard:
            conn.pending.clear()
            conn.pending_bytes = 0
        need_abort = discard and conn.writer is not None
        need_open = not conn.opened and not discard
        batch = None
        if conn.pending:
            batch, conn.pending = conn.pending, []
            conn.pending_bytes = 0
        if not (need_open or need_abort or batch):
            if conn.put_done:
                conn.put_done = False
                self._finish_chunked_put(conn)
            return
        conn.io_busy = True
        writer = conn.writer
        conn.writer = None  # the executor owns it until the op completes
        digest = conn.put_digest
        backend = self.backend
        metrics = self.metrics

        def io() -> "tuple[object, Exception | None]":
            w = writer
            try:
                if need_abort:
                    w.abort()
                    return None, None
                if need_open:
                    w = open_blob_writer(backend, digest)
                for chunk in batch or ():
                    w.write(chunk)
                    if w.buffered:
                        metrics.note_body(w.bytes_written)
                return w, None
            except Exception as exc:
                if w is not None:
                    try:
                        w.abort()
                    except Exception:  # pragma: no cover
                        pass
                return None, exc

        future = self._executor.submit(io)
        future.add_done_callback(
            lambda f, conn=conn: self._enqueue(
                conn, lambda c: self._put_io_done(c, f)))

    def _put_io_done(self, conn: _Connection, future) -> None:
        writer, exc = future.result()  # io() never raises
        conn.io_busy = False
        conn.opened = True
        if not self._live(conn):
            # The connection died mid-op; its writer is ours to clean up.
            if writer is not None:
                try:
                    writer.abort()
                except Exception:  # pragma: no cover
                    pass
            return
        conn.writer = writer
        if exc is not None and conn.failure is None:
            conn.failure = exc
        self._drive_put(conn)

    # -- writing ---------------------------------------------------------------

    def _respond(self, conn: _Connection, header: dict,
                 payload: bytes = b"") -> None:
        if conn.trace_tok is not None:
            token, cmd = conn.trace_tok
            conn.trace_tok = None
            end_wire_span(self.recorder, token, f"store.server.{cmd}")
        if payload:
            self.metrics.note_body(len(payload))
        conn.outbuf += encode_message(header, payload)
        self.metrics.note_outbuf(len(conn.outbuf))

    def _begin_chunked_get(self, conn: _Connection, req: dict) -> None:
        backend = self.backend
        if self._executor is not None:
            # The size probe hits disk: resolve it off-loop, holding the
            # connection busy so response order is preserved.
            conn.busy = True

            def resolve() -> "tuple[dict, str | None]":
                try:
                    digest = req["digest"]
                    size_of = getattr(backend, "blob_size", None)
                    size = size_of(digest) if size_of is not None else None
                    if size is None:
                        if not backend.has(digest):
                            raise BlobNotFound(digest)
                        size = -1  # unknown; the terminator delimits
                    return ({"ok": True, "chunked": True, "size": size},
                            digest)
                except BlobNotFound as exc:
                    return {"ok": False, "not_found": True,
                            "error": str(exc)}, None
                except Exception as exc:
                    return {"ok": False, "error": str(exc)}, None

            future = self._executor.submit(resolve)
            future.add_done_callback(
                lambda f, conn=conn: self._enqueue(
                    conn, lambda c: self._get_ready(c, f)))
            return
        try:
            digest = req["digest"]
            size_of = getattr(backend, "blob_size", None)
            size = size_of(digest) if size_of is not None else None
            if size is None:
                if not backend.has(digest):
                    raise BlobNotFound(digest)
                size = -1  # unknown; the terminator delimits the body
        except BlobNotFound as exc:
            self._respond(conn, {"ok": False, "not_found": True,
                                 "error": str(exc)})
            return
        except Exception as exc:
            self._respond(conn, {"ok": False, "error": str(exc)})
            return
        self._respond(conn, {"ok": True, "chunked": True, "size": size})
        conn.stream = iter_chunked(backend, digest)
        self._pump(conn)

    def _get_ready(self, conn: _Connection, future) -> None:
        header, digest = future.result()
        conn.busy = False
        if not self._live(conn):
            return
        self._respond(conn, header)
        if digest is None:
            return
        conn.stream = iter_chunked(self.backend, digest)
        self._drive_get(conn)

    def _pump(self, conn: _Connection) -> None:
        """Pull response chunks while the output buffer has headroom —
        the backpressure valve for slow readers. With an executor the
        reads happen off-loop (:meth:`_drive_get`); inline otherwise."""
        if self._executor is not None:
            self._drive_get(conn)
            return
        while conn.stream is not None and \
                len(conn.outbuf) < self.max_outbuf_bytes:
            try:
                chunk = next(conn.stream)
            except StopIteration:
                conn.stream = None
                conn.outbuf += CHUNK_TERMINATOR
                break
            except Exception:
                # Blob vanished mid-stream: the frame cannot be finished
                # honestly, so the connection dies rather than lies.
                conn.stream = None
                self._close(conn)
                return
            n = len(chunk)
            if not n:  # pragma: no cover - iter_blob never yields empty
                continue
            self.metrics.note_body(n)
            conn.outbuf += chunk_prefix(n)
            conn.outbuf += chunk
        self.metrics.note_outbuf(len(conn.outbuf))

    def _drive_get(self, conn: _Connection) -> None:
        """Pull one output buffer's worth of response chunks on the
        executor — the backpressure valve doubles as loop isolation."""
        if conn.io_busy or conn.stream is None or conn.closing:
            return
        budget = self.max_outbuf_bytes - len(conn.outbuf)
        if budget <= 0:
            return  # _on_writable re-drives once the peer drains
        conn.io_busy = True
        stream = conn.stream
        metrics = self.metrics

        def pull() -> "tuple[bytes, bool, Exception | None]":
            frames = bytearray()
            try:
                while len(frames) < budget:
                    try:
                        chunk = next(stream)
                    except StopIteration:
                        frames += CHUNK_TERMINATOR
                        return bytes(frames), True, None
                    n = len(chunk)
                    if not n:  # pragma: no cover - never yields empty
                        continue
                    metrics.note_body(n)
                    frames += chunk_prefix(n)
                    frames += chunk
                return bytes(frames), False, None
            except Exception as exc:
                return b"", False, exc

        future = self._executor.submit(pull)
        future.add_done_callback(
            lambda f, conn=conn: self._enqueue(
                conn, lambda c: self._get_io_done(c, f, stream)))

    def _get_io_done(self, conn: _Connection, future, stream) -> None:
        frames, done, exc = future.result()  # pull() never raises
        conn.io_busy = False
        if not self._live(conn):
            self._close_stream(stream)
            return
        if exc is not None:
            # Blob vanished mid-stream: the frame cannot be finished
            # honestly, so the connection dies rather than lies.
            conn.stream = None
            self._close_stream(stream)
            self._close(conn)
            return
        if frames:
            conn.outbuf += frames
            self.metrics.note_outbuf(len(conn.outbuf))
        if done:
            conn.stream = None
            self._close_stream(stream)
        else:
            self._drive_get(conn)

    def _on_writable(self, conn: _Connection) -> None:
        if conn.outbuf:
            try:
                sent = conn.sock.send(memoryview(conn.outbuf)[:_SEND_BYTES])
            except BlockingIOError:  # pragma: no cover
                sent = 0
            except OSError:
                self._close(conn)
                return
            if sent:
                self.metrics.add_out(sent)
                del conn.outbuf[:sent]
        if conn.stream is not None:
            self._pump(conn)
            if not self._live(conn):
                return
        self._process(conn)
        self._update(conn)


def iter_chunked(backend, digest: str):
    """Chunk iterator for a streamed response (module-level so tests can
    monkeypatch pacing)."""
    return iter_blob(backend, digest, CHUNK_SIZE)
