"""Blob-store backends: the storage protocol and its local implementations.

A backend stores two kinds of state, mirroring git's object model:

* **blobs** — immutable bytes addressed by their ``sha256:<hex>`` digest.
  The caller supplies the digest (computed by
  :func:`repro.util.hashing.content_digest`); backends verify it on write
  so a corrupted transfer can never poison a store.
* **refs** — small mutable named blobs (the cache's access-ordered index,
  the pin set). Refs are the only mutable state in a store; everything
  else is content-addressed and therefore immutable by construction, the
  property the paper's Sec. 5.2 deployment model leans on.

Because refs are mutable and shared, they are also where concurrent
writers can trample each other. Every backend therefore implements
:meth:`Backend.compare_and_set_ref` — an atomic compare-and-swap that
succeeds only if the ref still holds the bytes the caller last read —
and higher layers (:class:`~repro.containers.store.ArtifactCache`,
:func:`repro.store.gc.collect`) build read-merge-retry loops on top of
it instead of blind ``set_ref`` overwrites.

Backends are thread-safe: the pipeline's parallel map publishes artifacts
concurrently, and the socket server serves several clients at once.
:class:`FileBackend` is additionally *process*-safe: blob writes are
atomic renames, and ref CAS is serialized through per-ref lock files.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.util.hashing import content_digest, is_digest

try:  # POSIX: advisory file locks make ref CAS cheap and crash-safe.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None  # type: ignore[assignment]


#: Legacy ref name: one monolithic access-ordered index for *all*
#: namespaces. Still read (and transparently migrated) by
#: :class:`~repro.containers.store.ArtifactCache`; new indexes are
#: persisted per namespace under :data:`INDEX_REF_PREFIX`.
INDEX_REF = "artifact-index"
#: Per-namespace index shards live at ``artifact-index/<namespace>``.
#: Sharding means a writer publishing ``lower`` artifacts never CAS-races
#: a writer publishing ``preprocess``, and each ref payload is O(one
#: namespace) instead of O(the whole index).
INDEX_REF_PREFIX = INDEX_REF + "/"
#: Ref holding the pin set: pinned blobs survive any garbage collection.
PINS_REF = "pins"


def index_ref_name(namespace: str) -> str:
    """The ref holding one namespace's index shard."""
    return INDEX_REF_PREFIX + namespace


def index_ref_names(backend: "Backend") -> list[str]:
    """Every index ref present on ``backend``: the legacy monolithic ref
    (when it still exists) followed by the per-namespace shards, sorted.
    Readers that must see the whole index (GC's fresh-publish protection,
    stats) iterate exactly this list."""
    refs = backend.refs()
    names = sorted(name for name in refs if name.startswith(INDEX_REF_PREFIX))
    if INDEX_REF in refs:
        names.insert(0, INDEX_REF)
    return names


def iter_index_payloads(backend: "Backend", names: "list[str] | None" = None):
    """Yield ``(ref_name, parsed_index_payload)`` for every index ref.

    The one reader GC's fresh-publish protection and import's seq-floor
    scan share, so the payload schema is interpreted in a single place.
    ``names`` short-circuits the ref listing when the caller already
    holds (and is entitled to reuse) one.
    """
    for name in (index_ref_names(backend) if names is None else names):
        raw = backend.get_ref(name)
        if raw is None:
            continue
        try:
            yield name, json.loads(raw.decode("utf-8"))
        except ValueError:  # pragma: no cover - corrupt ref; skip it
            continue


class BackendError(RuntimeError):
    pass


class BlobNotFound(KeyError):
    pass


@runtime_checkable
class Backend(Protocol):
    """What every blob-store backend must speak."""

    #: True when blobs outlive the creating process (file/remote stores).
    persistent: bool

    def put(self, digest: str, data: bytes) -> None: ...

    def get(self, digest: str) -> bytes: ...

    def has(self, digest: str) -> bool: ...

    def delete(self, digest: str) -> bool: ...

    def digests(self) -> list[str]: ...

    def __len__(self) -> int: ...

    @property
    def total_bytes(self) -> int: ...

    def set_ref(self, name: str, data: bytes) -> None: ...

    def get_ref(self, name: str) -> bytes | None: ...

    def delete_ref(self, name: str) -> bool: ...

    def refs(self) -> list[str]: ...

    def compare_and_set_ref(self, name: str, expected: bytes | None,
                            data: bytes) -> bool:
        """Atomically set ``name`` to ``data`` iff it currently holds
        ``expected`` (``None`` meaning "does not exist"). Returns True on
        success, False if another writer got there first."""
        ...

    # -- batched operations ----------------------------------------------------
    # Hot-path amortization: a farm worker probing or transferring many
    # blobs should pay one round-trip, not N. All bundled backends
    # implement these natively (RemoteBackend as single wire exchanges);
    # the module-level helpers of the same names fall back to per-item
    # loops for any foreign backend that lacks them.

    def put_many(self, blobs: dict[str, bytes]) -> None: ...

    def get_many(self, digests: Iterable[str]) -> dict[str, bytes]:
        """Fetch many blobs; missing digests are simply absent from the
        result (batched callers tolerate holes, per-blob callers use
        :meth:`get` and its exception)."""
        ...

    def has_many(self, digests: Iterable[str]) -> dict[str, bool]: ...

    def blob_size_many(self, digests: Iterable[str]) -> "dict[str, int | None]":
        ...

    def stat(self) -> tuple[int, int]:
        """``(blob_count, total_bytes)`` in one operation — callers that
        need both (``cache stats``, GC reports) must not pay two
        round-trips or two counter syncs."""
        ...


def put_many(backend, blobs: dict[str, bytes]) -> None:
    """``backend.put_many`` or a per-blob loop for foreign backends."""
    native = getattr(backend, "put_many", None)
    if native is not None:
        native(blobs)
        return
    for digest, data in blobs.items():
        backend.put(digest, data)


def get_many(backend, digests: Iterable[str]) -> dict[str, bytes]:
    """``backend.get_many`` or a per-blob loop; missing digests omitted."""
    native = getattr(backend, "get_many", None)
    if native is not None:
        return native(digests)
    out: dict[str, bytes] = {}
    for digest in digests:
        try:
            out[digest] = backend.get(digest)
        except KeyError:  # BlobNotFound is a KeyError
            continue
    return out


def has_many(backend, digests: Iterable[str]) -> dict[str, bool]:
    """``backend.has_many`` or a per-blob loop."""
    native = getattr(backend, "has_many", None)
    if native is not None:
        return native(digests)
    return {digest: backend.has(digest) for digest in digests}


def blob_size_many(backend, digests: Iterable[str]) -> "dict[str, int | None]":
    """``backend.blob_size_many`` or a loop over ``blob_size``/``get``."""
    native = getattr(backend, "blob_size_many", None)
    if native is not None:
        return native(digests)
    size_of = getattr(backend, "blob_size", None)
    out: dict[str, int | None] = {}
    for digest in digests:
        if size_of is not None:
            out[digest] = size_of(digest)
        else:
            try:
                out[digest] = len(backend.get(digest))
            except KeyError:
                out[digest] = None
    return out


def backend_stat(backend) -> tuple[int, int]:
    """``backend.stat`` or the two legacy properties."""
    native = getattr(backend, "stat", None)
    if native is not None:
        count, total = native()
        return int(count), int(total)
    return len(backend), backend.total_bytes


# -- streaming blob I/O --------------------------------------------------------
# The wire layer moves multi-MB bodies as bounded chunks; these helpers
# let a server feed those chunks into (and out of) a backend without ever
# staging a whole blob in memory. FileBackend implements both natively
# (incremental hash into a temp file; chunked reads from the object file);
# any other backend falls back to buffered equivalents — correct
# everywhere, O(chunk)-resident where the backend can support it.

#: Chunk size for the buffered/streaming helpers. Kept equal to
#: :data:`repro.store.wire.CHUNK_SIZE` so a streamed wire body maps 1:1
#: onto backend reads/writes (backend.py must not import wire.py).
STREAM_CHUNK_BYTES = 64 * 1024


class BufferedBlobWriter:
    """Fallback incremental writer: chunks accumulate in memory and land
    via one :meth:`Backend.put` on commit. Peak residency is O(blob) —
    exactly what a memory-backed store costs anyway."""

    buffered = True

    def __init__(self, backend, digest: str):
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        self.digest = digest
        self._backend = backend
        self._buf = bytearray()
        self.bytes_written = 0

    def write(self, chunk) -> None:
        self._buf += chunk
        self.bytes_written += len(chunk)

    def commit(self) -> None:
        data = bytes(self._buf)
        self._buf = bytearray()
        self._backend.put(self.digest, data)

    def abort(self) -> None:
        self._buf = bytearray()


class _FileBlobWriter:
    """Incremental put for :class:`FileBackend`: chunks stream into a
    temp file in the target shard directory and through a running sha256;
    commit verifies the digest and renames into place under the backend's
    mutation lock. Peak memory is one chunk, whatever the blob size."""

    buffered = False

    def __init__(self, backend: "FileBackend", digest: str):
        if not is_digest(digest):
            raise ValueError(f"malformed digest {digest!r}")
        self.digest = digest
        self._backend = backend
        path = backend._blob_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, self._tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                         prefix=".tmp-")
        self._fh = os.fdopen(fd, "wb")
        self._hash = hashlib.sha256()
        self.bytes_written = 0

    def write(self, chunk) -> None:
        self._hash.update(chunk)
        self._fh.write(chunk)
        self.bytes_written += len(chunk)

    def commit(self) -> None:
        self._fh.close()
        actual = "sha256:" + self._hash.hexdigest()
        if actual != self.digest:
            self.abort()
            raise BackendError(f"integrity failure: blob addressed "
                               f"{self.digest} hashes to {actual}")
        self._backend._commit_blob_file(self.digest, self._tmp,
                                        self.bytes_written)

    def abort(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        try:
            os.unlink(self._tmp)
        except OSError:
            pass


def open_blob_writer(backend, digest: str):
    """A chunk sink that stores ``digest`` on commit: the backend's
    native streaming writer when it has one, buffered otherwise."""
    native = getattr(backend, "open_blob_writer", None)
    if native is not None:
        return native(digest)
    return BufferedBlobWriter(backend, digest)


def iter_blob(backend, digest: str,
              chunk_size: int = STREAM_CHUNK_BYTES) -> Iterator[bytes]:
    """Yield a blob's bytes in chunks.

    Uses the backend's ``open_blob`` file handle when available (disk
    reads of ``chunk_size``, O(chunk) resident); otherwise slices one
    :meth:`Backend.get` through a memoryview — no copies beyond the
    backend's own storage.
    """
    opener = getattr(backend, "open_blob", None)
    if opener is not None:
        fh = opener(digest)
        try:
            while True:
                chunk = fh.read(chunk_size)
                if not chunk:
                    return
                yield chunk
        finally:
            fh.close()
        return
    view = memoryview(backend.get(digest))
    for start in range(0, len(view), chunk_size):
        yield view[start:start + chunk_size]


def _check_digest(digest: str, data: bytes) -> None:
    if not is_digest(digest):
        raise ValueError(f"malformed digest {digest!r}")
    actual = content_digest(data)
    if actual != digest:
        raise BackendError(
            f"integrity failure: blob addressed {digest} hashes to {actual}")


class MemoryBackend:
    """Plain in-process dict semantics — what :class:`BlobStore` always was.

    ``total_bytes`` is maintained incrementally (a counter updated on
    put/delete) rather than summed on demand, so size accounting stays O(1)
    however large the store grows.
    """

    persistent = False

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._refs: dict[str, bytes] = {}
        self._created: dict[str, float] = {}
        self._total = 0
        self._lock = threading.Lock()

    def put(self, digest: str, data: bytes) -> None:
        _check_digest(digest, data)
        with self._lock:
            if digest not in self._blobs:
                self._blobs[digest] = data
                self._created[digest] = time.time()
                self._total += len(data)

    def get(self, digest: str) -> bytes:
        try:
            return self._blobs[digest]
        except KeyError:
            raise BlobNotFound(digest) from None

    def has(self, digest: str) -> bool:
        return digest in self._blobs

    def delete(self, digest: str) -> bool:
        with self._lock:
            data = self._blobs.pop(digest, None)
            if data is None:
                return False
            self._created.pop(digest, None)
            self._total -= len(data)
            return True

    def blob_age_seconds(self, digest: str) -> float | None:
        """Seconds since the blob was stored; None if absent. GC's grace
        window uses this to spare blobs a racing publisher just wrote."""
        created = self._created.get(digest)
        if created is None:
            return None
        return max(0.0, time.time() - created)

    def blob_size(self, digest: str) -> int | None:
        """Byte size without fetching content; None if absent. Size
        accounting (GC pricing, `cache stats`) stays O(1) per blob."""
        data = self._blobs.get(digest)
        return None if data is None else len(data)

    def digests(self) -> list[str]:
        return list(self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def total_bytes(self) -> int:
        return self._total

    def stat(self) -> tuple[int, int]:
        with self._lock:
            return len(self._blobs), self._total

    # -- batched operations ----------------------------------------------------

    def put_many(self, blobs: dict[str, bytes]) -> None:
        for digest, data in blobs.items():
            self.put(digest, data)

    def get_many(self, digests: Iterable[str]) -> dict[str, bytes]:
        out = {}
        for digest in digests:
            data = self._blobs.get(digest)
            if data is not None:
                out[digest] = data
        return out

    def has_many(self, digests: Iterable[str]) -> dict[str, bool]:
        return {digest: digest in self._blobs for digest in digests}

    def blob_size_many(self, digests: Iterable[str]) -> dict[str, int | None]:
        return {digest: self.blob_size(digest) for digest in digests}

    def set_ref(self, name: str, data: bytes) -> None:
        with self._lock:
            self._refs[name] = data

    def get_ref(self, name: str) -> bytes | None:
        return self._refs.get(name)

    def delete_ref(self, name: str) -> bool:
        with self._lock:
            return self._refs.pop(name, None) is not None

    def refs(self) -> list[str]:
        return list(self._refs)

    def compare_and_set_ref(self, name: str, expected: bytes | None,
                            data: bytes) -> bool:
        with self._lock:
            if self._refs.get(name) != expected:
                return False
            self._refs[name] = data
            return True


class FileBackend:
    """Blobs persisted on disk under a sharded ``objects/`` layout.

    Layout (the registry/git convention — two-hex-char fan-out keeps any
    single directory small)::

        <root>/objects/ab/cdef0123...   # blob, named by its digest hex
        <root>/objects/.stamp           # mutation stamp (drift detection)
        <root>/refs/<name>              # mutable refs (percent-escaped)
        <root>/locks/<name>.lock        # per-ref CAS lock files

    Writes are atomic: bytes land in a temp file in the same directory and
    are ``os.replace``d into place, so a concurrent reader (or a crashed
    writer) can never observe a half-written blob. Because blobs are
    content-addressed, concurrent writers racing on one digest are writing
    identical bytes — last rename wins and nothing is lost.

    Refs are the mutable exception, so ref mutation (``set_ref``,
    ``delete_ref``, ``compare_and_set_ref``) additionally serializes
    through a per-ref lock file, making CAS linearizable across
    *processes* sharing one store directory, not just across threads.

    Two handles on one directory also drift on size accounting: each
    successful blob put/delete rewrites ``objects/.stamp`` with a fresh
    token, and ``total_bytes``/``__len__`` recount from disk whenever the
    stamp no longer matches the last one this handle observed — so
    ``cache stats`` and GC budgets stay trustworthy with a second writer.
    """

    persistent = True

    #: How long to wait for a ref lock before declaring the store wedged.
    LOCK_TIMEOUT = 30.0

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = os.fspath(root)
        self._objects = os.path.join(self.root, "objects")
        self._refs_dir = os.path.join(self.root, "refs")
        self._locks_dir = os.path.join(self.root, "locks")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._refs_dir, exist_ok=True)
        os.makedirs(self._locks_dir, exist_ok=True)
        self._stamp_path = os.path.join(self._objects, ".stamp")
        # Escaped ref names never start with '.', so this can't collide
        # with any ref's lock file.
        self._mutation_lock_path = os.path.join(self._locks_dir,
                                                ".blob-mutation.lock")
        self._lock = threading.Lock()
        self._total = 0
        self._count = 0
        self._stamp = b""
        self._adopt_stamp_locked(self._read_stamp())

    # -- blobs -----------------------------------------------------------------

    def _blob_path(self, digest: str) -> str:
        if not is_digest(digest):
            raise BlobNotFound(digest)
        hexpart = digest.split(":", 1)[1]
        return os.path.join(self._objects, hexpart[:2], hexpart[2:])

    def _iter_blob_paths(self) -> Iterable[str]:
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                # A crashed writer can leave a .tmp-* behind; it is not a
                # blob and must not pollute counts, digests() or exports.
                if name.startswith(".tmp-"):
                    continue
                yield os.path.join(shard_dir, name)

    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- drift detection -------------------------------------------------------

    def _read_stamp(self) -> bytes:
        try:
            with open(self._stamp_path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def _bump_stamp_locked(self) -> None:
        """Record that this handle mutated the blob set, carrying the
        authoritative totals. Another handle's cached counters are
        invalidated by the token change; it adopts these totals instead
        of rescanning the object tree (the stamp is only ever written
        under the cross-process mutation lock, so they are exact)."""
        stamp = json.dumps({
            "token": os.urandom(8).hex(),
            "count": self._count,
            "bytes": self._total,
        }, sort_keys=True).encode("ascii")
        self._atomic_write(self._stamp_path, stamp)
        self._stamp = stamp

    def _recount_locked(self) -> None:
        self._total = 0
        self._count = 0
        for path in self._iter_blob_paths():
            try:
                self._total += os.path.getsize(path)
                self._count += 1
            except FileNotFoundError:  # raced a concurrent delete
                continue

    def _adopt_stamp_locked(self, stamp: bytes) -> None:
        self._stamp = stamp
        try:
            totals = json.loads(stamp.decode("ascii"))
            self._count = int(totals["count"])
            self._total = int(totals["bytes"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            # Missing or legacy stamp: count the slow, certain way.
            self._recount_locked()

    def _sync_counters_locked(self) -> None:
        stamp = self._read_stamp()
        if stamp != self._stamp:
            self._adopt_stamp_locked(stamp)

    def put(self, digest: str, data: bytes) -> None:
        _check_digest(digest, data)
        path = self._blob_path(digest)
        with self._lock, self._file_lock(self._mutation_lock_path):
            # Re-sync before mutating: incrementing on top of counters
            # another handle has since invalidated would bake the drift in
            # (our stamp write below would mask their token). The mutation
            # lock serializes the sync-mutate-stamp sequence across
            # processes, so no handle can ever observe a matching stamp
            # over counters another writer just outdated.
            self._sync_counters_locked()
            if os.path.exists(path):
                return
            self._atomic_write(path, data)
            self._total += len(data)
            self._count += 1
            self._bump_stamp_locked()

    def get(self, digest: str) -> bytes:
        try:
            with open(self._blob_path(digest), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise BlobNotFound(digest) from None

    # -- streaming blob I/O ----------------------------------------------------

    def open_blob_writer(self, digest: str) -> _FileBlobWriter:
        """Incremental put: write chunks, then ``commit()`` — the blob is
        hashed and landed atomically without ever being whole in memory."""
        return _FileBlobWriter(self, digest)

    def open_blob(self, digest: str):
        """A readable binary file over the blob — chunked reads for the
        streaming wire path (:func:`iter_blob`)."""
        try:
            return open(self._blob_path(digest), "rb")
        except FileNotFoundError:
            raise BlobNotFound(digest) from None

    def _commit_blob_file(self, digest: str, tmp_path: str, size: int) -> None:
        """Land a fully-written, digest-verified temp file as a blob,
        with the same counter/stamp discipline as :meth:`put`."""
        path = self._blob_path(digest)
        with self._lock, self._file_lock(self._mutation_lock_path):
            self._sync_counters_locked()
            if os.path.exists(path):
                os.unlink(tmp_path)  # racing writer landed identical bytes
                return
            os.replace(tmp_path, path)
            self._total += size
            self._count += 1
            self._bump_stamp_locked()

    def has(self, digest: str) -> bool:
        try:
            return os.path.exists(self._blob_path(digest))
        except BlobNotFound:
            return False

    def delete(self, digest: str) -> bool:
        try:
            path = self._blob_path(digest)
        except BlobNotFound:
            return False
        with self._lock, self._file_lock(self._mutation_lock_path):
            self._sync_counters_locked()
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except FileNotFoundError:
                return False
            self._total -= size
            self._count -= 1
            self._bump_stamp_locked()
            return True

    def blob_age_seconds(self, digest: str) -> float | None:
        """Seconds since the blob file was written; None if absent."""
        try:
            mtime = os.path.getmtime(self._blob_path(digest))
        except (BlobNotFound, FileNotFoundError):
            return None
        return max(0.0, time.time() - mtime)

    def blob_size(self, digest: str) -> int | None:
        """Byte size from a stat, no content read; None if absent."""
        try:
            return os.path.getsize(self._blob_path(digest))
        except (BlobNotFound, FileNotFoundError):
            return None

    def digests(self) -> list[str]:
        out = []
        for path in self._iter_blob_paths():
            shard_dir, rest = os.path.split(path)
            shard = os.path.basename(shard_dir)
            out.append(f"sha256:{shard}{rest}")
        return out

    def __len__(self) -> int:
        with self._lock:
            self._sync_counters_locked()
            return self._count

    @property
    def total_bytes(self) -> int:
        with self._lock:
            self._sync_counters_locked()
            return self._total

    def stat(self) -> tuple[int, int]:
        """Count and bytes from one counter sync, not two."""
        with self._lock:
            self._sync_counters_locked()
            return self._count, self._total

    # -- batched operations ----------------------------------------------------

    def put_many(self, blobs: dict[str, bytes]) -> None:
        """Store many blobs under one mutation-lock acquisition.

        Besides the lock amortization, the whole batch produces *one*
        stamp rewrite instead of one per blob — the same O(n) -> O(1)
        economics the cache's batched index saves buy.
        """
        for digest, data in blobs.items():
            _check_digest(digest, data)
        with self._lock, self._file_lock(self._mutation_lock_path):
            self._sync_counters_locked()
            wrote = False
            for digest, data in blobs.items():
                path = self._blob_path(digest)
                if os.path.exists(path):
                    continue
                self._atomic_write(path, data)
                self._total += len(data)
                self._count += 1
                wrote = True
            if wrote:
                self._bump_stamp_locked()

    def get_many(self, digests: Iterable[str]) -> dict[str, bytes]:
        out = {}
        for digest in digests:
            try:
                out[digest] = self.get(digest)
            except BlobNotFound:
                continue
        return out

    def has_many(self, digests: Iterable[str]) -> dict[str, bool]:
        return {digest: self.has(digest) for digest in digests}

    def blob_size_many(self, digests: Iterable[str]) -> dict[str, int | None]:
        return {digest: self.blob_size(digest) for digest in digests}

    # -- refs ------------------------------------------------------------------

    @staticmethod
    def _escape_ref(name: str) -> str:
        # '%' first so the escapes themselves round-trip; a ref literally
        # named "a%2fb" must not collide with "a/b". A leading '.' is
        # escaped too, so ref names can never masquerade as .tmp-* residue.
        escaped = name.replace("%", "%25").replace("/", "%2f")
        if escaped.startswith("."):
            escaped = "%2e" + escaped[1:]
        return escaped

    @staticmethod
    def _unescape_ref(escaped: str) -> str:
        return (escaped.replace("%2e", ".").replace("%2f", "/")
                .replace("%25", "%"))

    def _ref_path(self, name: str) -> str:
        return os.path.join(self._refs_dir, self._escape_ref(name))

    @contextmanager
    def _ref_lock(self, name: str) -> Iterator[None]:
        """Cross-process mutual exclusion for one ref, via a lock file."""
        with self._file_lock(
                os.path.join(self._locks_dir, self._escape_ref(name) + ".lock")):
            yield

    @contextmanager
    def _file_lock(self, path: str) -> Iterator[None]:
        """Cross-process mutual exclusion via a lock file.

        With ``fcntl`` the lock is advisory and crash-safe (the kernel
        releases it when the holder dies); the fallback spins on an
        exclusive-create sentinel with a staleness timeout.
        """
        if fcntl is not None:
            fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                os.close(fd)  # closing the fd releases the flock
            return
        # Portable fallback: O_EXCL sentinel.  # pragma: no cover
        deadline = time.monotonic() + self.LOCK_TIMEOUT
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                break
            except FileExistsError:
                if time.monotonic() > deadline:
                    raise BackendError(f"timed out waiting for ref lock {path}")
                time.sleep(0.005)
        try:
            yield
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass

    def set_ref(self, name: str, data: bytes) -> None:
        with self._lock, self._ref_lock(name):
            self._atomic_write(self._ref_path(name), data)

    def get_ref(self, name: str) -> bytes | None:
        try:
            with open(self._ref_path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def delete_ref(self, name: str) -> bool:
        with self._lock, self._ref_lock(name):
            try:
                os.unlink(self._ref_path(name))
            except FileNotFoundError:
                return False
            return True

    def refs(self) -> list[str]:
        return [self._unescape_ref(name)
                for name in sorted(os.listdir(self._refs_dir))
                if not name.startswith(".tmp-")]

    def compare_and_set_ref(self, name: str, expected: bytes | None,
                            data: bytes) -> bool:
        path = self._ref_path(name)
        with self._lock, self._ref_lock(name):
            try:
                with open(path, "rb") as fh:
                    current: bytes | None = fh.read()
            except FileNotFoundError:
                current = None
            if current != expected:
                return False
            self._atomic_write(path, data)
            return True
