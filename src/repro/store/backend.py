"""Blob-store backends: the storage protocol and its local implementations.

A backend stores two kinds of state, mirroring git's object model:

* **blobs** — immutable bytes addressed by their ``sha256:<hex>`` digest.
  The caller supplies the digest (computed by
  :func:`repro.util.hashing.content_digest`); backends verify it on write
  so a corrupted transfer can never poison a store.
* **refs** — small mutable named blobs (the cache's access-ordered index,
  the pin set). Refs are the only mutable state in a store; everything
  else is content-addressed and therefore immutable by construction, the
  property the paper's Sec. 5.2 deployment model leans on.

Backends are thread-safe: the pipeline's parallel map publishes artifacts
concurrently, and the socket server serves several clients at once.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Iterable, Protocol, runtime_checkable

from repro.util.hashing import content_digest, is_digest


#: Ref holding an :class:`~repro.containers.store.ArtifactCache`'s
#: access-ordered index (JSON).
INDEX_REF = "artifact-index"
#: Ref holding the pin set: pinned blobs survive any garbage collection.
PINS_REF = "pins"


class BackendError(RuntimeError):
    pass


class BlobNotFound(KeyError):
    pass


@runtime_checkable
class Backend(Protocol):
    """What every blob-store backend must speak."""

    #: True when blobs outlive the creating process (file/remote stores).
    persistent: bool

    def put(self, digest: str, data: bytes) -> None: ...

    def get(self, digest: str) -> bytes: ...

    def has(self, digest: str) -> bool: ...

    def delete(self, digest: str) -> bool: ...

    def digests(self) -> list[str]: ...

    def __len__(self) -> int: ...

    @property
    def total_bytes(self) -> int: ...

    def set_ref(self, name: str, data: bytes) -> None: ...

    def get_ref(self, name: str) -> bytes | None: ...

    def delete_ref(self, name: str) -> bool: ...

    def refs(self) -> list[str]: ...


def _check_digest(digest: str, data: bytes) -> None:
    if not is_digest(digest):
        raise ValueError(f"malformed digest {digest!r}")
    actual = content_digest(data)
    if actual != digest:
        raise BackendError(
            f"integrity failure: blob addressed {digest} hashes to {actual}")


class MemoryBackend:
    """Plain in-process dict semantics — what :class:`BlobStore` always was.

    ``total_bytes`` is maintained incrementally (a counter updated on
    put/delete) rather than summed on demand, so size accounting stays O(1)
    however large the store grows.
    """

    persistent = False

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._refs: dict[str, bytes] = {}
        self._total = 0
        self._lock = threading.Lock()

    def put(self, digest: str, data: bytes) -> None:
        _check_digest(digest, data)
        with self._lock:
            if digest not in self._blobs:
                self._blobs[digest] = data
                self._total += len(data)

    def get(self, digest: str) -> bytes:
        try:
            return self._blobs[digest]
        except KeyError:
            raise BlobNotFound(digest) from None

    def has(self, digest: str) -> bool:
        return digest in self._blobs

    def delete(self, digest: str) -> bool:
        with self._lock:
            data = self._blobs.pop(digest, None)
            if data is None:
                return False
            self._total -= len(data)
            return True

    def digests(self) -> list[str]:
        return list(self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def total_bytes(self) -> int:
        return self._total

    def set_ref(self, name: str, data: bytes) -> None:
        with self._lock:
            self._refs[name] = data

    def get_ref(self, name: str) -> bytes | None:
        return self._refs.get(name)

    def delete_ref(self, name: str) -> bool:
        with self._lock:
            return self._refs.pop(name, None) is not None

    def refs(self) -> list[str]:
        return list(self._refs)


class FileBackend:
    """Blobs persisted on disk under a sharded ``objects/`` layout.

    Layout (the registry/git convention — two-hex-char fan-out keeps any
    single directory small)::

        <root>/objects/ab/cdef0123...   # blob, named by its digest hex
        <root>/refs/<name>              # mutable refs ('/' escaped)

    Writes are atomic: bytes land in a temp file in the same directory and
    are ``os.replace``d into place, so a concurrent reader (or a crashed
    writer) can never observe a half-written blob. Because blobs are
    content-addressed, concurrent writers racing on one digest are writing
    identical bytes — last rename wins and nothing is lost.
    """

    persistent = True

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = os.fspath(root)
        self._objects = os.path.join(self.root, "objects")
        self._refs_dir = os.path.join(self.root, "refs")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._refs_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._total = 0
        self._count = 0
        for path in self._iter_blob_paths():
            self._total += os.path.getsize(path)
            self._count += 1

    # -- blobs -----------------------------------------------------------------

    def _blob_path(self, digest: str) -> str:
        hexpart = digest.split(":", 1)[1]
        return os.path.join(self._objects, hexpart[:2], hexpart[2:])

    def _iter_blob_paths(self) -> Iterable[str]:
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                # A crashed writer can leave a .tmp-* behind; it is not a
                # blob and must not pollute counts, digests() or exports.
                if name.startswith(".tmp-"):
                    continue
                yield os.path.join(shard_dir, name)

    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, digest: str, data: bytes) -> None:
        _check_digest(digest, data)
        path = self._blob_path(digest)
        with self._lock:
            if os.path.exists(path):
                return
            self._atomic_write(path, data)
            self._total += len(data)
            self._count += 1

    def get(self, digest: str) -> bytes:
        try:
            with open(self._blob_path(digest), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise BlobNotFound(digest) from None

    def has(self, digest: str) -> bool:
        return os.path.exists(self._blob_path(digest))

    def delete(self, digest: str) -> bool:
        path = self._blob_path(digest)
        with self._lock:
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except FileNotFoundError:
                return False
            self._total -= size
            self._count -= 1
            return True

    def digests(self) -> list[str]:
        out = []
        for path in self._iter_blob_paths():
            shard_dir, rest = os.path.split(path)
            shard = os.path.basename(shard_dir)
            out.append(f"sha256:{shard}{rest}")
        return out

    def __len__(self) -> int:
        return self._count

    @property
    def total_bytes(self) -> int:
        return self._total

    # -- refs ------------------------------------------------------------------

    def _ref_path(self, name: str) -> str:
        return os.path.join(self._refs_dir, name.replace("/", "%2f"))

    def set_ref(self, name: str, data: bytes) -> None:
        with self._lock:
            self._atomic_write(self._ref_path(name), data)

    def get_ref(self, name: str) -> bytes | None:
        try:
            with open(self._ref_path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def delete_ref(self, name: str) -> bool:
        with self._lock:
            try:
                os.unlink(self._ref_path(name))
            except FileNotFoundError:
                return False
            return True

    def refs(self) -> list[str]:
        return [name.replace("%2f", "/") for name in sorted(os.listdir(self._refs_dir))
                if not name.startswith(".tmp-")]
