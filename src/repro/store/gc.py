"""Size accounting and LRU garbage collection for artifact stores.

The cache grows without bound: every preprocessed text, IR module, lowered
machine module, and image blob a build ever produced stays in the store.
:func:`collect` bounds the store to a byte budget with a two-phase sweep:

1. **Orphans first.** Blobs referenced by nothing — no index entry, no pin,
   no digest mention inside a live payload — are deleted outright. (These
   accumulate when an entry is re-published with a new payload: the old
   blob keeps its bytes but loses its last referrer.)
2. **TTL expiry** (when ``max_age_seconds`` is given). Entries whose
   payload blob is older than the window are expired *regardless of
   budget* — oldest first, deleting newly-unreferenced blobs exactly like
   an LRU eviction. Age comes from the backend's ``blob_age_seconds``
   (the same clock the grace window reads); a backend without age data
   expires nothing. This is what keeps a long-lived shared store — or a
   worker's local tier — bounded in *time* as well as bytes.
3. **LRU eviction.** While the store still exceeds the budget, evict the
   least-recently-used index entry (the access-ordered index is maintained
   by :class:`~repro.containers.store.ArtifactCache` on every hit and
   publish) and delete whichever blobs thereby lose their last reference.

Pinned roots are sacred: any digest in the pin set — and everything it
transitively references, discovered by scanning pinned blobs for embedded
``sha256:`` digests (an OCI manifest names its config and layer blobs this
way) — is never deleted, even if the budget cannot be met without it.

Collection is multi-writer aware. The cache's index snapshot syncs with
the live ref and each eviction rewrites the index through the cache's
CAS retry-merge loop, so a publisher racing the collector keeps its
entries (and an evicted entry cannot be resurrected by a stale save).
Before any blob is deleted, the sweep re-reads the live index ref and
spares every digest reachable from entries published since the snapshot —
a fresh publish is never swept as an orphan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.store.backend import index_ref_names, iter_index_payloads
from repro.telemetry import events as _events

_DIGEST_RE = re.compile(rb"sha256:[0-9a-f]{64}")


@dataclass
class GCReport:
    """What one collection did — or would do — for auditing and the CLI.

    ``dry_run`` reports carry the same priced plan (per-blob deletions,
    per-namespace totals) as a live run but mutate nothing:
    ``after_bytes == before_bytes`` and ``projected_after_bytes`` shows
    where applying the plan would land the store.
    """

    max_bytes: int
    before_bytes: int
    after_bytes: int
    before_blobs: int
    after_blobs: int
    evicted_entries: int = 0
    expired_entries: int = 0
    deleted_blobs: int = 0
    pinned_blobs: int = 0
    grace_seconds: float = 0.0
    max_age_seconds: float | None = None
    dry_run: bool = False
    # (namespace, key) of every evicted entry, LRU-first.
    evicted: list[tuple[str, str]] = field(default_factory=list)
    # (namespace, key) of every TTL-expired entry, oldest-first.
    expired: list[tuple[str, str]] = field(default_factory=list)
    # Every (planned) blob deletion: namespace attribution, digest, bytes.
    # Orphan-phase deletions are attributed to the pseudo-namespace
    # "(orphan)" — they belong to no live entry by definition.
    deletions: list[dict] = field(default_factory=list)
    # namespace -> {"entries": evicted entries, "blobs": n, "bytes": b}.
    by_namespace: dict[str, dict] = field(default_factory=dict)

    @property
    def planned_freed_bytes(self) -> int:
        return sum(d["bytes"] for d in self.deletions)

    @property
    def projected_after_bytes(self) -> int:
        return self.before_bytes - self.planned_freed_bytes

    @property
    def freed_bytes(self) -> int:
        return self.before_bytes - self.after_bytes

    @property
    def within_budget(self) -> bool:
        after = self.projected_after_bytes if self.dry_run else self.after_bytes
        return after <= self.max_bytes

    def to_json(self) -> dict:
        return {
            "max_bytes": self.max_bytes,
            "before_bytes": self.before_bytes,
            "after_bytes": self.after_bytes,
            "freed_bytes": self.freed_bytes,
            "planned_freed_bytes": self.planned_freed_bytes,
            "projected_after_bytes": self.projected_after_bytes,
            "before_blobs": self.before_blobs,
            "after_blobs": self.after_blobs,
            "evicted_entries": self.evicted_entries,
            "expired_entries": self.expired_entries,
            "deleted_blobs": self.deleted_blobs,
            "pinned_blobs": self.pinned_blobs,
            "grace_seconds": self.grace_seconds,
            "max_age_seconds": self.max_age_seconds,
            "dry_run": self.dry_run,
            "within_budget": self.within_budget,
            "evicted": [{"namespace": ns, "key": key} for ns, key in self.evicted],
            "expired": [{"namespace": ns, "key": key} for ns, key in self.expired],
            "deletions": list(self.deletions),
            "by_namespace": {ns: dict(agg) for ns, agg
                             in sorted(self.by_namespace.items())},
        }


def referenced_digests(data: bytes) -> set[str]:
    """Every well-formed ``sha256:`` digest mentioned inside a blob."""
    return {m.decode("ascii") for m in _DIGEST_RE.findall(data)}


def pin_closure(store, roots: set[str]) -> set[str]:
    """Transitive closure of digest references starting from pinned roots.

    A pinned image manifest references its config and layer blobs by
    digest; those blobs may reference further digests (a manifest layer
    embeds the IR digests its install entries point at). Missing blobs are
    tolerated — a pin may outlive parts of its graph. Each BFS level is
    fetched with one batched ``get_many`` — a deep pin graph on a remote
    store costs one round-trip per level, not per blob.
    """
    seen: set[str] = set()
    frontier = set(roots)
    while frontier:
        level = sorted(frontier - seen)
        seen |= frontier
        blobs = store.get_many(level)
        frontier = {ref for data in blobs.values()
                    for ref in referenced_digests(data)} - seen
    return seen


def _index_entry_stream(backend, names=None):
    """Every ``(key, namespace, digest, seq)`` row across all index refs —
    the per-namespace shards plus the legacy monolithic blob when an
    unmigrated writer still maintains one."""
    for _name, blob in iter_index_payloads(backend, names):
        yield from blob.get("entries", ())


def collect(cache, max_bytes: int, grace_seconds: float = 0.0,
            dry_run: bool = False,
            max_age_seconds: float | None = None) -> GCReport:
    """Bound ``cache``'s backing store to ``max_bytes``; see module doc.

    ``cache`` is an :class:`~repro.containers.store.ArtifactCache` (duck-
    typed: anything with ``store``/``entries()``/``evict()``/``pins()``
    works). Returns a :class:`GCReport`; ``within_budget`` is False when
    pinned blobs alone exceed the budget.

    ``grace_seconds`` spares blobs younger than the window from deletion
    (git's ``gc --prune=<age>`` idea): a publisher stores its blob *before*
    its index entry lands, and only a grace window makes that gap safe
    when GC runs concurrently with live builders. Blobs whose age the
    backend cannot report are treated as young. 0 disables the window
    (safe when nothing else writes the store).

    ``max_age_seconds`` adds a TTL phase: index entries whose payload
    blob is older than the window are expired oldest-first, independent
    of the byte budget (pass a huge ``max_bytes`` for a pure-TTL sweep).
    Entries whose age the backend cannot report are kept.

    ``dry_run=True`` prices the eviction plan — which entries the LRU
    sweep would evict, which blobs would be deleted, how many bytes each
    namespace gives back — without deleting a blob or touching the index.
    """
    if max_bytes < 0:
        raise ValueError("max_bytes must be non-negative")
    if max_age_seconds is not None and max_age_seconds < 0:
        raise ValueError("max_age_seconds must be non-negative")
    store = cache.store
    before_blobs, before_bytes = store.stat()
    report = GCReport(max_bytes=max_bytes,
                      before_bytes=before_bytes, after_bytes=0,
                      before_blobs=before_blobs, after_blobs=0,
                      grace_seconds=grace_seconds, dry_run=dry_run,
                      max_age_seconds=max_age_seconds)
    age_of = getattr(store.backend, "blob_age_seconds", None)

    def _in_grace(digest: str) -> bool:
        if grace_seconds <= 0:
            return False
        if age_of is None:
            return True  # no age data: assume young, never delete
        age = age_of(digest)
        return age is None or age < grace_seconds

    pinned = pin_closure(store, set(cache.pins().values()))
    report.pinned_blobs = len(pinned)

    # Per-entry reference sets: the payload blob itself plus every digest
    # the payload mentions (preprocess payloads point at their bulk text
    # blob this way). Refcounts let eviction delete newly-unreferenced
    # blobs without rescanning the surviving entries. Payload blobs are
    # fetched with one batched get_many rather than a has+get per entry.
    entries = cache.entries()
    payload_blobs = store.get_many(
        sorted({record.digest for record in entries.values()}))
    entry_refs: dict[str, set[str]] = {}
    refcount: dict[str, int] = {}
    for key, record in entries.items():
        refs = {record.digest}
        data = payload_blobs.get(record.digest)
        if data is not None:
            refs |= referenced_digests(data)
        entry_refs[key] = refs
        for digest in refs:
            refcount[digest] = refcount.get(digest, 0) + 1

    # Candidate pricing is batched up front: one blob_size_many round-trip
    # covers every blob the sweep may delete (deletion never transfers the
    # bytes it throws away). Content-addressed blobs never change size, so
    # the prefetch cannot go stale; blobs another writer deletes meanwhile
    # fail their store.delete and are not counted.
    all_digests = store.backend.digests()
    sizes = store.blob_size_many(all_digests)

    def _size_of(digest: str) -> int | None:
        if digest in sizes:
            return sizes[digest]
        return store.blob_size(digest)

    # The index-ref *name list* is cached per phase rather than re-listed
    # per eviction: shard payloads are always re-read (that is the whole
    # point — fresh publishes land in existing shards), but a shard for a
    # brand-new namespace can only appear under a concurrent writer, and
    # concurrent-writer GC requires a grace window (see module doc) that
    # already spares every blob such a writer just stored.
    index_names = index_ref_names(store.backend)

    def _fresh_publish_closure() -> set[str]:
        """Digests reachable from index entries that appeared *after* our
        snapshot — a concurrent publisher's work, which the sweep must
        spare even though the snapshot never heard of it. Walks every
        index ref: the per-namespace shards and, on an unmigrated store,
        the legacy monolithic blob."""
        fresh: set[str] = set()
        for _key, _ns, digest, _seq in _index_entry_stream(store.backend,
                                                           index_names):
            if refcount.get(digest, 0) == 0 and digest not in fresh:
                fresh.add(digest)
        for digest, data in store.get_many(sorted(fresh)).items():
            fresh |= referenced_digests(data)
        return fresh

    protected = _fresh_publish_closure()
    simulated_deleted: set[str] = set()  # dry-run stand-in for store deletes

    def _note_deletion(namespace: str, digest: str, nbytes: int) -> None:
        report.deleted_blobs += 1
        report.deletions.append({"namespace": namespace, "digest": digest,
                                 "bytes": nbytes})
        agg = report.by_namespace.setdefault(
            namespace, {"entries": 0, "blobs": 0, "bytes": 0})
        agg["blobs"] += 1
        agg["bytes"] += nbytes

    def _delete_if_unreferenced(digest: str, namespace: str) -> None:
        if digest in pinned or digest in protected or _in_grace(digest):
            return
        if refcount.get(digest, 0) != 0 or digest in simulated_deleted:
            return
        nbytes = _size_of(digest)
        if nbytes is None:
            return  # another writer's GC got there first
        if dry_run:
            simulated_deleted.add(digest)
            _note_deletion(namespace, digest, nbytes)
        elif store.delete(digest):
            _note_deletion(namespace, digest, nbytes)

    # Phase 1: orphans — blobs no pin and no entry can reach.
    for digest in all_digests:
        _delete_if_unreferenced(digest, "(orphan)")
    _events.emit("info", "gc orphan phase done",
                 deleted_blobs=report.deleted_blobs,
                 freed_bytes=report.planned_freed_bytes, dry_run=dry_run)

    # Phase 2: TTL expiry — entries past max_age_seconds go oldest-first,
    # before (and independent of) the byte budget. Shares the LRU phase's
    # machinery: evict through the cache's CAS merge, drop refcounts,
    # re-protect concurrent publishes, delete newly-unreferenced blobs.
    expired_keys: set[str] = set()
    if max_age_seconds is not None and age_of is not None:
        by_blob_age = sorted(
            ((age_of(record.digest), key, record)
             for key, record in entries.items()),
            key=lambda item: -(item[0] or 0.0))
        for age, key, record in by_blob_age:
            if age is None or age <= max_age_seconds:
                break  # sorted oldest-first: the rest are younger
            if not dry_run and cache.evict(key) is None:
                continue  # raced with a concurrent eviction
            expired_keys.add(key)
            report.expired_entries += 1
            report.expired.append((record.namespace, key))
            report.by_namespace.setdefault(
                record.namespace,
                {"entries": 0, "blobs": 0, "bytes": 0})["entries"] += 1
            for digest in entry_refs[key]:
                refcount[digest] -= 1
            if not dry_run:
                protected |= _fresh_publish_closure()
            for digest in entry_refs[key]:
                _delete_if_unreferenced(digest, record.namespace)
    if max_age_seconds is not None:
        _events.emit("info", "gc ttl phase done",
                     expired_entries=report.expired_entries,
                     max_age_seconds=max_age_seconds, dry_run=dry_run)

    # Phase 3: LRU eviction until the store fits the budget. Once only
    # pinned bytes remain, evicting further entries cannot free anything —
    # stop rather than strip a warm cache for no gain.
    index_names = index_ref_names(store.backend)  # phase boundary refresh
    protected |= _fresh_publish_closure()  # publishes that raced phase 1
    # Bytes eviction cannot free: pinned closures, plus (under a grace
    # window) every blob too young to delete. Stopping at this floor keeps
    # a fully-in-grace store's warm index intact instead of stripping it
    # for zero gain; the entries stay evictable by a later, quieter GC.
    unfreeable = set(pinned)
    if grace_seconds > 0:
        for digest in all_digests:
            if digest not in unfreeable and _in_grace(digest):
                unfreeable.add(digest)
    floor_bytes = sum(_size_of(d) or 0 for d in unfreeable)
    by_age = sorted(((key, record) for key, record in entries.items()
                     if key not in expired_keys),
                    key=lambda item: item[1].seq)

    def _current_bytes() -> int:
        if dry_run:
            return report.before_bytes - report.planned_freed_bytes
        return store.total_bytes

    for key, record in by_age:
        if _current_bytes() <= max(max_bytes, floor_bytes):
            break
        if not dry_run and cache.evict(key) is None:
            continue  # raced with a concurrent eviction
        report.evicted_entries += 1
        report.evicted.append((record.namespace, key))
        report.by_namespace.setdefault(
            record.namespace,
            {"entries": 0, "blobs": 0, "bytes": 0})["entries"] += 1
        # Drop refcounts first, then re-read the live index (evict just
        # rewrote it through the cache's CAS merge, so it includes any
        # concurrent publish) and protect digests it still reaches: a
        # fresh entry sharing a digest with the evicted one must not lose
        # its blob when the snapshot refcount hits zero.
        for digest in entry_refs[key]:
            refcount[digest] -= 1
        if not dry_run:
            protected |= _fresh_publish_closure()
        for digest in entry_refs[key]:
            _delete_if_unreferenced(digest, record.namespace)

    report.after_blobs, report.after_bytes = store.stat()
    _events.emit(
        "info" if report.within_budget else "warn", "gc lru phase done",
        evicted_entries=report.evicted_entries,
        deleted_blobs=report.deleted_blobs,
        freed_bytes=report.freed_bytes,
        after_bytes=report.after_bytes,
        within_budget=report.within_budget, dry_run=dry_run)
    return report
